//! Offline vendored stand-in for `rand` 0.8.
//!
//! Implements the API surface the workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` —
//! on a splitmix64/xorshift generator. Deterministic for a given seed
//! (the workspace's trace generation depends on that), but the stream
//! differs from real `rand`'s `SmallRng`.

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`Range` or `RangeInclusive`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p = {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A u64 mapped to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open and inclusive ranges.
///
/// A single blanket `SampleRange` impl per range shape (mirroring real
/// rand) keeps integer-literal inference working:
/// `rng.gen_range(0..100) < some_u8` must pin the literal to `u8`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let width = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                assert!(width > 0, "gen_range: empty range");
                let draw = (rng.next_u64() as u128) % width;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R)
        -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* over a
    /// splitmix64-initialized state).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // One splitmix64 round decorrelates adjacent seeds.
            let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            SmallRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.gen_range(10usize..20);
            assert!((10..20).contains(&u));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let b = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&b));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
