//! Offline vendored stand-in for `serde_json`.
//!
//! Provides the subset the workspace uses: [`Value`], [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the [`json!`] macro, all
//! backed by the vendored `serde` crate's value tree.

mod parse;

pub use serde::value::{Number, Value};

use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl core::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s).map_err(Error::new)?;
    T::from_value(&value).map_err(Error::new)
}

/// Convert any serializable value into a [`Value`] tree.
///
/// Infallible in this stand-in (real serde_json returns `Result`); kept
/// as a plain value because the workspace only uses it via [`json!`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] from JSON-ish syntax.
///
/// Supports `null`, `[expr, ...]`, `{ "key": expr, ... }` (keys must be
/// string literals), and bare expressions of serializable values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = json!({
            "name": "dozznoc",
            "count": 3u64,
            "nested": json!([1u64, 2u64, 3u64]),
            "flag": true,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["name"].as_str(), Some("dozznoc"));
        assert_eq!(back["count"].as_u64(), Some(3));
        assert_eq!(back["nested"][1].as_u64(), Some(2));
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({ "a": json!([1u64]), "b": "x\n\"y\"" });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        let cases = ["18446744073709551615", "-42", "0.5", "1e3", "-2.25"];
        for c in cases {
            let v: Value = from_str(c).unwrap();
            let back: Value = from_str(&v.to_string()).unwrap();
            assert_eq!(back, v, "{c}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
    }
}
