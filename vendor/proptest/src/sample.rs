//! Sampling strategies: `select` from a list, and `Index` for
//! length-relative indexing.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly pick one of the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty option list");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// An index drawn independently of any particular collection length;
/// apply it with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Wrap raw entropy (used by `any::<Index>()`).
    pub fn from_raw(raw: u64) -> Self {
        Index { raw }
    }

    /// Map onto `[0, size)`. Panics if `size` is zero, like proptest.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on empty collection");
        (self.raw % size as u64) as usize
    }
}
