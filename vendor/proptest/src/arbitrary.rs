//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for a primitive type.
pub struct AnyOf<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T> AnyOf<T> {
    fn new() -> Self {
        AnyOf { _marker: core::marker::PhantomData }
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyOf::new()
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyOf<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyOf::new()
    }
}

impl Strategy for AnyOf<crate::sample::Index> {
    type Value = crate::sample::Index;

    fn generate(&self, rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

impl Arbitrary for crate::sample::Index {
    type Strategy = AnyOf<crate::sample::Index>;

    fn arbitrary() -> Self::Strategy {
        AnyOf::new()
    }
}
