//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree and no shrinking; a
/// strategy simply produces a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Transform and filter: `None` results are regenerated (up to an
    /// attempt cap), `reason` names the filter in the give-up panic.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { base: self, f, reason }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.base.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map `{}` rejected 10000 consecutive values", self.reason);
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % width;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128) % width;
                (start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_signed_ranges!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
