//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro, `prop_assert*`/`prop_assume!`, `any::<T>()`,
//! range and tuple strategies, `prop_map`/`prop_filter_map`,
//! `collection::vec`, and `sample::{select, Index}`.
//!
//! Failing cases are reported with the generated inputs' `Debug` dump
//! but are **not shrunk** — this harness generates, runs, and reports.
//! Case generation is deterministic per test-function name, so CI runs
//! are reproducible.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias so `prop::sample::...`, `prop::collection::...` resolve.
    pub use crate as prop;
}

/// Run property tests: `proptest! { #![proptest_config(...)] fn ... }`.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.max_global_rejects,
                                "proptest {}: too many prop_assume! rejections ({rejected})",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {} cases: {}",
                                stringify!($name),
                                accepted,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a proptest body; failure reports instead of panicking
/// mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Discard the current case without counting it against `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
