//! Runner support types for the vendored proptest harness.

/// Per-test configuration; only the fields the workspace sets.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a test case ended early.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: drop the case, generate another.
    Reject,
    /// `prop_assert*!` failed: the property does not hold.
    Fail(String),
}

/// Deterministic per-test generator (xorshift64* seeded from the test
/// name), so failures reproduce across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test function's name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then force non-zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
