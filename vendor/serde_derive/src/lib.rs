//! Offline vendored `#[derive(Serialize, Deserialize)]` for the serde
//! stand-in. Parses the item's token stream directly (no `syn`/`quote`)
//! and supports exactly the shapes the workspace uses:
//!
//! * structs with named fields,
//! * one-field tuple structs (serialized transparently, like serde_json
//!   treats newtypes),
//! * enums with unit, one-field tuple, and struct variants
//!   (externally tagged, like real serde's default).
//!
//! Generics are not supported; deriving on a generic type is a compile
//! error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored, `Value`-based trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` (the vendored, `Value`-based trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    NewtypeStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_decoration(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group is an attribute.
                match tokens.get(i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
                    _ => return i,
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_decoration(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("vendored serde derive does not support generics on `{name}`"));
        }
    }
    match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct { name, fields: parse_named_fields(g.stream())? })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_top_level_fields(g.stream());
            if arity != 1 {
                return Err(format!(
                    "vendored serde derive supports only 1-field tuple structs; `{name}` has {arity}"
                ));
            }
            Ok(Item::NewtypeStruct { name })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
        }
        (kw, other) => Err(format!("cannot derive for `{kw} {name}` body {other:?}")),
    }
}

/// Field names from a `{ a: T, b: U }` group, skipping types.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_decoration(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: everything up to a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Number of comma-separated fields in a tuple-struct/tuple-variant group.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_token_since_comma {
                    count += 1;
                }
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_decoration(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                if arity != 1 {
                    return Err(format!(
                        "vendored serde derive supports only 1-field tuple variants; `{name}` has {arity}"
                    ));
                }
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}\n"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
             }}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let pats = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pats} }} => {{\n\
                             let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(inner))])\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::__private::field(v, {f:?})?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok({name}(::serde::Deserialize::from_value(v)?))\n\
             }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{vname:?} => {{\n\
                         ::serde::__private::no_payload(payload, {vname:?})?;\n\
                         Ok({name}::{vname})\n\
                         }}\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{vname:?} => {{\n\
                         let p = ::serde::__private::payload(payload, {vname:?})?;\n\
                         Ok({name}::{vname}(::serde::Deserialize::from_value(p)?))\n\
                         }}\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::__private::field(p, {f:?})?)?,\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let p = ::serde::__private::payload(payload, {vname:?})?;\n\
                             Ok({name}::{vname} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let (variant, payload) = ::serde::__private::variant(v)?;\n\
                 match variant {{\n\
                 {arms}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}
