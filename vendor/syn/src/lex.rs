//! Span-preserving lexer: source text → nested token trees.

use std::fmt;

/// A source position: 1-based line and column (in characters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: usize,
    pub column: usize,
}

/// Delimiter kind of a token group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

/// One lexed token. Multi-character operators (`::`, `->`, `==`, `>>`,
/// …) are munched greedily into a single `Punct`; consumers that count
/// angle-bracket depth must treat `<<`/`>>` as two opens/closes.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers keep their `r#` prefix).
    Ident(String),
    /// Lifetime, without the leading quote (`'a` → `a`).
    Lifetime(String),
    /// Integer literal, verbatim (`0xff`, `1_000u64`).
    Int(String),
    /// Float literal, verbatim (`1.0`, `1e-9`, `2f64`).
    Float(String),
    /// String / char / byte literal, verbatim including quotes.
    Str(String),
    /// Punctuation / operator, greedily munched.
    Punct(String),
    /// A delimited group and its contents.
    Group(Delim, Vec<Token>),
}

/// A token plus the position of its first character.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the given punctuation string.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(s) if s == p)
    }
}

/// A lex or parse error with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    pub span: Span,
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.column, self.msg)
    }
}

impl std::error::Error for Error {}

/// Multi-character operators, longest first so munching is greedy.
const OPS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Lexer<'a> {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
    src: &'a str,
}

/// Lex a source file into a flat-with-groups token tree.
pub fn lex(src: &str) -> Result<Vec<Token>, Error> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        src,
    };
    let _ = lx.src;
    // Stack of open groups: (delimiter, span of the opener, tokens so far).
    let mut stack: Vec<(Delim, Span, Vec<Token>)> = Vec::new();
    let mut top: Vec<Token> = Vec::new();

    while let Some(c) = lx.peek() {
        let span = lx.span();
        match c {
            c if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek2() == Some('/') => lx.line_comment(),
            '/' if lx.peek2() == Some('*') => lx.block_comment()?,
            '(' | '[' | '{' => {
                let d = match c {
                    '(' => Delim::Paren,
                    '[' => Delim::Bracket,
                    _ => Delim::Brace,
                };
                lx.bump();
                stack.push((d, span, std::mem::take(&mut top)));
                top = Vec::new();
            }
            ')' | ']' | '}' => {
                let d = match c {
                    ')' => Delim::Paren,
                    ']' => Delim::Bracket,
                    _ => Delim::Brace,
                };
                lx.bump();
                let Some((open_d, open_span, mut outer)) = stack.pop() else {
                    return Err(Error {
                        span,
                        msg: format!("unmatched closing `{c}`"),
                    });
                };
                if open_d != d {
                    return Err(Error {
                        span,
                        msg: format!("mismatched delimiter opened at {open_span:?}"),
                    });
                }
                outer.push(Token {
                    tok: Tok::Group(d, std::mem::take(&mut top)),
                    span: open_span,
                });
                top = outer;
            }
            '"' => top.push(lx.string(span, false)?),
            '\'' => top.push(lx.quote(span)?),
            'r' | 'b' if lx.raw_or_byte_start() => top.push(lx.raw_or_byte(span)?),
            c if c.is_ascii_digit() => top.push(lx.number(span)),
            c if is_ident_start(c) => top.push(lx.ident(span)),
            _ => top.push(lx.punct(span)?),
        }
    }
    if let Some((_, open_span, _)) = stack.pop() {
        return Err(Error {
            span: open_span,
            msg: "unclosed delimiter".into(),
        });
    }
    Ok(top)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.chars.get(self.i + n).copied()
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            column: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) -> Result<(), Error> {
        let start = self.span();
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek2()) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    return Err(Error {
                        span: start,
                        msg: "unterminated block comment".into(),
                    })
                }
            }
        }
        Ok(())
    }

    /// A `"…"` string (or the tail of a byte string when `prefixed`).
    fn string(&mut self, span: Span, prefixed: bool) -> Result<Token, Error> {
        let mut text = String::new();
        if prefixed {
            text.push('b');
        }
        text.push('"');
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
                None => {
                    return Err(Error {
                        span,
                        msg: "unterminated string literal".into(),
                    })
                }
            }
        }
        Ok(Token {
            tok: Tok::Str(text),
            span,
        })
    }

    /// `'a` lifetime or `'x'` char literal.
    fn quote(&mut self, span: Span) -> Result<Token, Error> {
        self.bump(); // the quote
        match self.peek() {
            Some('\\') => {
                // Escaped char literal: consume escape then closing quote.
                let mut text = String::from("'");
                text.push('\\');
                self.bump();
                match self.bump() {
                    Some('x') => {
                        text.push('x');
                        for _ in 0..2 {
                            if let Some(h) = self.bump() {
                                text.push(h);
                            }
                        }
                    }
                    Some('u') => {
                        text.push('u');
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                    Some(e) => text.push(e),
                    None => {
                        return Err(Error {
                            span,
                            msg: "unterminated char literal".into(),
                        })
                    }
                }
                if self.peek() == Some('\'') {
                    self.bump();
                    text.push('\'');
                }
                Ok(Token {
                    tok: Tok::Str(text),
                    span,
                })
            }
            Some(c) if is_ident_start(c) => {
                // Could be a lifetime ('a) or a char ('a'). Scan the ident
                // and decide by the presence of a closing quote.
                let mut name = String::new();
                let mut n = 0usize;
                while let Some(c) = self.peek_at(n) {
                    if is_ident_cont(c) {
                        name.push(c);
                        n += 1;
                    } else {
                        break;
                    }
                }
                if self.peek_at(n) == Some('\'') && name.chars().count() == 1 {
                    for _ in 0..=n {
                        self.bump();
                    }
                    Ok(Token {
                        tok: Tok::Str(format!("'{name}'")),
                        span,
                    })
                } else {
                    for _ in 0..n {
                        self.bump();
                    }
                    Ok(Token {
                        tok: Tok::Lifetime(name),
                        span,
                    })
                }
            }
            Some(c) => {
                // Non-ident char literal like '+' or ' '.
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                    Ok(Token {
                        tok: Tok::Str(format!("'{c}'")),
                        span,
                    })
                } else {
                    Err(Error {
                        span,
                        msg: format!("stray quote before {c:?}"),
                    })
                }
            }
            None => Err(Error {
                span,
                msg: "unterminated quote".into(),
            }),
        }
    }

    /// True when the cursor sits on the start of a raw string / raw ident
    /// / byte literal (`r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`).
    fn raw_or_byte_start(&self) -> bool {
        match self.peek() {
            Some('r') => matches!(self.peek2(), Some('"') | Some('#')),
            Some('b') => match self.peek2() {
                Some('"') | Some('\'') => true,
                // `br` only starts a byte-raw string when `"` or `#`
                // follows — otherwise it is an ident like `break`.
                Some('r') => matches!(self.peek_at(2), Some('"') | Some('#')),
                _ => false,
            },
            _ => false,
        }
    }

    fn raw_or_byte(&mut self, span: Span) -> Result<Token, Error> {
        match (self.peek(), self.peek2()) {
            (Some('r'), Some('#')) if self.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier r#type.
                self.bump();
                self.bump();
                let mut t = self.ident(span);
                if let Tok::Ident(name) = &mut t.tok {
                    *name = format!("r#{name}");
                }
                Ok(t)
            }
            (Some('r'), _) => {
                self.bump();
                self.raw_string(span, "r")
            }
            (Some('b'), Some('\'')) => {
                self.bump();
                let t = self.quote(span)?;
                Ok(t)
            }
            (Some('b'), Some('"')) => {
                self.bump();
                self.string(span, true)
            }
            (Some('b'), Some('r')) => {
                self.bump();
                self.bump();
                self.raw_string(span, "br")
            }
            _ => unreachable!("raw_or_byte_start checked the prefix"),
        }
    }

    /// The `#…#"…"#…#` tail of a raw string (cursor past the prefix).
    fn raw_string(&mut self, span: Span, prefix: &str) -> Result<Token, Error> {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek() != Some('"') {
            return Err(Error {
                span,
                msg: "malformed raw string".into(),
            });
        }
        self.bump();
        let mut text = format!("{prefix}{}\"", "#".repeat(hashes));
        loop {
            match self.bump() {
                Some('"') => {
                    let mut n = 0usize;
                    while n < hashes && self.peek_at(n) == Some('#') {
                        n += 1;
                    }
                    if n == hashes {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        text.push('"');
                        text.push_str(&"#".repeat(hashes));
                        break;
                    }
                    text.push('"');
                }
                Some(c) => text.push(c),
                None => {
                    return Err(Error {
                        span,
                        msg: "unterminated raw string".into(),
                    })
                }
            }
        }
        Ok(Token {
            tok: Tok::Str(text),
            span,
        })
    }

    fn number(&mut self, span: Span) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_cont(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: a dot followed by a digit (so `1..2` ranges and
        // `1.max(2)` method calls stay separate tokens).
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if is_ident_cont(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent sign: `1e-9` — the alnum walk stops at `-`.
        if (text.ends_with('e') || text.ends_with('E'))
            && !text.starts_with("0x")
            && matches!(self.peek(), Some('+') | Some('-'))
            && self.peek2().is_some_and(|c| c.is_ascii_digit())
        {
            text.push(self.bump().expect("peeked sign"));
            while let Some(c) = self.peek() {
                if is_ident_cont(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let hexish =
            text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o");
        let is_float = text.contains('.')
            || (!hexish
                && (text.ends_with("f32")
                    || text.ends_with("f64")
                    || text
                        .bytes()
                        .zip(text.bytes().skip(1))
                        .any(|(a, b)| {
                            (a == b'e' || a == b'E')
                                && (b.is_ascii_digit() || b == b'+' || b == b'-')
                        })));
        Token {
            tok: if is_float {
                Tok::Float(text)
            } else {
                Tok::Int(text)
            },
            span,
        }
    }

    fn ident(&mut self, span: Span) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_cont(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Token {
            tok: Tok::Ident(text),
            span,
        }
    }

    fn punct(&mut self, span: Span) -> Result<Token, Error> {
        for op in OPS {
            if op
                .chars()
                .enumerate()
                .all(|(n, c)| self.peek_at(n) == Some(c))
            {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                return Ok(Token {
                    tok: Tok::Punct(op.to_string()),
                    span,
                });
            }
        }
        let c = self.bump().expect("punct called at a char");
        if "+-*/%=<>!&|^~@#$?;:,.".contains(c) {
            Ok(Token {
                tok: Tok::Punct(c.to_string()),
                span,
            })
        } else {
            Err(Error {
                span,
                msg: format!("unexpected character {c:?}"),
            })
        }
    }
}
