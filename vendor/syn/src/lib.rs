//! Offline vendored stand-in for `syn`.
//!
//! The real `syn` exposes a full typed AST over `proc_macro2` token
//! streams; this stand-in covers only the subset the DozzNoC
//! `cargo xtask analyze` passes consume:
//!
//! - [`parse_file`] lexes a whole source file into span-carrying token
//!   trees (`//`/`/* */` comments stripped, strings/chars/lifetimes/raw
//!   strings handled, multi-character operators munched greedily) and
//!   parses the item skeleton on top: functions with attributes,
//!   signatures (name, inputs, return-type tokens) and body token trees,
//!   `impl` blocks with their self type, inline modules (so `#[cfg(test)]`
//!   subtrees can be skipped), and everything else as verbatim tokens.
//! - Every token carries a [`Span`] (1-based line, 1-based column) so
//!   diagnostics point at real source locations.
//!
//! On top of the item skeleton, [`expr`] parses function bodies into a
//! statement/expression AST (blocks, `let`s, calls, method chains,
//! closures, paths, field accesses, control flow — enough for dataflow,
//! not full Rust); anything unmodelled degrades to verbatim token runs
//! so token-level scans keep full coverage. [`free_idents`] computes
//! closure-capture sets over that AST.

mod expr;
mod lex;
mod parse;

pub use expr::{
    free_idents, parse_block, parse_one, pattern_idents, walk_block_exprs, walk_exprs, Arm, Block,
    Expr, Stmt,
};
pub use lex::{lex, Delim, Error, Span, Tok, Token};
pub use parse::{parse_file, Attr, File, Item, ItemFn, ItemImpl, ItemMod, Param, Signature};

/// Render a token slice back to compact source-ish text (single spaces
/// between tokens, groups re-delimited). Used for human-readable type
/// strings in diagnostics; not guaranteed to round-trip.
pub fn tokens_to_string(tokens: &[Token]) -> String {
    let mut out = String::new();
    render(tokens, &mut out);
    out
}

fn render(tokens: &[Token], out: &mut String) {
    for t in tokens {
        if !out.is_empty() && !out.ends_with(['(', '[', '{', ' ']) {
            match &t.tok {
                Tok::Punct(p) if p == "::" || p == "," || p == ";" => {}
                _ => out.push(' '),
            }
        }
        match &t.tok {
            Tok::Ident(s) | Tok::Lifetime(s) | Tok::Int(s) | Tok::Float(s) | Tok::Str(s) => {
                out.push_str(s)
            }
            Tok::Punct(p) => out.push_str(p),
            Tok::Group(d, inner) => {
                let (open, close) = match d {
                    Delim::Paren => ('(', ')'),
                    Delim::Bracket => ('[', ']'),
                    Delim::Brace => ('{', '}'),
                };
                out.push(open);
                render(inner, out);
                out.push(close);
            }
        }
    }
}

/// Depth-first walk over a token tree, visiting every token (group
/// tokens are visited before their contents).
pub fn walk_tokens<'a>(tokens: &'a [Token], f: &mut dyn FnMut(&'a Token)) {
    for t in tokens {
        f(t);
        if let Tok::Group(_, inner) = &t.tok {
            walk_tokens(inner, f);
        }
    }
}
