//! Offline vendored stand-in for `syn`.
//!
//! The real `syn` exposes a full typed AST over `proc_macro2` token
//! streams; this stand-in covers only the subset the DozzNoC
//! `cargo xtask analyze` passes consume:
//!
//! - [`parse_file`] lexes a whole source file into span-carrying token
//!   trees (`//`/`/* */` comments stripped, strings/chars/lifetimes/raw
//!   strings handled, multi-character operators munched greedily) and
//!   parses the item skeleton on top: functions with attributes,
//!   signatures (name, inputs, return-type tokens) and body token trees,
//!   `impl` blocks with their self type, inline modules (so `#[cfg(test)]`
//!   subtrees can be skipped), and everything else as verbatim tokens.
//! - Every token carries a [`Span`] (1-based line, 1-based column) so
//!   diagnostics point at real source locations.
//!
//! Expression grammar is deliberately *not* modelled: the analyzer's
//! passes pattern-match token sequences inside function bodies, which is
//! exactly the granularity a structural linter for this codebase needs
//! (type names, call chains, operators) without a full parser's surface.

mod lex;
mod parse;

pub use lex::{lex, Delim, Error, Span, Tok, Token};
pub use parse::{parse_file, Attr, File, Item, ItemFn, ItemImpl, ItemMod, Param, Signature};

/// Render a token slice back to compact source-ish text (single spaces
/// between tokens, groups re-delimited). Used for human-readable type
/// strings in diagnostics; not guaranteed to round-trip.
pub fn tokens_to_string(tokens: &[Token]) -> String {
    let mut out = String::new();
    render(tokens, &mut out);
    out
}

fn render(tokens: &[Token], out: &mut String) {
    for t in tokens {
        if !out.is_empty() && !out.ends_with(['(', '[', '{', ' ']) {
            match &t.tok {
                Tok::Punct(p) if p == "::" || p == "," || p == ";" => {}
                _ => out.push(' '),
            }
        }
        match &t.tok {
            Tok::Ident(s) | Tok::Lifetime(s) | Tok::Int(s) | Tok::Float(s) | Tok::Str(s) => {
                out.push_str(s)
            }
            Tok::Punct(p) => out.push_str(p),
            Tok::Group(d, inner) => {
                let (open, close) = match d {
                    Delim::Paren => ('(', ')'),
                    Delim::Bracket => ('[', ']'),
                    Delim::Brace => ('{', '}'),
                };
                out.push(open);
                render(inner, out);
                out.push(close);
            }
        }
    }
}

/// Depth-first walk over a token tree, visiting every token (group
/// tokens are visited before their contents).
pub fn walk_tokens<'a>(tokens: &'a [Token], f: &mut dyn FnMut(&'a Token)) {
    for t in tokens {
        f(t);
        if let Tok::Group(_, inner) = &t.tok {
            walk_tokens(inner, f);
        }
    }
}
