//! Item-level parser: token trees → the item skeleton of a file.

use crate::lex::{lex, Delim, Error, Span, Tok, Token};

/// A parsed source file: its items, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct File {
    pub items: Vec<Item>,
}

/// An outer attribute, e.g. `#[must_use = "..."]` or `#[cfg(test)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// First path segment inside the brackets (`must_use`, `cfg`, `derive`).
    pub path: String,
    /// Every token between the brackets, verbatim.
    pub tokens: Vec<Token>,
    pub span: Span,
}

impl Attr {
    /// True when this is `#[cfg(test)]` (or any `cfg` list naming `test`).
    pub fn is_cfg_test(&self) -> bool {
        self.path == "cfg"
            && self.tokens.iter().any(|t| match &t.tok {
                Tok::Group(_, inner) => inner.iter().any(|t| t.ident() == Some("test")),
                _ => false,
            })
    }
}

/// One item. Anything the analyzer does not model structurally is kept
/// as its raw tokens so token-level passes still see it.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Fn(ItemFn),
    Impl(ItemImpl),
    Mod(ItemMod),
    Verbatim(Vec<Token>),
}

/// A function (free or method) with its attributes, signature, and body.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemFn {
    pub attrs: Vec<Attr>,
    pub sig: Signature,
    /// Body token tree; `None` for trait method declarations.
    pub body: Option<Vec<Token>>,
    pub span: Span,
}

/// A function signature, token-granular.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    pub ident: String,
    pub inputs: Vec<Param>,
    /// Tokens after `->`, empty when the function returns `()`.
    pub output: Vec<Token>,
}

/// One parameter: its binding name (when it is a simple binding) and the
/// tokens of its type annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: Option<String>,
    pub ty: Vec<Token>,
}

/// An `impl` block: self type (last path segment), optional trait name,
/// and the items inside.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemImpl {
    pub self_ty: String,
    pub trait_: Option<String>,
    pub items: Vec<Item>,
    pub span: Span,
}

/// A module: inline modules carry their items, `mod foo;` carries none.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemMod {
    pub attrs: Vec<Attr>,
    pub ident: String,
    pub items: Option<Vec<Item>>,
    pub span: Span,
}

/// Parse a whole source file.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let tokens = lex(src)?;
    Ok(File {
        items: parse_items(&tokens),
    })
}

/// Keywords that introduce an item we skip to `;` or past one group.
const SKIP_TO_SEMI_OR_BRACE: [&str; 7] =
    ["struct", "enum", "union", "type", "use", "static", "extern"];

fn parse_items(tokens: &[Token]) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let start = i;
        // Outer attributes (`#[...]`); inner attributes (`#![...]`) are
        // consumed and dropped.
        let mut attrs = Vec::new();
        while i < tokens.len() && tokens[i].is_punct("#") {
            let inner_attr = i + 1 < tokens.len() && tokens[i + 1].is_punct("!");
            let g = if inner_attr { i + 2 } else { i + 1 };
            match tokens.get(g) {
                Some(Token {
                    tok: Tok::Group(Delim::Bracket, inner),
                    span,
                }) => {
                    if !inner_attr {
                        attrs.push(Attr {
                            path: inner
                                .first()
                                .and_then(Token::ident)
                                .unwrap_or_default()
                                .to_string(),
                            tokens: inner.clone(),
                            span: *span,
                        });
                    }
                    i = g + 1;
                }
                _ => break,
            }
        }
        // Visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if i < tokens.len() && tokens[i].ident() == Some("pub") {
            i += 1;
            if matches!(
                tokens.get(i),
                Some(Token {
                    tok: Tok::Group(Delim::Paren, _),
                    ..
                })
            ) {
                i += 1;
            }
        }
        // Function qualifiers before `fn`.
        while i < tokens.len()
            && matches!(
                tokens[i].ident(),
                Some("const" | "async" | "unsafe" | "default" | "extern")
            )
        {
            // `const NAME: ...` / `extern "C" { ... }` are items, not
            // qualifiers — only treat these as qualifiers when a `fn`
            // (or more qualifiers) follows.
            let next_is_fnish = matches!(
                tokens.get(i + 1).and_then(Token::ident),
                Some("fn" | "const" | "async" | "unsafe" | "extern")
            ) || matches!(
                (tokens[i].ident(), tokens.get(i + 1).map(|t| &t.tok)),
                (Some("extern"), Some(Tok::Str(_)))
            );
            if next_is_fnish {
                i += 1;
                if matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Str(_))) {
                    i += 1; // extern ABI string
                }
            } else {
                break;
            }
        }

        match tokens.get(i).and_then(Token::ident) {
            Some("fn") => {
                let (item, next) = parse_fn(tokens, i, attrs);
                items.push(item);
                i = next;
            }
            Some("impl") => {
                let (item, next) = parse_impl(tokens, i);
                items.push(item);
                i = next;
            }
            Some("mod") => {
                let span = tokens[i].span;
                let ident = tokens
                    .get(i + 1)
                    .and_then(Token::ident)
                    .unwrap_or_default()
                    .to_string();
                i += 2;
                let mut inner = None;
                if let Some(Token {
                    tok: Tok::Group(Delim::Brace, body),
                    ..
                }) = tokens.get(i)
                {
                    inner = Some(parse_items(body));
                    i += 1;
                } else if tokens.get(i).is_some_and(|t| t.is_punct(";")) {
                    i += 1;
                }
                items.push(Item::Mod(ItemMod {
                    attrs,
                    ident,
                    items: inner,
                    span,
                }));
            }
            Some("trait") => {
                // Walk to the body brace (skipping supertrait bounds and
                // where clauses) and parse the method skeletons inside.
                let span = tokens[i].span;
                let name = tokens
                    .get(i + 1)
                    .and_then(Token::ident)
                    .unwrap_or_default()
                    .to_string();
                i += 1;
                while i < tokens.len() {
                    if let Tok::Group(Delim::Brace, body) = &tokens[i].tok {
                        items.push(Item::Impl(ItemImpl {
                            self_ty: name,
                            trait_: None,
                            items: parse_items(body),
                            span,
                        }));
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            Some(kw) if SKIP_TO_SEMI_OR_BRACE.contains(&kw) || kw == "const" => {
                // `struct X { .. }` ends at its brace group; `struct X(..);`,
                // `const N: T = ..;`, `use ..;` end at `;`.
                let item_start = i;
                while i < tokens.len() {
                    if tokens[i].is_punct(";") {
                        i += 1;
                        break;
                    }
                    if matches!(&tokens[i].tok, Tok::Group(Delim::Brace, _))
                        && matches!(kw, "struct" | "enum" | "union" | "extern")
                    {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                items.push(Item::Verbatim(tokens[item_start..i].to_vec()));
            }
            Some("macro_rules") => {
                // macro_rules ! name { ... }
                while i < tokens.len() {
                    if matches!(&tokens[i].tok, Tok::Group(Delim::Brace, _)) {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                items.push(Item::Verbatim(tokens[start..i].to_vec()));
            }
            _ => {
                // Unknown leading token (macro invocation at item level,
                // stray semicolon…): consume through the next `;` or
                // brace group so progress is guaranteed.
                while i < tokens.len() {
                    let done = tokens[i].is_punct(";")
                        || matches!(&tokens[i].tok, Tok::Group(Delim::Brace, _));
                    i += 1;
                    if done {
                        break;
                    }
                }
                if i > start {
                    items.push(Item::Verbatim(tokens[start..i].to_vec()));
                } else {
                    break;
                }
            }
        }
    }
    items
}

/// Parse `fn name <generics>? (params) (-> ty)? where…? { body }` with the
/// cursor on `fn`. Returns the item and the index past it.
fn parse_fn(tokens: &[Token], mut i: usize, attrs: Vec<Attr>) -> (Item, usize) {
    let span = tokens[i].span;
    i += 1;
    let ident = tokens
        .get(i)
        .and_then(Token::ident)
        .unwrap_or_default()
        .to_string();
    i += 1;
    // Generics: `<` … `>` with `<<`/`>>` counting double.
    if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i64;
        while i < tokens.len() {
            match &tokens[i].tok {
                Tok::Punct(p) if p == "<" => depth += 1,
                Tok::Punct(p) if p == "<<" => depth += 2,
                Tok::Punct(p) if p == ">" => depth -= 1,
                Tok::Punct(p) if p == ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // Parameters.
    let mut inputs = Vec::new();
    if let Some(Token {
        tok: Tok::Group(Delim::Paren, params),
        ..
    }) = tokens.get(i)
    {
        inputs = parse_params(params);
        i += 1;
    }
    // Return type: tokens between `->` and the body / `;` / `where`.
    let mut output = Vec::new();
    if tokens.get(i).is_some_and(|t| t.is_punct("->")) {
        i += 1;
        while i < tokens.len() {
            if tokens[i].is_punct(";")
                || tokens[i].ident() == Some("where")
                || matches!(&tokens[i].tok, Tok::Group(Delim::Brace, _))
            {
                break;
            }
            output.push(tokens[i].clone());
            i += 1;
        }
    }
    // Where clause: skip to the body or `;`.
    while i < tokens.len()
        && !tokens[i].is_punct(";")
        && !matches!(&tokens[i].tok, Tok::Group(Delim::Brace, _))
    {
        i += 1;
    }
    let mut body = None;
    if let Some(Token {
        tok: Tok::Group(Delim::Brace, b),
        ..
    }) = tokens.get(i)
    {
        body = Some(b.clone());
        i += 1;
    } else if tokens.get(i).is_some_and(|t| t.is_punct(";")) {
        i += 1;
    }
    (
        Item::Fn(ItemFn {
            attrs,
            sig: Signature {
                ident,
                inputs,
                output,
            },
            body,
            span,
        }),
        i,
    )
}

/// Split a parameter list on top-level commas and extract binding names.
fn parse_params(tokens: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    for chunk in split_top_level(tokens, ",") {
        if chunk.is_empty() {
            continue;
        }
        // `self` receivers: `self`, `&self`, `&mut self`, `mut self`.
        if chunk.iter().any(|t| t.ident() == Some("self"))
            && !chunk.iter().any(|t| t.is_punct(":"))
        {
            params.push(Param {
                name: Some("self".into()),
                ty: Vec::new(),
            });
            continue;
        }
        let colon = chunk.iter().position(|t| t.is_punct(":"));
        match colon {
            Some(c) => {
                let pat = &chunk[..c];
                let name = match pat {
                    [t] => t.ident().map(str::to_string),
                    [m, t] if m.ident() == Some("mut") => t.ident().map(str::to_string),
                    _ => None,
                };
                params.push(Param {
                    name,
                    ty: chunk[c + 1..].to_vec(),
                });
            }
            None => params.push(Param {
                name: None,
                ty: chunk.to_vec(),
            }),
        }
    }
    params
}

/// Split a token slice on a top-level punct (groups are opaque; angle
/// brackets tracked so `Result<A, B>` does not split).
fn split_top_level<'a>(tokens: &'a [Token], sep: &str) -> Vec<&'a [Token]> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Punct(p) if p == "<" => depth += 1,
            Tok::Punct(p) if p == "<<" => depth += 2,
            Tok::Punct(p) if p == ">" => depth -= 1,
            Tok::Punct(p) if p == ">>" => depth -= 2,
            Tok::Punct(p) if p == sep && depth <= 0 => {
                out.push(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&tokens[start..]);
    out
}

/// Parse `impl <generics>? Type { .. }` / `impl Trait for Type { .. }`
/// with the cursor on `impl`.
fn parse_impl(tokens: &[Token], mut i: usize) -> (Item, usize) {
    let span = tokens[i].span;
    i += 1;
    // Generics on the impl itself.
    if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i64;
        while i < tokens.len() {
            match &tokens[i].tok {
                Tok::Punct(p) if p == "<" => depth += 1,
                Tok::Punct(p) if p == "<<" => depth += 2,
                Tok::Punct(p) if p == ">" => depth -= 1,
                Tok::Punct(p) if p == ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // Header tokens up to the body brace.
    let mut header: Vec<&Token> = Vec::new();
    let mut body = None;
    while i < tokens.len() {
        if let Tok::Group(Delim::Brace, b) = &tokens[i].tok {
            body = Some(b);
            i += 1;
            break;
        }
        header.push(&tokens[i]);
        i += 1;
    }
    let for_pos = header.iter().position(|t| t.ident() == Some("for"));
    let (trait_part, ty_part) = match for_pos {
        Some(p) => (&header[..p], &header[p + 1..]),
        None => (&header[..0], &header[..]),
    };
    let last_path_ident = |toks: &[&Token]| -> String {
        let mut name = String::new();
        for t in toks {
            if t.is_punct("<") {
                break;
            }
            if let Some(id) = t.ident() {
                if id != "where" && id != "dyn" && id != "mut" {
                    name = id.to_string();
                }
            }
        }
        name
    };
    let self_ty = last_path_ident(ty_part);
    let trait_ = if trait_part.is_empty() {
        None
    } else {
        Some(last_path_ident(trait_part))
    };
    (
        Item::Impl(ItemImpl {
            self_ty,
            trait_,
            items: body.map(|b| parse_items(b)).unwrap_or_default(),
            span,
        }),
        i,
    )
}
