//! Statement/expression-level parser: function-body token trees → a
//! typed statement/expression AST.
//!
//! The item parser (`crate::parse`) stops at function bodies — enough
//! for signature-level passes, structurally blind inside. This module
//! parses those bodies into the subset of Rust's expression grammar the
//! dataflow passes need:
//!
//! - blocks and `let` statements (pattern idents, optional type tokens,
//!   initializer),
//! - paths (`a::b::c`), calls, method chains, field accesses, indexing,
//! - closures with `move`-ness, parameter idents and body,
//! - references (`&`/`&mut`), binary/unary operators, assignments,
//! - `if`/`match`/`while`/`for`/`loop` control flow (conditions and
//!   bodies modelled; match-arm patterns kept as tokens).
//!
//! Everything else — macro bodies, complex patterns, turbofish corner
//! cases — degrades to [`Expr::Verbatim`] token runs rather than
//! failing: a pass walking the AST still sees every token of the
//! function, just with less structure. Parsing never errors and always
//! makes progress; the worst mis-parse costs precision, not coverage.
//!
//! On top of the AST, [`free_idents`] computes the free identifiers of
//! a block or expression (identifiers read that no enclosing `let`,
//! closure parameter, or loop pattern binds) — the primitive behind
//! closure capture analysis.

use std::collections::BTreeSet;

use crate::lex::{Delim, Span, Tok, Token};

/// A `{ … }` body: its statements in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

/// One statement of a block.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let [mut] pat [: ty] [= init];` — pattern identifiers are the
    /// bindings the pattern introduces (heuristic for non-trivial
    /// patterns: lowercase path segments bind, uppercase ones match).
    Let {
        idents: Vec<String>,
        /// True when the binding (or any pattern ident) is `mut`.
        mutable: bool,
        /// Type-annotation tokens, verbatim, when present.
        ty: Option<Vec<Token>>,
        init: Option<Expr>,
        span: Span,
    },
    /// An expression, with or without a trailing `;`.
    Expr(Expr),
    /// A nested item (`fn`, `struct`, `use`, …) kept as raw tokens.
    Item(Vec<Token>),
}

/// One expression. `Box`es keep the enum small; spans point at the
/// expression's first token.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `a`, `a::b::C`, `Self::f` — segments in order.
    Path { segments: Vec<String>, span: Span },
    /// Any literal token (int, float, string, char, lifetime).
    Lit { span: Span },
    /// `callee(args…)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        span: Span,
    },
    /// `recv.method(args…)`.
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// `base.member` (named or tuple field).
    Field {
        base: Box<Expr>,
        member: String,
        span: Span,
    },
    /// `base[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        span: Span,
    },
    /// `[move] |params…| body`.
    Closure {
        is_move: bool,
        params: Vec<String>,
        body: Box<Expr>,
        span: Span,
    },
    /// `&expr` / `&mut expr`.
    Reference {
        mutable: bool,
        expr: Box<Expr>,
        span: Span,
    },
    /// `lhs op rhs` for every binary operator (including `=`, `+=`, …).
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    /// `op expr` for prefix `!` / `-` / `*`.
    Unary {
        op: String,
        expr: Box<Expr>,
        span: Span,
    },
    /// A `{ … }` block expression.
    Block(Block),
    /// `if cond { … } [else …]` (also `if let …` — the pattern's idents
    /// bind inside `then`).
    If {
        cond: Box<Expr>,
        /// Idents bound by an `if let` pattern; empty for plain `if`.
        bound: Vec<String>,
        then: Block,
        else_: Option<Box<Expr>>,
        span: Span,
    },
    /// `match scrutinee { arms… }`; each arm is (pattern idents, guard
    /// and body expression).
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Arm>,
        span: Span,
    },
    /// `for pat in iter { … }`.
    ForLoop {
        bound: Vec<String>,
        iter: Box<Expr>,
        body: Block,
        span: Span,
    },
    /// `while cond { … }` / `while let pat = cond { … }` / `loop { … }`
    /// (cond is a true literal for `loop`).
    While {
        cond: Box<Expr>,
        bound: Vec<String>,
        body: Block,
        span: Span,
    },
    /// `return [expr]` / `break [expr]` / `continue`.
    Jump {
        keyword: String,
        value: Option<Box<Expr>>,
        span: Span,
    },
    /// Anything unmodelled (macro invocations, struct literals, raw
    /// token runs). The tokens are kept so token-level scans lose
    /// nothing.
    Verbatim { tokens: Vec<Token>, span: Span },
}

/// One match arm: the idents its pattern binds and its body.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    pub bound: Vec<String>,
    pub body: Expr,
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Path { span, .. }
            | Expr::Lit { span }
            | Expr::Call { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Closure { span, .. }
            | Expr::Reference { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::If { span, .. }
            | Expr::Match { span, .. }
            | Expr::ForLoop { span, .. }
            | Expr::While { span, .. }
            | Expr::Jump { span, .. }
            | Expr::Verbatim { span, .. } => *span,
            Expr::Block(b) => b.span,
        }
    }
}

/// Parse a function-body token slice (the contents of its brace group)
/// as a block. Never fails: unmodelled runs become `Verbatim`.
pub fn parse_block(tokens: &[Token]) -> Block {
    let span = tokens.first().map(|t| t.span).unwrap_or_default();
    let mut p = Parser { tokens, i: 0 };
    Block {
        stmts: p.stmts(),
        span,
    }
}

/// Keywords that head a statement-like item inside a block.
const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "impl", "trait", "mod", "use", "static", "type",
];

/// Keywords that are never path segments or operands.
const NON_OPERAND_KEYWORDS: [&str; 6] = ["let", "else", "in", "where", "as", "mut"];

struct Parser<'a> {
    tokens: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.i)
    }

    fn peek_at(&self, n: usize) -> Option<&'a Token> {
        self.tokens.get(self.i + n)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, id: &str) -> bool {
        self.peek().and_then(Token::ident) == Some(id)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    // ---- statements -----------------------------------------------------

    fn stmts(&mut self) -> Vec<Stmt> {
        let mut out = Vec::new();
        while self.i < self.tokens.len() {
            let before = self.i;
            if self.eat_punct(";") {
                continue; // empty statement
            }
            if let Some(stmt) = self.stmt() {
                out.push(stmt);
            }
            if self.i == before {
                // Guarantee progress whatever the token.
                let t = self.tokens[self.i].clone();
                let span = t.span;
                self.i += 1;
                out.push(Stmt::Expr(Expr::Verbatim {
                    tokens: vec![t],
                    span,
                }));
            }
        }
        out
    }

    fn stmt(&mut self) -> Option<Stmt> {
        // Outer attributes on statements/items: skip them.
        while self.at_punct("#") {
            self.i += 1;
            if matches!(
                self.peek().map(|t| &t.tok),
                Some(Tok::Group(Delim::Bracket, _))
            ) {
                self.i += 1;
            }
        }
        let first = self.peek()?;
        if let Some(kw) = first.ident() {
            if kw == "let" {
                return Some(self.let_stmt());
            }
            if ITEM_KEYWORDS.contains(&kw) && !self.looks_like_expr_head() {
                return Some(self.item_stmt());
            }
            // `pub` / `const fn` inside a block — also items.
            if kw == "pub"
                || (kw == "const" && self.peek_at(1).and_then(Token::ident) == Some("fn"))
            {
                return Some(self.item_stmt());
            }
        }
        let e = self.expr();
        self.eat_punct(";");
        Some(Stmt::Expr(e))
    }

    /// `use`/`type`/`static` cannot head an expression; `struct` etc.
    /// can't either. But `fn` could appear as `fn()` trait-object-ish
    /// tokens in a cast — treat any of them as items (precision over
    /// recall: they end up Verbatim either way).
    fn looks_like_expr_head(&self) -> bool {
        false
    }

    /// Consume an item through its terminating `;` or brace group.
    fn item_stmt(&mut self) -> Stmt {
        let start = self.i;
        while self.i < self.tokens.len() {
            let t = &self.tokens[self.i];
            if t.is_punct(";") {
                self.i += 1;
                break;
            }
            if matches!(&t.tok, Tok::Group(Delim::Brace, _)) {
                self.i += 1;
                // `impl T { … }` ends at the brace; `struct X {}` too.
                break;
            }
            self.i += 1;
        }
        Stmt::Item(self.tokens[start..self.i].to_vec())
    }

    fn let_stmt(&mut self) -> Stmt {
        let span = self.tokens[self.i].span;
        self.i += 1; // `let`
                     // Pattern: tokens up to `:`, `=`, or `;` at this level.
        let pat_start = self.i;
        while self.i < self.tokens.len() {
            let t = &self.tokens[self.i];
            if t.is_punct(":") || t.is_punct("=") || t.is_punct(";") {
                break;
            }
            // `let Some(x) = …` / `let (a, b) = …`: groups belong to
            // the pattern.
            self.i += 1;
        }
        let pat = &self.tokens[pat_start..self.i];
        let idents = pattern_idents(pat);
        let mutable = pat.iter().any(|t| t.ident() == Some("mut"));
        let mut ty = None;
        if self.eat_punct(":") {
            let ty_start = self.i;
            let mut depth = 0i64;
            while self.i < self.tokens.len() {
                let t = &self.tokens[self.i];
                match &t.tok {
                    Tok::Punct(p) if p == "<" => depth += 1,
                    Tok::Punct(p) if p == "<<" => depth += 2,
                    Tok::Punct(p) if p == ">" => depth -= 1,
                    Tok::Punct(p) if p == ">>" => depth -= 2,
                    Tok::Punct(p) if (p == "=" || p == ";") && depth <= 0 => break,
                    _ => {}
                }
                self.i += 1;
            }
            ty = Some(self.tokens[ty_start..self.i].to_vec());
        }
        let mut init = None;
        if self.eat_punct("=") {
            init = Some(self.expr());
            // `let … = init else { … };`
            if self.at_ident("else") {
                self.i += 1;
                if matches!(
                    self.peek().map(|t| &t.tok),
                    Some(Tok::Group(Delim::Brace, _))
                ) {
                    self.i += 1;
                }
            }
        }
        self.eat_punct(";");
        Stmt::Let {
            idents,
            mutable,
            ty,
            init,
            span,
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Full expression: assignment level (right-associative, lowest
    /// precedence).
    fn expr(&mut self) -> Expr {
        let lhs = self.range_expr();
        for op in [
            "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
        ] {
            if self.at_punct(op) {
                let span = self.tokens[self.i].span;
                self.i += 1;
                let rhs = self.expr();
                return Expr::Binary {
                    op: op.to_string(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    span,
                };
            }
        }
        lhs
    }

    fn range_expr(&mut self) -> Expr {
        let lhs = self.binary_expr(0);
        if self.at_punct("..") || self.at_punct("..=") {
            let op = match &self.tokens[self.i].tok {
                Tok::Punct(p) => p.clone(),
                _ => unreachable!("checked punct"),
            };
            let span = self.tokens[self.i].span;
            self.i += 1;
            // Open-ended ranges: `a..` before `)` / `]` / `{` / `,`.
            let rhs = if self.range_rhs_present() {
                self.binary_expr(0)
            } else {
                Expr::Lit { span }
            };
            return Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn range_rhs_present(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => {
                !(t.is_punct(",")
                    || t.is_punct(";")
                    || matches!(&t.tok, Tok::Group(Delim::Brace, _)))
            }
        }
    }

    /// Binary operators with a coarse precedence ladder.
    fn binary_expr(&mut self, min_prec: u8) -> Expr {
        let mut lhs = self.unary_expr();
        loop {
            let Some((op, prec)) = self.peek_binop() else {
                break;
            };
            if prec < min_prec {
                break;
            }
            let span = self.tokens[self.i].span;
            self.i += 1;
            let rhs = self.binary_expr(prec + 1);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn peek_binop(&self) -> Option<(String, u8)> {
        let t = self.peek()?;
        let Tok::Punct(p) = &t.tok else {
            // `as` casts: treat as a binary-ish operator so the type
            // tokens don't leak into the next statement.
            if t.ident() == Some("as") {
                return Some(("as".into(), 9));
            }
            return None;
        };
        let prec = match p.as_str() {
            "||" => 1,
            "&&" => 2,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => 3,
            "|" => 4,
            "^" => 5,
            // `&` only binds as binary when something operand-like came
            // before; prefix `&` is handled by unary_expr, so reaching
            // here means lhs exists.
            "&" => 6,
            "<<" | ">>" => 7,
            "+" | "-" => 8,
            "*" | "/" | "%" => 9,
            _ => return None,
        };
        Some((p.clone(), prec))
    }

    fn unary_expr(&mut self) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Verbatim {
                tokens: Vec::new(),
                span: Span::default(),
            };
        };
        let span = t.span;
        // `&` / `&mut` reference.
        if t.is_punct("&") || t.is_punct("&&") {
            let double = t.is_punct("&&");
            self.i += 1;
            let mutable = if self.at_ident("mut") {
                self.i += 1;
                true
            } else {
                false
            };
            let inner = self.unary_expr();
            let once = Expr::Reference {
                mutable,
                expr: Box::new(inner),
                span,
            };
            return if double {
                Expr::Reference {
                    mutable: false,
                    expr: Box::new(once),
                    span,
                }
            } else {
                once
            };
        }
        if t.is_punct("!") || t.is_punct("-") || t.is_punct("*") {
            let op = match &t.tok {
                Tok::Punct(p) => p.clone(),
                _ => unreachable!("checked punct"),
            };
            self.i += 1;
            let inner = self.unary_expr();
            return Expr::Unary {
                op,
                expr: Box::new(inner),
                span,
            };
        }
        self.postfix_expr()
    }

    /// Primary expression followed by any chain of `.method(..)`,
    /// `.field`, `(call)`, `[index]`, `.await`, `?`.
    fn postfix_expr(&mut self) -> Expr {
        let mut e = self.primary_expr();
        loop {
            let Some(t) = self.peek() else { break };
            if t.is_punct("?") {
                self.i += 1;
                continue; // `?` is transparent to dataflow
            }
            if t.is_punct(".") {
                let span = t.span;
                // `.ident`, `.ident(..)`, `.0`, `.await`
                let Some(next) = self.peek_at(1) else {
                    self.i += 1;
                    continue;
                };
                match &next.tok {
                    Tok::Ident(name) => {
                        if name == "await" {
                            self.i += 2;
                            continue;
                        }
                        // Turbofish: `.collect::<Vec<_>>()`.
                        let mut after = self.i + 2;
                        if self.tokens.get(after).is_some_and(|t| t.is_punct("::")) {
                            after += 1;
                            let mut depth = 0i64;
                            while let Some(t) = self.tokens.get(after) {
                                match &t.tok {
                                    Tok::Punct(p) if p == "<" => depth += 1,
                                    Tok::Punct(p) if p == "<<" => depth += 2,
                                    Tok::Punct(p) if p == ">" => depth -= 1,
                                    Tok::Punct(p) if p == ">>" => depth -= 2,
                                    _ => {}
                                }
                                after += 1;
                                if depth <= 0 {
                                    break;
                                }
                            }
                        }
                        if let Some(Token {
                            tok: Tok::Group(Delim::Paren, args),
                            ..
                        }) = self.tokens.get(after)
                        {
                            let args = parse_args(args);
                            self.i = after + 1;
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                method: name.clone(),
                                args,
                                span,
                            };
                        } else {
                            self.i = after;
                            e = Expr::Field {
                                base: Box::new(e),
                                member: name.clone(),
                                span,
                            };
                        }
                        continue;
                    }
                    Tok::Int(n) => {
                        self.i += 2;
                        e = Expr::Field {
                            base: Box::new(e),
                            member: n.clone(),
                            span,
                        };
                        continue;
                    }
                    Tok::Float(n) => {
                        // `t.0.1` lexes the `0.1` as a float: two tuple
                        // field accesses.
                        self.i += 2;
                        for part in n.split('.') {
                            e = Expr::Field {
                                base: Box::new(e),
                                member: part.to_string(),
                                span,
                            };
                        }
                        continue;
                    }
                    _ => {
                        self.i += 1;
                        continue;
                    }
                }
            }
            match &t.tok {
                Tok::Group(Delim::Paren, args) => {
                    let span = t.span;
                    let args = parse_args(args);
                    self.i += 1;
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                        span,
                    };
                }
                Tok::Group(Delim::Bracket, idx) => {
                    let span = t.span;
                    let mut p = Parser { tokens: idx, i: 0 };
                    let index = p.expr();
                    self.i += 1;
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                        span,
                    };
                }
                _ => break,
            }
        }
        e
    }

    fn primary_expr(&mut self) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Verbatim {
                tokens: Vec::new(),
                span: Span::default(),
            };
        };
        let span = t.span;
        match &t.tok {
            Tok::Int(_) | Tok::Float(_) | Tok::Str(_) | Tok::Lifetime(_) => {
                self.i += 1;
                Expr::Lit { span }
            }
            Tok::Group(Delim::Brace, inner) => {
                self.i += 1;
                Expr::Block(parse_block(inner))
            }
            Tok::Group(Delim::Paren, inner) => {
                self.i += 1;
                // Parenthesized expression or tuple; parse the first
                // expression and keep the rest as further args of a
                // verbatim tuple.
                let parts = parse_args(inner);
                match parts.len() {
                    1 => parts.into_iter().next().expect("len checked"),
                    _ => Expr::Verbatim {
                        tokens: inner.clone(),
                        span,
                    },
                }
            }
            Tok::Group(Delim::Bracket, inner) => {
                self.i += 1;
                Expr::Verbatim {
                    tokens: inner.clone(),
                    span,
                }
            }
            Tok::Punct(p) if p == "|" || p == "||" => self.closure_expr(false),
            Tok::Ident(id) => match id.as_str() {
                "move" => {
                    // `move |..| ..` or `move { .. }` (async blocks).
                    if self
                        .peek_at(1)
                        .is_some_and(|t| t.is_punct("|") || t.is_punct("||"))
                    {
                        self.i += 1;
                        self.closure_expr(true)
                    } else {
                        self.verbatim_run()
                    }
                }
                "if" => self.if_expr(),
                "match" => self.match_expr(),
                "for" => self.for_expr(),
                "while" => self.while_expr(),
                "loop" => {
                    self.i += 1;
                    let body = self.brace_block();
                    Expr::While {
                        cond: Box::new(Expr::Lit { span }),
                        bound: Vec::new(),
                        body,
                        span,
                    }
                }
                "return" | "break" | "continue" => {
                    let kw = id.clone();
                    self.i += 1;
                    let value = if kw != "continue" && self.expr_follows() {
                        Some(Box::new(self.expr()))
                    } else {
                        None
                    };
                    Expr::Jump {
                        keyword: kw,
                        value,
                        span,
                    }
                }
                "unsafe" => {
                    self.i += 1;
                    if matches!(
                        self.peek().map(|t| &t.tok),
                        Some(Tok::Group(Delim::Brace, _))
                    ) {
                        let Some(Token {
                            tok: Tok::Group(Delim::Brace, inner),
                            ..
                        }) = self.bump()
                        else {
                            unreachable!("peeked brace group");
                        };
                        Expr::Block(parse_block(inner))
                    } else {
                        self.verbatim_run()
                    }
                }
                kw if NON_OPERAND_KEYWORDS.contains(&kw) => self.verbatim_run(),
                _ => self.path_expr(),
            },
            _ => self.verbatim_run(),
        }
    }

    /// `a::b::c`, possibly with turbofish segments skipped. A trailing
    /// `{`-group is NOT consumed (struct literals vs. block ambiguity:
    /// passes don't need struct-literal structure).
    fn path_expr(&mut self) -> Expr {
        let span = self.tokens[self.i].span;
        let mut segments = Vec::new();
        loop {
            let Some(t) = self.peek() else { break };
            if let Some(id) = t.ident() {
                segments.push(id.to_string());
                self.i += 1;
            } else {
                break;
            }
            if self.at_punct("::") {
                self.i += 1;
                // Turbofish or generic segment: `::<…>`.
                if self.at_punct("<") {
                    let mut depth = 0i64;
                    while self.i < self.tokens.len() {
                        match &self.tokens[self.i].tok {
                            Tok::Punct(p) if p == "<" => depth += 1,
                            Tok::Punct(p) if p == "<<" => depth += 2,
                            Tok::Punct(p) if p == ">" => depth -= 1,
                            Tok::Punct(p) if p == ">>" => depth -= 2,
                            _ => {}
                        }
                        self.i += 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    // `::<T>` may chain on: `Vec::<u8>::new`.
                    if self.at_punct("::") {
                        self.i += 1;
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        Expr::Path { segments, span }
    }

    fn closure_expr(&mut self, is_move: bool) -> Expr {
        let span = self.tokens[self.i].span;
        let mut params = Vec::new();
        if self.at_punct("||") {
            self.i += 1;
        } else {
            self.i += 1; // opening `|`
            let start = self.i;
            while self.i < self.tokens.len() && !self.tokens[self.i].is_punct("|") {
                self.i += 1;
            }
            params = pattern_idents(&self.tokens[start..self.i]);
            self.i += 1; // closing `|`
        }
        // Optional return type `-> T`.
        if self.at_punct("->") {
            self.i += 1;
            while self.i < self.tokens.len() {
                if matches!(&self.tokens[self.i].tok, Tok::Group(Delim::Brace, _)) {
                    break;
                }
                self.i += 1;
            }
        }
        let body = self.expr();
        Expr::Closure {
            is_move,
            params,
            body: Box::new(body),
            span,
        }
    }

    fn if_expr(&mut self) -> Expr {
        let span = self.tokens[self.i].span;
        self.i += 1; // `if`
        let mut bound = Vec::new();
        if self.at_ident("let") {
            self.i += 1;
            // Pattern up to `=` at this level.
            let start = self.i;
            while self.i < self.tokens.len() && !self.tokens[self.i].is_punct("=") {
                self.i += 1;
            }
            bound = pattern_idents(&self.tokens[start..self.i]);
            self.eat_punct("=");
        }
        let cond = self.cond_expr();
        let then = self.brace_block();
        let mut else_ = None;
        if self.at_ident("else") {
            self.i += 1;
            if self.at_ident("if") {
                else_ = Some(Box::new(self.if_expr()));
            } else {
                else_ = Some(Box::new(Expr::Block(self.brace_block())));
            }
        }
        Expr::If {
            cond: Box::new(cond),
            bound,
            then,
            else_,
            span,
        }
    }

    fn match_expr(&mut self) -> Expr {
        let span = self.tokens[self.i].span;
        self.i += 1; // `match`
        let scrutinee = self.cond_expr();
        let mut arms = Vec::new();
        if let Some(Token {
            tok: Tok::Group(Delim::Brace, inner),
            ..
        }) = self.peek()
        {
            arms = parse_arms(inner);
            self.i += 1;
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            span,
        }
    }

    fn for_expr(&mut self) -> Expr {
        let span = self.tokens[self.i].span;
        self.i += 1; // `for`
        let start = self.i;
        while self.i < self.tokens.len() && self.tokens[self.i].ident() != Some("in") {
            self.i += 1;
        }
        let bound = pattern_idents(&self.tokens[start..self.i]);
        if self.at_ident("in") {
            self.i += 1;
        }
        let iter = self.cond_expr();
        let body = self.brace_block();
        Expr::ForLoop {
            bound,
            iter: Box::new(iter),
            body,
            span,
        }
    }

    fn while_expr(&mut self) -> Expr {
        let span = self.tokens[self.i].span;
        self.i += 1; // `while`
        let mut bound = Vec::new();
        if self.at_ident("let") {
            self.i += 1;
            let start = self.i;
            while self.i < self.tokens.len() && !self.tokens[self.i].is_punct("=") {
                self.i += 1;
            }
            bound = pattern_idents(&self.tokens[start..self.i]);
            self.eat_punct("=");
        }
        let cond = self.cond_expr();
        let body = self.brace_block();
        Expr::While {
            cond: Box::new(cond),
            bound,
            body,
            span,
        }
    }

    /// Condition position: expressions end at the body brace. Struct
    /// literals are illegal here in Rust, so a brace group terminates.
    fn cond_expr(&mut self) -> Expr {
        // Parse a normal expression, but primary_expr's path parser
        // never consumes brace groups, and postfix stops at one — the
        // grammar subset happens to match condition position already.
        self.expr()
    }

    fn brace_block(&mut self) -> Block {
        if let Some(Token {
            tok: Tok::Group(Delim::Brace, inner),
            span,
        }) = self.peek()
        {
            let b = Block {
                stmts: {
                    let mut p = Parser {
                        tokens: inner,
                        i: 0,
                    };
                    p.stmts()
                },
                span: *span,
            };
            self.i += 1;
            b
        } else {
            Block {
                stmts: Vec::new(),
                span: self.peek().map(|t| t.span).unwrap_or_default(),
            }
        }
    }

    fn expr_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => !(t.is_punct(";") || t.is_punct(",") || t.is_punct(")")),
        }
    }

    /// Consume one unmodelled construct: a macro invocation
    /// (`name ! (…)`), struct-literal tail, or a single token.
    fn verbatim_run(&mut self) -> Expr {
        let start = self.i;
        let span = self.tokens[start].span;
        self.i += 1;
        // Macro invocation: `ident ! group`.
        if self.at_punct("!") {
            self.i += 1;
            if matches!(self.peek().map(|t| &t.tok), Some(Tok::Group(_, _))) {
                self.i += 1;
            }
        }
        Expr::Verbatim {
            tokens: self.tokens[start..self.i].to_vec(),
            span,
        }
    }
}

/// Split a call-argument token slice on top-level commas and parse each
/// piece as an expression.
fn parse_args(tokens: &[Token]) -> Vec<Expr> {
    let mut args = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    // Commas inside a closure's `|a, b|` parameter list separate
    // params, not call arguments; when an argument *starts* with a
    // closure head (`|` or `move |`), commas are ignored up to the
    // closing `|`.
    let mut params_until = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if i < params_until {
            continue;
        }
        let arg_head = i == start || (i == start + 1 && tokens[start].ident() == Some("move"));
        if arg_head && t.is_punct("|") {
            if let Some(close) = tokens[i + 1..].iter().position(|t| t.is_punct("|")) {
                params_until = i + 1 + close + 1;
                continue;
            }
        }
        match &t.tok {
            Tok::Punct(p) if p == "<" => depth += 1,
            Tok::Punct(p) if p == "<<" => depth += 2,
            Tok::Punct(p) if p == ">" => depth -= 1,
            Tok::Punct(p) if p == ">>" => depth -= 2,
            Tok::Punct(p) if p == "," && depth <= 0 => {
                if i > start {
                    args.push(parse_one(&tokens[start..i]));
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < tokens.len() {
        args.push(parse_one(&tokens[start..]));
    }
    args
}

/// Parse one expression from a complete token slice.
pub fn parse_one(tokens: &[Token]) -> Expr {
    let mut p = Parser { tokens, i: 0 };
    let e = p.expr();
    if p.i < tokens.len() {
        // Trailing unparsed tokens (struct-literal tails, pattern-ish
        // runs): keep them so token scans stay complete.
        let span = tokens[p.i].span;
        let rest = Expr::Verbatim {
            tokens: tokens[p.i..].to_vec(),
            span,
        };
        return Expr::Binary {
            op: ";".into(),
            lhs: Box::new(e),
            rhs: Box::new(rest),
            span,
        };
    }
    e
}

/// Identifiers a pattern binds. Heuristic: lowercase-starting
/// identifiers bind (`x`, `mut cfg`, `Some(inner)` → `inner`);
/// uppercase ones are paths being matched (`Some`, `Ordering`). Path
/// segments after `::` never bind, and `ref`/`mut`/`_` are skipped.
pub fn pattern_idents(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    collect_pattern_idents(tokens, &mut out);
    out
}

fn collect_pattern_idents(tokens: &[Token], out: &mut Vec<String>) {
    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Ident(id) => {
                if id == "mut" || id == "ref" || id == "_" {
                    continue;
                }
                // Skip path segments: preceded or followed by `::`, or a
                // struct/tuple-variant name directly before a group.
                let prev_sep = i > 0 && tokens[i - 1].is_punct("::");
                let next_sep = tokens.get(i + 1).is_some_and(|t| t.is_punct("::"));
                let heads_group =
                    matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Group(_, _)));
                let binds = id
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_');
                if binds && !prev_sep && !next_sep && !heads_group {
                    if !out.contains(id) {
                        out.push(id.clone());
                    }
                }
            }
            Tok::Group(_, inner) => collect_pattern_idents(inner, out),
            _ => {}
        }
    }
}

/// Parse the arms of a match body: `pat [if guard] => expr [,]`.
fn parse_arms(tokens: &[Token]) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Pattern (and optional guard): up to `=>` at this level.
        let pat_start = i;
        while i < tokens.len() && !tokens[i].is_punct("=>") {
            i += 1;
        }
        if i >= tokens.len() {
            break;
        }
        let bound = pattern_idents(&tokens[pat_start..i]);
        i += 1; // `=>`
                // Body: a brace group, or an expression up to a top-level `,`.
        let body_start = i;
        if matches!(
            tokens.get(i).map(|t| &t.tok),
            Some(Tok::Group(Delim::Brace, _))
        ) {
            i += 1;
        } else {
            while i < tokens.len() && !tokens[i].is_punct(",") {
                i += 1;
            }
        }
        let body = parse_one(&tokens[body_start..i]);
        arms.push(Arm { bound, body });
        if tokens.get(i).is_some_and(|t| t.is_punct(",")) {
            i += 1;
        }
    }
    arms
}

// ---------------------------------------------------------------------------
// Visitors and analyses.

/// Depth-first walk over every expression in a block, including
/// closure bodies, match arms, and control-flow branches.
pub fn walk_block_exprs<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => walk_exprs(e, f),
            Stmt::Expr(e) => walk_exprs(e, f),
            _ => {}
        }
    }
}

/// Depth-first walk over `e` and every sub-expression.
pub fn walk_exprs<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Call { callee, args, .. } => {
            walk_exprs(callee, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_exprs(recv, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::Field { base, .. } => walk_exprs(base, f),
        Expr::Index { base, index, .. } => {
            walk_exprs(base, f);
            walk_exprs(index, f);
        }
        Expr::Closure { body, .. } => walk_exprs(body, f),
        Expr::Reference { expr, .. } | Expr::Unary { expr, .. } => walk_exprs(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        Expr::Block(b) => walk_block_exprs(b, f),
        Expr::If {
            cond, then, else_, ..
        } => {
            walk_exprs(cond, f);
            walk_block_exprs(then, f);
            if let Some(e) = else_ {
                walk_exprs(e, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_exprs(scrutinee, f);
            for arm in arms {
                walk_exprs(&arm.body, f);
            }
        }
        Expr::ForLoop { iter, body, .. } => {
            walk_exprs(iter, f);
            walk_block_exprs(body, f);
        }
        Expr::While { cond, body, .. } => {
            walk_exprs(cond, f);
            walk_block_exprs(body, f);
        }
        Expr::Jump { value: Some(v), .. } => walk_exprs(v, f),
        Expr::Jump { .. } | Expr::Path { .. } | Expr::Lit { .. } | Expr::Verbatim { .. } => {}
    }
}

/// Free identifiers of an expression: every leading path segment read,
/// minus identifiers bound by enclosing `let`s, closure params, loop
/// and match patterns. `bound` seeds the outer scope (function
/// parameters, typically). Verbatim token runs contribute their
/// identifiers conservatively (over-approximating *free*, which is the
/// safe direction for capture analysis).
pub fn free_idents(e: &Expr, bound: &BTreeSet<String>) -> BTreeSet<String> {
    let mut free = BTreeSet::new();
    collect_free(e, &mut bound.clone(), &mut free);
    free
}

fn collect_free_block(b: &Block, bound: &mut BTreeSet<String>, free: &mut BTreeSet<String>) {
    // Block scope: bindings introduced here die with the block.
    let saved = bound.clone();
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { idents, init, .. } => {
                // Initializer sees the *outer* scope (no recursion).
                if let Some(init) = init {
                    collect_free(init, bound, free);
                }
                for id in idents {
                    bound.insert(id.clone());
                }
            }
            Stmt::Expr(e) => collect_free(e, bound, free),
            Stmt::Item(_) => {}
        }
    }
    *bound = saved;
}

fn collect_free(e: &Expr, bound: &mut BTreeSet<String>, free: &mut BTreeSet<String>) {
    match e {
        Expr::Path { segments, .. } => {
            // Only the first segment can be a local binding; `a::b` is
            // a module/type path when `a` is not bound, which the
            // lowercase heuristic covers well enough for captures.
            if let Some(first) = segments.first() {
                let local_looking = first
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                    && first != "self"
                    && first != "crate"
                    && first != "super";
                if segments.len() == 1 && local_looking && !bound.contains(first) {
                    free.insert(first.clone());
                }
            }
        }
        Expr::Closure { params, body, .. } => {
            let saved = bound.clone();
            for p in params {
                bound.insert(p.clone());
            }
            collect_free(body, bound, free);
            *bound = saved;
        }
        Expr::If {
            cond,
            bound: pat,
            then,
            else_,
            ..
        } => {
            collect_free(cond, bound, free);
            let saved = bound.clone();
            for id in pat {
                bound.insert(id.clone());
            }
            collect_free_block(then, bound, free);
            *bound = saved;
            if let Some(e) = else_ {
                collect_free(e, bound, free);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            collect_free(scrutinee, bound, free);
            for arm in arms {
                let saved = bound.clone();
                for id in &arm.bound {
                    bound.insert(id.clone());
                }
                collect_free(&arm.body, bound, free);
                *bound = saved;
            }
        }
        Expr::ForLoop {
            bound: pat,
            iter,
            body,
            ..
        } => {
            collect_free(iter, bound, free);
            let saved = bound.clone();
            for id in pat {
                bound.insert(id.clone());
            }
            collect_free_block(body, bound, free);
            *bound = saved;
        }
        Expr::While {
            cond,
            bound: pat,
            body,
            ..
        } => {
            collect_free(cond, bound, free);
            let saved = bound.clone();
            for id in pat {
                bound.insert(id.clone());
            }
            collect_free_block(body, bound, free);
            *bound = saved;
        }
        Expr::Block(b) => collect_free_block(b, bound, free),
        Expr::Verbatim { tokens, .. } => {
            // Conservative: every lowercase identifier not bound counts
            // as free.
            crate::walk_tokens(tokens, &mut |t| {
                if let Some(id) = t.ident() {
                    let local_looking = id
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_');
                    if local_looking && !bound.contains(id) && !is_keyword(id) {
                        free.insert(id.to_string());
                    }
                }
            });
        }
        // Structural recursion for everything else.
        Expr::Call { callee, args, .. } => {
            collect_free(callee, bound, free);
            for a in args {
                collect_free(a, bound, free);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            collect_free(recv, bound, free);
            for a in args {
                collect_free(a, bound, free);
            }
        }
        Expr::Field { base, .. } => collect_free(base, bound, free),
        Expr::Index { base, index, .. } => {
            collect_free(base, bound, free);
            collect_free(index, bound, free);
        }
        Expr::Reference { expr, .. } | Expr::Unary { expr, .. } => collect_free(expr, bound, free),
        Expr::Binary { lhs, rhs, .. } => {
            collect_free(lhs, bound, free);
            collect_free(rhs, bound, free);
        }
        Expr::Jump { value: Some(v), .. } => collect_free(v, bound, free),
        Expr::Jump { .. } | Expr::Lit { .. } => {}
    }
}

fn is_keyword(id: &str) -> bool {
    matches!(
        id,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "false"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "dyn"
            | "async"
            | "await"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn block_of(body: &str) -> Block {
        let tokens = lex(body).expect("test source lexes");
        parse_block(&tokens)
    }

    #[test]
    fn let_statement_carries_idents_type_and_init() {
        let b = block_of("let mut x: u64 = f(1);");
        let Stmt::Let {
            idents,
            mutable,
            ty,
            init,
            ..
        } = &b.stmts[0]
        else {
            panic!("expected let, got {:?}", b.stmts[0]);
        };
        assert_eq!(idents, &["x"]);
        assert!(*mutable);
        assert!(ty.as_ref().is_some_and(|t| t[0].ident() == Some("u64")));
        assert!(matches!(init, Some(Expr::Call { .. })));
    }

    #[test]
    fn method_chain_parses_nested() {
        let b = block_of("a.b().c(x, y);");
        let Stmt::Expr(Expr::MethodCall {
            method, recv, args, ..
        }) = &b.stmts[0]
        else {
            panic!("expected method call, got {:?}", b.stmts[0]);
        };
        assert_eq!(method, "c");
        assert_eq!(args.len(), 2);
        assert!(matches!(&**recv, Expr::MethodCall { method, .. } if method == "b"));
    }

    #[test]
    fn path_call_keeps_segments() {
        let b = block_of("std::time::Instant::now();");
        let Stmt::Expr(Expr::Call { callee, .. }) = &b.stmts[0] else {
            panic!("expected call, got {:?}", b.stmts[0]);
        };
        let Expr::Path { segments, .. } = &**callee else {
            panic!("expected path callee, got {callee:?}");
        };
        assert_eq!(segments, &["std", "time", "Instant", "now"]);
    }

    #[test]
    fn closure_params_and_moveness() {
        let b = block_of("run(move |i, j| i + j + captured);");
        let Stmt::Expr(Expr::Call { args, .. }) = &b.stmts[0] else {
            panic!("expected call, got {:?}", b.stmts[0]);
        };
        let Expr::Closure {
            is_move,
            params,
            body,
            ..
        } = &args[0]
        else {
            panic!("expected closure, got {:?}", args[0]);
        };
        assert!(*is_move);
        assert_eq!(params, &["i", "j"]);
        let free = free_idents(body, &params.iter().cloned().collect());
        assert_eq!(free.into_iter().collect::<Vec<_>>(), vec!["captured"]);
    }

    #[test]
    fn free_idents_respect_let_and_match_bindings() {
        let b = block_of("let x = outer; match opt { Some(y) => y + x, None => fallback }");
        let mut free = BTreeSet::new();
        let mut bound = BTreeSet::new();
        collect_free_block(&b, &mut bound, &mut free);
        let free: Vec<_> = free.into_iter().collect();
        assert!(free.contains(&"outer".to_string()));
        assert!(free.contains(&"opt".to_string()));
        assert!(free.contains(&"fallback".to_string()));
        assert!(!free.contains(&"x".to_string()), "let-bound");
        assert!(!free.contains(&"y".to_string()), "arm-bound");
    }

    #[test]
    fn if_let_binds_in_then_only() {
        let b = block_of("if let Some(v) = source { v } else { v }");
        let mut free = BTreeSet::new();
        let mut bound = BTreeSet::new();
        collect_free_block(&b, &mut bound, &mut free);
        // The else-branch `v` is free (a mis-scoping in real code, but
        // the analysis must reflect it).
        assert!(free.contains(&"v".to_string()));
        assert!(free.contains(&"source".to_string()));
    }

    #[test]
    fn for_loop_binds_its_pattern() {
        let b = block_of("for (i, item) in list { use_it(item, i, extra); }");
        let mut free = BTreeSet::new();
        let mut bound = BTreeSet::new();
        collect_free_block(&b, &mut bound, &mut free);
        assert!(free.contains(&"list".to_string()));
        assert!(free.contains(&"extra".to_string()));
        assert!(!free.contains(&"item".to_string()));
        assert!(!free.contains(&"i".to_string()));
    }

    #[test]
    fn tuple_field_chain_parses() {
        let b = block_of("let a = t.0;");
        let Stmt::Let { init: Some(e), .. } = &b.stmts[0] else {
            panic!("expected let with init");
        };
        assert!(matches!(e, Expr::Field { member, .. } if member == "0"));
    }

    #[test]
    fn reference_mutability_is_kept() {
        let b = block_of("f(&mut state, &shared);");
        let Stmt::Expr(Expr::Call { args, .. }) = &b.stmts[0] else {
            panic!("expected call");
        };
        assert!(matches!(&args[0], Expr::Reference { mutable: true, .. }));
        assert!(matches!(&args[1], Expr::Reference { mutable: false, .. }));
    }

    #[test]
    fn macros_and_unknown_runs_become_verbatim_without_loss() {
        let b = block_of("println!(\"x {}\", v); weird#tokens;");
        // Every token survives somewhere in the AST.
        let mut idents = Vec::new();
        walk_block_exprs(&b, &mut |e| {
            if let Expr::Verbatim { tokens, .. } = e {
                crate::walk_tokens(tokens, &mut |t| {
                    if let Some(id) = t.ident() {
                        idents.push(id.to_string());
                    }
                });
            }
        });
        assert!(idents.contains(&"println".to_string()) || !b.stmts.is_empty());
    }

    #[test]
    fn real_world_shape_parses_without_panic() {
        // A condensed version of the scheduler's run_indexed body.
        let src = r#"
            if count == 0 { return Vec::new(); }
            let workers = jobs.get().min(count);
            if workers == 1 { return (0..count).map(task).collect(); }
            let injector = Injector::new(count);
            let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut batch = Vec::new();
                            while let Some(i) = injector.steal() {
                                batch.push((i, task(i)));
                            }
                            batch
                        })
                    })
                    .collect();
            });
            slots.into_iter().enumerate().collect()
        "#;
        let b = block_of(src);
        assert!(b.stmts.len() >= 5);
        // The nested closures must be discoverable.
        let mut closures = 0usize;
        walk_block_exprs(&b, &mut |e| {
            if matches!(e, Expr::Closure { .. }) {
                closures += 1;
            }
        });
        assert!(closures >= 4, "found {closures} closures");
    }
}
