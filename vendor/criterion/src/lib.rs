//! Offline vendored stand-in for `criterion` 0.5.
//!
//! Implements the harness API the workspace's benches use
//! (`benchmark_group`, `sample_size`, `bench_function`, `iter`,
//! `iter_batched`, the `criterion_group!`/`criterion_main!` macros) with
//! a simple wall-clock measurement loop: per sample, time one batch of
//! iterations and report mean and minimum per-iteration times. No
//! statistical analysis, plots, or baseline storage.
//!
//! Two harness conveniences the real criterion also offers:
//!
//! * a substring filter taken from the command line (`cargo bench --
//!   fig8` runs only benchmarks whose id contains `fig8`);
//! * machine-readable output: set `CRITERION_JSON=<path>` to append one
//!   JSON line per benchmark (`{"id":…,"mean_ns":…,"min_ns":…,
//!   "samples":…}`) — CI uses this to publish bench artifacts.

use std::io::Write;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Substring filter from the first free command-line argument (cargo
/// passes `--bench`/flags too; those are skipped).
fn cli_filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| {
            std::env::args()
                .skip(1)
                .find(|a| !a.starts_with('-'))
        })
        .as_deref()
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// End the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    if let Some(filter) = cli_filter() {
        if !id.contains(filter) {
            return;
        }
    }
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:50} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!("{id:50} mean {:>12} ns/iter   min {:>12} ns/iter", mean.as_nanos(), min.as_nanos());
    if let Some(path) = std::env::var_os("CRITERION_JSON") {
        let line = format!(
            "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}\n",
            id.escape_default(),
            mean.as_nanos(),
            min.as_nanos(),
            b.samples.len()
        );
        let r = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = r {
            eprintln!("criterion: cannot append to CRITERION_JSON {path:?}: {e}");
        }
    }
}

/// Per-benchmark measurement driver passed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly; one sample = one invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on inputs produced by an untimed `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Batch sizing hint; measurement here is always per-invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Prevent the optimizer from discarding a value (compat re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
