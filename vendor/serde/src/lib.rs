//! Offline vendored stand-in for `serde`.
//!
//! The build container has no network access and no registry cache, so the
//! real `serde` cannot be fetched. This crate provides the subset the
//! workspace actually uses — `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, round-tripped through an in-memory [`Value`] tree
//! (the JSON text codec lives in the vendored `serde_json`).
//!
//! Deliberate simplifications versus real serde:
//! * Serialization is `Value`-tree based, not visitor based.
//! * `Deserialize` has no lifetime parameter (the workspace only
//!   deserializes owned data).
//! * The only container attribute honoured is `#[serde(transparent)]`;
//!   newtype structs serialize transparently either way, matching
//!   `serde_json`'s behaviour for newtypes.

pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Build the value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a message describing the shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl core::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::PosInt(i as u64))
                } else {
                    Value::Number(Number::NegInt(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::custom(format!("expected number, got {v}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::Number(Number::PosInt(n)),
            // JSON numbers top out at u64 in this stand-in; wider values
            // ride as decimal strings and round-trip exactly.
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => s
                .parse::<u128>()
                .map_err(|e| DeError::custom(format!("bad u128 `{s}`: {e}"))),
            other => other
                .as_u64()
                .map(u128::from)
                .ok_or_else(|| DeError::custom(format!("expected u128, got {other}"))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| DeError::custom("array length changed during parse"))
            }
            other => Err(DeError::custom(format!("expected array of {N}, got {other}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$(stringify!($t)),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected {LEN}-tuple array, got {other}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Helpers the derive macro expands to. Not part of the public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    /// Look up a named field of a struct object.
    pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
            other => Err(DeError::custom(format!("expected object, got {other}"))),
        }
    }

    /// Split an externally-tagged enum value into (variant name, payload).
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
        match v {
            Value::String(name) => Ok((name, None)),
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            other => Err(DeError::custom(format!("expected enum variant, got {other}"))),
        }
    }

    /// A unit variant must carry no payload.
    pub fn no_payload(payload: Option<&Value>, variant: &str) -> Result<(), DeError> {
        match payload {
            None => Ok(()),
            Some(_) => Err(DeError::custom(format!("unexpected payload for unit variant `{variant}`"))),
        }
    }

    /// A data-carrying variant must have a payload.
    pub fn payload<'a>(payload: Option<&'a Value>, variant: &str) -> Result<&'a Value, DeError> {
        payload.ok_or_else(|| DeError::custom(format!("missing payload for variant `{variant}`")))
    }
}
