//! The in-memory value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.

/// A JSON-shaped value. Object fields preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept lossless for 64-bit integers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fraction or exponent.
    Float(f64),
}

impl Value {
    /// Member lookup on objects; `None` on any other shape.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable member lookup on objects; `None` on any other shape.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(fields) => {
                fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable elements if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// This number as i64, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// Any number as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => n.write(out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty-print with two-space indentation (the `to_string_pretty`
    /// backend).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&inner);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&inner);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl Number {
    fn write(&self, out: &mut String) {
        use core::fmt::Write;
        match self {
            Number::PosInt(n) => write!(out, "{n}").unwrap(),
            Number::NegInt(n) => write!(out, "{n}").unwrap(),
            // Keep a fractional point on integral floats ("1000.0") so
            // float-ness survives a text round trip, like serde_json.
            Number::Float(f) if f.is_finite() && f.fract() == 0.0 => {
                write!(out, "{f:.1}").unwrap()
            }
            Number::Float(f) if f.is_finite() => write!(out, "{f}").unwrap(),
            // JSON has no NaN/Infinity; real serde_json errors here, we
            // degrade to null (nothing in the workspace serializes these).
            Number::Float(_) => out.push_str("null"),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl core::fmt::Display for Value {
    /// Compact JSON text, like `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

impl core::ops::Index<&str> for Value {
    type Output = Value;

    /// Panic-free object indexing: missing keys yield `Null`,
    /// matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl core::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

static NULL: Value = Value::Null;
