//! Trace-file workflow: generate → save (JSON / DZTR binary) → load →
//! inspect → compress → replay, plus a per-router activity heatmap.
//!
//! ```text
//! cargo run --release --example trace_tools [benchmark]
//! ```

use std::path::PathBuf;

use dozznoc::prelude::*;
use dozznoc::traffic::io;

fn main() {
    let bench_name = std::env::args().nth(1).unwrap_or_else(|| "fft".into());
    let bench = ALL_BENCHMARKS
        .iter()
        .copied()
        .find(|b| b.name() == bench_name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark `{bench_name}`; using fft");
            Benchmark::Fft
        });

    let topo = Topology::mesh8x8();
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(8_000)
        .generate(bench);

    // ── inspect ──
    let s = trace.stats();
    println!("trace `{}`:", trace.name);
    println!(
        "  {} packets ({} requests, {} responses), {} flits",
        s.packets, s.requests, s.responses, s.flits
    );
    println!(
        "  horizon {:.1} µs, offered load {:.2} flits/ns, {} active cores",
        trace.horizon().as_ns() / 1000.0,
        s.flits_per_ns,
        s.active_cores
    );

    // ── save in both formats and compare sizes ──
    let dir = std::env::temp_dir();
    let json_path: PathBuf = dir.join(format!("{}.json", trace.name));
    let bin_path: PathBuf = dir.join(format!("{}.dztr", trace.name));
    io::save(&trace, &json_path).expect("save json");
    io::save(&trace, &bin_path).expect("save binary");
    let (json_len, bin_len) = (
        std::fs::metadata(&json_path).unwrap().len(),
        std::fs::metadata(&bin_path).unwrap().len(),
    );
    println!(
        "\nsaved {} ({json_len} B json, {bin_len} B dztr — {:.1}× smaller)",
        trace.name,
        json_len as f64 / bin_len as f64
    );

    // ── load back and verify ──
    let reloaded = io::load(&bin_path).expect("load binary");
    assert_eq!(reloaded, trace, "binary round trip must be exact");
    println!("binary round trip verified ({} packets)", reloaded.len());

    // ── compress and replay under DozzNoC ──
    let compressed = trace.rescale(2, 3);
    println!(
        "\ncompressed to {:.1} µs horizon ({:.2} flits/ns)",
        compressed.horizon().as_ns() / 1000.0,
        compressed.stats().flits_per_ns
    );

    let suite = ModelSuite::train(
        &Trainer::new(topo).with_duration_ns(4_000),
        FeatureSet::Reduced5,
    );
    let report = run_model(
        NocConfig::paper(topo),
        &reloaded,
        ModelKind::DozzNoc,
        &suite,
    );
    println!(
        "\nreplayed under DOZZNOC: {} packets, net latency {:.1} ns mean / {:.1} ns P99",
        report.stats.packets_delivered,
        report.stats.avg_net_latency_ns(),
        report.stats.net_latency_hist.percentile_ns(0.99),
    );

    // ── per-router off-time heatmap ──
    println!("\nper-router off-fraction heatmap (8×8, darker = more sleep):");
    let shades = [' ', '░', '▒', '▓', '█'];
    for y in 0..8 {
        let mut line = String::new();
        for x in 0..8 {
            let r = &report.per_router[y * 8 + x];
            let idx = ((r.off_fraction * shades.len() as f64) as usize).min(shades.len() - 1);
            line.push(shades[idx]);
            line.push(shades[idx]);
        }
        println!("  {line}");
    }
    let mean_off: f64 = report
        .per_router
        .iter()
        .map(|r| r.off_fraction)
        .sum::<f64>()
        / 64.0;
    println!("  mean off-fraction {:.1}%", mean_off * 100.0);

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
}
