//! Explore the SIMO/LDO voltage-regulator substrate: rail assignment,
//! dropout envelope, switching latencies, transient waveforms and the
//! efficiency advantage over a conventional switching array (paper
//! §III-C, Tables I–II, Figs. 5–6).
//!
//! ```text
//! cargo run --release --example regulator_explorer
//! ```

use dozznoc::power::regulator::delay::RegState;
use dozznoc::power::regulator::waveform::{fig5a_wakeup, Transient};
use dozznoc::power::{baseline_efficiency, simo_efficiency};
use dozznoc::prelude::*;
use dozznoc::types::ACTIVE_MODES;

fn main() {
    let simo = SimoRegulator::default();

    println!("── rail assignment and dropout (Table I) ──");
    for m in ACTIVE_MODES {
        let ldo = simo.ldo_for(m.voltage());
        println!(
            "  {m}: rail {:.1} V, dropout {:>4.0} mV, end-to-end efficiency {:.1}%",
            ldo.vin,
            ldo.dropout() * 1e3,
            simo.efficiency_at(m) * 100.0
        );
    }

    println!("\n── switching latencies (Table II) ──");
    let delays = SwitchDelayTable::paper();
    for (from, to) in [
        (RegState::Gated, RegState::At(Mode::M3)),
        (RegState::At(Mode::M3), RegState::At(Mode::M7)),
        (RegState::At(Mode::M7), RegState::At(Mode::M6)),
    ] {
        let lat = delays.latency(from, to);
        println!(
            "  {from} → {to}: {:.1} ns = {} base ticks = {} cycles at the target clock",
            delays.latency_ns(from, to),
            lat.ticks(),
            match to {
                RegState::At(m) => lat.as_cycles_ceil(m.divisor()),
                RegState::Gated => 0,
            }
        );
    }

    println!("\n── wake-up transient, ASCII-rendered (Fig. 5a) ──");
    render_waveform(&fig5a_wakeup(), 12.0);

    println!("\n── a custom transient: 1.2 V → 0.9 V in 6.3 ns ──");
    render_waveform(&Transient::with_settling_time(1.2, 0.9, 6.3), 10.0);

    println!("\n── efficiency vs. the conventional array (Fig. 6) ──");
    println!("  {:>6} {:>8} {:>10}", "Vout", "SIMO", "baseline");
    for mv in (800..=1200).step_by(50) {
        let v = mv as f64 / 1000.0;
        println!(
            "  {v:>5.2}V {:>7.1}% {:>9.1}%",
            simo_efficiency(v) * 100.0,
            baseline_efficiency(v) * 100.0
        );
    }
}

/// Tiny ASCII plot of a transient over `span_ns`.
fn render_waveform(t: &Transient, span_ns: f64) {
    let cols = 64;
    let v_hi = t.v_from.max(t.v_to) * 1.1 + 0.01;
    for row in (0..=8).rev() {
        let level = v_hi * row as f64 / 8.0;
        let mut line = String::with_capacity(cols);
        for c in 0..cols {
            let time = span_ns * c as f64 / cols as f64;
            let v = t.sample(time);
            line.push(if (v - level).abs() < v_hi / 16.0 {
                '*'
            } else {
                ' '
            });
        }
        println!("  {level:>5.2}V |{line}");
    }
    println!(
        "          +{} settles in {:.2} ns, overshoot {:.0} mV",
        "-".repeat(cols),
        t.settling_time_ns(),
        t.overshoot_v() * 1e3
    );
}
