//! The offline ML workflow end to end: collect reactive training data,
//! fit ridge with a λ sweep, export the weights as JSON, reload them and
//! deploy the proactive model — exactly the paper's MATLAB → simulator
//! round trip (§III-D, §IV-A).
//!
//! ```text
//! cargo run --release --example train_and_deploy
//! ```

use dozznoc::core::training::ReactiveKind;
use dozznoc::prelude::*;

fn main() {
    let duration_ns = 8_000;
    let topo = Topology::mesh8x8();
    let trainer = Trainer::new(topo).with_duration_ns(duration_ns);

    // ── 1. Collect (features, future-IBU) examples with the reactive
    //       variant of DOZZNOC, per split.
    println!("collecting reactive training data…");
    let train41 = trainer.collect(ReactiveKind::Gated, &TRAIN_BENCHMARKS);
    let val41 = trainer.collect(ReactiveKind::Gated, &VALIDATION_BENCHMARKS);
    println!(
        "  {} train / {} validation examples of 41 features",
        train41.len(),
        val41.len()
    );

    // ── 2. Fit ridge on the Reduced-5 projection, λ tuned on validation.
    let model = trainer.train_from_datasets(&train41, &val41, FeatureSet::Reduced5);
    println!("\ntrained model:");
    println!(
        "  λ = {}, validation MSE = {:.6}",
        model.lambda, model.validation_mse
    );
    for (id, w) in FeatureSet::Reduced5.ids().iter().zip(&model.weights) {
        println!("  {:<28} {w:+.4}", id.name());
    }

    // ── 3. Export to JSON (what the paper ships from MATLAB to the
    //       network simulator) and reload it.
    let json = model.to_json();
    println!("\nexported {} bytes of JSON weights", json.len());
    let reloaded = TrainedModel::from_json(&json).expect("round trip");
    assert_eq!(reloaded, model);

    // ── 4. Deploy: proactive mode selection on a held-out test trace,
    //       compared against the reactive variant it was trained from.
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(duration_ns)
        .generate(Benchmark::Radix);
    let cfg = NocConfig::paper(topo);

    let mut reactive = Reactive::dozznoc();
    let reactive_report = Network::new(cfg)
        .run(&trace, &mut reactive)
        .expect("reactive run");
    let mut proactive = Proactive::dozznoc(reloaded);
    let proactive_report = Network::new(cfg)
        .run(&trace, &mut proactive)
        .expect("proactive run");

    println!("\non held-out `{}`:", trace.name);
    for (name, r) in [
        ("reactive", &reactive_report),
        ("proactive", &proactive_report),
    ] {
        println!(
            "  {:<10} static {:.2} µJ  dynamic {:.2} µJ  net-lat {:.1} ns  off {:.1}%",
            name,
            r.energy.static_j * 1e6,
            r.energy.dynamic_with_ml_j() * 1e6,
            r.stats.avg_net_latency_ns(),
            r.energy.off_fraction() * 100.0
        );
    }
    println!(
        "\nproactive selection avoids the one-epoch staleness of reactive \
         thresholds — the paper's motivation for ML-based DVFS."
    );
}
