//! Quickstart: train the DozzNoC models, run one benchmark, print the
//! savings against the always-on baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dozznoc::prelude::*;

fn main() {
    // Keep the example snappy: 10 µs traces instead of the full 50 µs.
    let duration_ns = 10_000;
    let topo = Topology::mesh8x8();

    println!("training ridge models on the 6 training + 3 validation traces…");
    let trainer = Trainer::new(topo).with_duration_ns(duration_ns);
    let suite = ModelSuite::train(&trainer, FeatureSet::Reduced5);
    println!(
        "  DOZZNOC weights (Table IV order): {:?}",
        suite
            .dozznoc
            .weights
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  chosen λ = {}, validation MSE = {:.5}",
        suite.dozznoc.lambda, suite.dozznoc.validation_mse
    );

    // Run a held-out test benchmark under both the baseline and DozzNoC.
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(duration_ns)
        .generate(Benchmark::Fft);
    println!(
        "\ninjecting `{}`: {} packets over {:.1} µs",
        trace.name,
        trace.len(),
        trace.horizon().as_ns() / 1000.0
    );

    let cfg = NocConfig::paper(topo);
    let baseline = run_model(cfg, &trace, ModelKind::Baseline, &suite);
    let dozznoc = run_model(cfg, &trace, ModelKind::DozzNoc, &suite);

    println!("\n{:<28}{:>14}{:>14}", "", "baseline", "DOZZNOC");
    let rows: [(&str, f64, f64); 5] = [
        (
            "throughput (flits/ns)",
            baseline.stats.throughput_flits_per_ns(),
            dozznoc.stats.throughput_flits_per_ns(),
        ),
        (
            "network latency (ns)",
            baseline.stats.avg_net_latency_ns(),
            dozznoc.stats.avg_net_latency_ns(),
        ),
        (
            "static energy (µJ)",
            baseline.energy.static_j * 1e6,
            dozznoc.energy.static_j * 1e6,
        ),
        (
            "dynamic energy (µJ)",
            baseline.energy.dynamic_with_ml_j() * 1e6,
            dozznoc.energy.dynamic_with_ml_j() * 1e6,
        ),
        ("time gated (%)", 0.0, dozznoc.energy.off_fraction() * 100.0),
    ];
    for (name, b, d) in rows {
        println!("{name:<28}{b:>14.3}{d:>14.3}");
    }

    println!(
        "\nDOZZNOC saves {:.1}% static and {:.1}% dynamic energy for a {:.1}% throughput loss",
        (1.0 - dozznoc.static_energy_vs(&baseline)) * 100.0,
        (1.0 - dozznoc.dynamic_energy_vs(&baseline)) * 100.0,
        (1.0 - dozznoc.throughput_vs(&baseline)) * 100.0,
    );
    let dist = dozznoc.stats.mode_distribution();
    println!(
        "mode residency: M3 {:.0}%  M4 {:.0}%  M5 {:.0}%  M6 {:.0}%  M7 {:.0}%",
        dist[0] * 100.0,
        dist[1] * 100.0,
        dist[2] * 100.0,
        dist[3] * 100.0,
        dist[4] * 100.0
    );
}
