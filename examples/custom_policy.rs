//! Implement a user-defined power policy against the public
//! `PowerPolicy` trait and race it against the built-in models.
//!
//! The example policy is a *hysteretic* threshold controller: it steps
//! the mode up immediately when utilization rises but only steps down
//! after several consecutive quiet epochs — a classic way to trade a
//! little energy for fewer switching transients.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use dozznoc::prelude::*;

/// Step up eagerly, step down lazily.
struct Hysteretic {
    /// Consecutive epochs a router must want a lower mode before it gets
    /// one.
    patience: u32,
    /// Per-router (current mode, quiet streak).
    state: Vec<(Mode, u32)>,
}

impl Hysteretic {
    fn new(num_routers: usize, patience: u32) -> Self {
        Hysteretic {
            patience,
            state: vec![(Mode::M7, 0); num_routers],
        }
    }
}

impl PowerPolicy for Hysteretic {
    fn select_mode(&mut self, router: RouterId, obs: &EpochObservation) -> Mode {
        let want = mode_of_utilization(obs.ibu);
        let (current, quiet_streak) = &mut self.state[router.idx()];
        if want >= *current {
            // Rising load: react immediately.
            *current = want;
            *quiet_streak = 0;
        } else {
            // Falling load: only after `patience` consecutive requests.
            *quiet_streak += 1;
            if *quiet_streak >= self.patience {
                *current = current.step_down();
                *quiet_streak = 0;
            }
        }
        *current
    }

    fn gating_enabled(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "hysteretic"
    }
}

fn main() {
    let duration_ns = 8_000;
    let topo = Topology::mesh8x8();
    let cfg = NocConfig::paper(topo);
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(duration_ns)
        .generate(Benchmark::Lu);

    // The built-in reference points.
    let mut baseline = Baseline;
    let base = Network::new(cfg)
        .run(&trace, &mut baseline)
        .expect("baseline");
    let mut reactive = Reactive::dozznoc();
    let react = Network::new(cfg)
        .run(&trace, &mut reactive)
        .expect("reactive");

    // Our custom policy at two patience settings.
    println!(
        "{:<18} {:>9} {:>11} {:>9} {:>9} {:>9}",
        "policy", "tput f/ns", "net-lat ns", "static", "dynamic", "switches"
    );
    let report_line = |name: &str, r: &RunReport| {
        println!(
            "{:<18} {:>9.2} {:>11.1} {:>9.3} {:>9.3} {:>9}",
            name,
            r.stats.throughput_flits_per_ns(),
            r.stats.avg_net_latency_ns(),
            r.static_energy_vs(&base),
            r.dynamic_energy_vs(&base),
            r.energy.wakeups,
        );
    };
    report_line("baseline", &base);
    report_line("reactive-dozznoc", &react);
    for patience in [1u32, 4] {
        let mut policy = Hysteretic::new(topo.num_routers(), patience);
        let r = Network::new(cfg)
            .run(&trace, &mut policy)
            .expect("custom policy run");
        report_line(&format!("hysteretic(p={patience})"), &r);
        assert_eq!(
            r.stats.packets_delivered, base.stats.packets_delivered,
            "a policy must never lose packets"
        );
    }
    println!(
        "\nhigher patience keeps routers in high modes longer: fewer transients,\n\
         slightly less dynamic savings — the knob the trait lets you own."
    );
}
