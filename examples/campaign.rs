//! Full evaluation campaign: all five models over the held-out test
//! benchmarks, mesh and cmesh, with §IV-B-style summaries.
//!
//! ```text
//! cargo run --release --example campaign [duration_ns]
//! ```

use dozznoc::core::experiment::summarize;
use dozznoc::prelude::*;

fn main() {
    let duration_ns: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    for topo in [Topology::mesh8x8(), Topology::cmesh4x4()] {
        println!("\n================ {} ================", topo.kind());
        let trainer = Trainer::new(topo).with_duration_ns(duration_ns);
        println!("training…");
        let suite = ModelSuite::train(&trainer, FeatureSet::Reduced5);

        let campaign = Campaign::new(topo).with_duration_ns(duration_ns);
        println!("running 5 models × {} benchmarks…", TEST_BENCHMARKS.len());
        let results = campaign.run(&TEST_BENCHMARKS, &suite);

        // Per-benchmark detail.
        println!(
            "\n{:<14} {:<22} {:>10} {:>10} {:>9} {:>9}",
            "benchmark", "model", "tput f/ns", "net-lat ns", "static", "dynamic"
        );
        for r in &results {
            let base = results
                .iter()
                .find(|b| b.model == ModelKind::Baseline && b.benchmark == r.benchmark)
                .expect("baseline row");
            println!(
                "{:<14} {:<22} {:>10.2} {:>10.1} {:>9.3} {:>9.3}",
                r.benchmark,
                r.model.label(),
                r.report.stats.throughput_flits_per_ns(),
                r.report.stats.avg_net_latency_ns(),
                r.report.static_energy_vs(&base.report),
                r.report.dynamic_energy_vs(&base.report),
            );
        }

        // §IV-B summary.
        println!("\nsummary (mean over benchmarks, vs. baseline):");
        for s in summarize(&results) {
            println!(
                "  {:<22} static-save {:>5.1}%  dyn-save {:>5.1}%  tput-loss {:>5.1}%  net-lat +{:>5.1}%",
                s.model.label(),
                s.static_savings_pct(),
                s.dynamic_savings_pct(),
                s.throughput_loss_pct(),
                s.latency_increase_pct()
            );
        }
    }
}
