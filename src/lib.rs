//! # DozzNoC — a full reproduction of the DozzNoC NoC power-management system
//!
//! This facade crate re-exports the whole workspace behind one
//! dependency. The paper: *"DozzNoC: Reducing Static and Dynamic Energy
//! in NoCs with Low-latency Voltage Regulators using Machine Learning"*
//! (Clark, Chen, Karanth, Ma, Louri — IPDPS 2020).
//!
//! ## Quickstart
//!
//! ```
//! use dozznoc::prelude::*;
//!
//! // 1. Train the three ML models offline (short traces for the doctest).
//! let topo = Topology::mesh8x8();
//! let trainer = Trainer::new(topo).with_duration_ns(2_000);
//! let suite = ModelSuite::train(&trainer, FeatureSet::Reduced5);
//!
//! // 2. Run the full DozzNoC model on a held-out benchmark.
//! let trace = TraceGenerator::new(topo).with_duration_ns(2_000).generate(Benchmark::Fft);
//! let report = run_model(NocConfig::paper(topo), &trace, ModelKind::DozzNoc, &suite);
//! assert!(report.stats.packets_delivered > 0);
//!
//! // 3. Compare against the always-on baseline.
//! let baseline = run_model(NocConfig::paper(topo), &trace, ModelKind::Baseline, &suite);
//! assert!(report.energy.static_j < baseline.energy.static_j);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | time base (18 GHz ticks), V/F modes, ids, flits |
//! | [`topology`] | mesh / cmesh grids, XY DOR look-ahead routing |
//! | [`power`] | SIMO/LDO regulator model, DSENT cost tables, energy ledger |
//! | [`ml`] | ridge regression, feature sets, datasets, metrics |
//! | [`traffic`] | 14 synthetic PARSEC/SPLASH-2-like workloads, patterns |
//! | [`noc`] | the cycle-accurate multi-clock-domain simulator |
//! | [`core`] | the DozzNoC policies, plug-in policy registry, training pipeline, experiment API |

pub use dozznoc_core as core;
pub use dozznoc_ml as ml;
pub use dozznoc_noc as noc;
pub use dozznoc_power as power;
pub use dozznoc_topology as topology;
pub use dozznoc_traffic as traffic;
pub use dozznoc_types as types;

/// Everything a typical experiment needs, importable in one line.
pub mod prelude {
    pub use dozznoc_core::{
        run_model, run_model_sanitized, run_model_with_telemetry, run_policy_with_telemetry,
        Adaptive, Baseline, CacheStats, Campaign, CellRun, Collector, EngineOptions, Fingerprint,
        ModelKind, ModelSuite, Oracle, PolicyCellRun, PolicyContext, PolicyError, PolicyFactory,
        PolicyRegistry, PolicyResult, PolicySpec, PowerGated, Proactive, Reactive, RlBuffer,
        RunCache, Trainer,
    };
    pub use dozznoc_ml::{
        mode_of_utilization, mode_selection_accuracy, Dataset, FeatureSet, RidgeRegression,
        TrainedModel,
    };
    pub use dozznoc_noc::{
        run_sharded, AlwaysMode, DecisionTrace, EpochObservation, EpochSample, InvariantViolation,
        JsonlSink, Network, NocConfig, NullSink, PowerPolicy, RunReport, SanitizerConfig,
        SanitizerReport, SimSanitizer, Telemetry, TimelineSink, ViolationKind,
    };
    pub use dozznoc_power::{
        DsentCosts, EnergyDelta, EnergyLedger, EnergyReport, MlOverhead, SimoRegulator,
        SwitchDelayTable, VfTable,
    };
    pub use dozznoc_topology::{Direction, Port, ShardPlan, Topology, XyRouter};
    pub use dozznoc_traffic::{
        Benchmark, Trace, TraceGenerator, ALL_BENCHMARKS, TEST_BENCHMARKS, TRAIN_BENCHMARKS,
        VALIDATION_BENCHMARKS,
    };
    pub use dozznoc_types::{
        ConfigError, CoreId, Flit, Mode, Packet, PacketKind, PowerState, RouterId, SimTime,
        TickDelta, TransitionEvent, TransitionKind, MIN_EPOCH_CYCLES,
    };
}
