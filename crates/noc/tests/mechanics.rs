//! Integration tests of the simulator's power-state mechanics: the
//! fine-grained behaviours the paper's Fig. 3(a) state machine promises.

use dozznoc_noc::{AlwaysMode, EpochObservation, Network, NocConfig, PowerPolicy};
use dozznoc_topology::{DimOrder, Topology};
use dozznoc_traffic::trace::packet;
use dozznoc_traffic::{Benchmark, Trace, TraceGenerator};
use dozznoc_types::{Mode, PacketKind, RouterId};

fn cfg() -> NocConfig {
    NocConfig::paper(Topology::mesh8x8())
}

/// A policy that alternates between two modes every epoch, to exercise
/// T-Switch stalls deterministically.
struct Alternator {
    modes: [Mode; 2],
    epoch: u64,
}

impl PowerPolicy for Alternator {
    fn select_mode(&mut self, _router: RouterId, obs: &EpochObservation) -> Mode {
        self.epoch = obs.epoch;
        self.modes[(obs.epoch % 2) as usize]
    }

    fn name(&self) -> &str {
        "alternator"
    }
}

#[test]
fn mode_switches_pay_but_do_not_lose_packets() {
    // Spread injections over many epochs so switches happen mid-traffic.
    let pkts = (0..50)
        .map(|k| {
            packet(
                k % 64,
                (k + 31) % 64,
                PacketKind::Request,
                10.0 + k as f64 * 120.0,
            )
        })
        .collect();
    let trace = Trace::new("alt", 64, pkts);
    let mut policy = Alternator {
        modes: [Mode::M3, Mode::M7],
        epoch: 0,
    };
    let r = Network::new(cfg())
        .run(&trace, &mut policy)
        .expect("run completes");
    assert_eq!(r.stats.packets_delivered, 50);
    // Both modes were selected.
    assert!(r.stats.mode_selections[Mode::M3.rank()] > 0);
    assert!(r.stats.mode_selections[Mode::M7.rank()] > 0);
    // Rail transitions were billed (M3→M7 up-steps cost charge).
    assert!(r.energy.transition_j > 0.0);
}

#[test]
fn transition_energy_absent_without_mode_changes_or_gating() {
    let trace = Trace::new("still", 64, vec![packet(0, 9, PacketKind::Request, 1.0)]);
    let r = Network::new(cfg())
        .run(&trace, &mut AlwaysMode::new(Mode::M7))
        .expect("run completes");
    assert_eq!(r.energy.transition_j, 0.0);
    assert_eq!(r.energy.wakeups, 0);
}

#[test]
fn gating_bills_wakeup_transitions() {
    let trace = Trace::new(
        "gaps",
        64,
        vec![
            packet(0, 9, PacketKind::Request, 1.0),
            packet(0, 9, PacketKind::Request, 900.0),
        ],
    );
    let r = Network::new(cfg())
        .run(&trace, &mut AlwaysMode::new(Mode::M7).with_gating())
        .expect("run completes");
    assert!(r.energy.wakeups > 0);
    assert!(r.energy.transition_j > 0.0);
    // Each wake into M7 costs C·V² = 0.3 nF × 1.44 V² = 0.432 nJ.
    let per_wake = r.energy.transition_j / r.energy.wakeups as f64;
    assert!(
        (0.2e-9..0.5e-9).contains(&per_wake),
        "per-wake transition energy {per_wake:.3e} J out of the C·V² regime"
    );
}

#[test]
fn yx_routing_delivers_and_differs_from_xy() {
    let topo = Topology::mesh8x8();
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(2_000)
        .generate(Benchmark::Ferret);
    let xy = Network::new(NocConfig::paper(topo))
        .run(&trace, &mut AlwaysMode::new(Mode::M7))
        .expect("run completes");
    let yx = Network::new(NocConfig::paper(topo).with_routing(DimOrder::Yx))
        .run(&trace, &mut AlwaysMode::new(Mode::M7))
        .expect("run completes");
    // Both conserve traffic.
    assert_eq!(xy.stats.flits_delivered, yx.stats.flits_delivered);
    assert_eq!(xy.stats.packets_delivered, yx.stats.packets_delivered);
    // Same minimal distances → identical total hop counts…
    assert_eq!(xy.energy.flit_hops, yx.energy.flit_hops);
    // …but different link usage: at least one router routes a different
    // number of flits.
    let differs = xy
        .per_router
        .iter()
        .zip(&yx.per_router)
        .any(|(a, b)| a.hops != b.hops);
    assert!(differs, "XY and YX produced identical per-router loads");
}

#[test]
fn per_router_summaries_are_consistent_with_totals() {
    let topo = Topology::mesh8x8();
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(2_000)
        .generate(Benchmark::Lu);
    let r = Network::new(NocConfig::paper(topo))
        .run(&trace, &mut AlwaysMode::new(Mode::M7).with_gating())
        .expect("run completes");
    assert_eq!(r.per_router.len(), 64);
    let hop_sum: u64 = r.per_router.iter().map(|p| p.hops).sum();
    assert_eq!(hop_sum, r.energy.flit_hops);
    let static_sum: f64 = r.per_router.iter().map(|p| p.static_j).sum();
    assert!((static_sum - r.energy.static_j).abs() < 1e-12);
    let wake_sum: u64 = r.per_router.iter().map(|p| p.wakeups).sum();
    assert_eq!(wake_sum, r.energy.wakeups);
    for p in &r.per_router {
        assert!((0.0..=1.0).contains(&p.off_fraction));
    }
}

#[test]
fn tighter_t_idle_gates_more_often() {
    let topo = Topology::mesh8x8();
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(3_000)
        .generate(Benchmark::Swaptions);
    let eager = Network::new(NocConfig::paper(topo).with_t_idle(2))
        .run(&trace, &mut AlwaysMode::new(Mode::M7).with_gating())
        .expect("run completes");
    let lazy = Network::new(NocConfig::paper(topo).with_t_idle(256))
        .run(&trace, &mut AlwaysMode::new(Mode::M7).with_gating())
        .expect("run completes");
    assert!(
        eager.energy.gate_offs > lazy.energy.gate_offs,
        "eager {} vs lazy {}",
        eager.energy.gate_offs,
        lazy.energy.gate_offs
    );
    assert_eq!(eager.stats.packets_delivered, lazy.stats.packets_delivered);
}

#[test]
fn disabling_wake_punch_still_delivers() {
    let topo = Topology::mesh8x8();
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(2_000)
        .generate(Benchmark::Radix);
    let punched = Network::new(NocConfig::paper(topo))
        .run(&trace, &mut AlwaysMode::new(Mode::M7).with_gating())
        .expect("run completes");
    let unpunched = Network::new(NocConfig::paper(topo).without_wake_punch())
        .run(&trace, &mut AlwaysMode::new(Mode::M7).with_gating())
        .expect("run completes");
    assert_eq!(
        punched.stats.packets_delivered,
        unpunched.stats.packets_delivered
    );
    // Without punching, wake-ups happen closer to the packet (look-ahead
    // only), so the *punched* run wakes at least as many routers.
    assert!(punched.energy.wakeups >= unpunched.energy.wakeups);
}

#[test]
fn deeper_pipelines_are_slower_but_lossless() {
    let topo = Topology::mesh8x8();
    let trace = Trace::new("pipe", 64, vec![packet(0, 63, PacketKind::Response, 1.0)]);
    let mut shallow_cfg = NocConfig::paper(topo);
    shallow_cfg.pipeline_cycles = 1;
    let shallow = Network::new(shallow_cfg)
        .run(&trace, &mut AlwaysMode::new(Mode::M7))
        .expect("run completes");
    let mut deep_cfg = NocConfig::paper(topo);
    deep_cfg.pipeline_cycles = 5;
    let deep = Network::new(deep_cfg)
        .run(&trace, &mut AlwaysMode::new(Mode::M7))
        .expect("run completes");
    assert_eq!(deep.stats.packets_delivered, 1);
    assert!(
        deep.stats.avg_net_latency_ns() > shallow.stats.avg_net_latency_ns() * 1.5,
        "deep {} ns vs shallow {} ns",
        deep.stats.avg_net_latency_ns(),
        shallow.stats.avg_net_latency_ns()
    );
}

#[test]
fn histogram_totals_match_delivered_packets() {
    let topo = Topology::mesh8x8();
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(2_000)
        .generate(Benchmark::X264);
    let r = Network::new(NocConfig::paper(topo))
        .run(&trace, &mut AlwaysMode::new(Mode::M7))
        .expect("run completes");
    assert_eq!(r.stats.net_latency_hist.total(), r.stats.packets_delivered);
    // P100 bound dominates the recorded max.
    assert!(r.stats.net_latency_hist.percentile_ticks(1.0) >= r.stats.net_latency_max_ticks);
}
