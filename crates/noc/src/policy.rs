//! The policy interface: what a power-management scheme contributes.
//!
//! The simulator owns the *mechanics* (gating conditions, wake-ups,
//! switching delays, billing); a [`PowerPolicy`] owns the *decisions*:
//! which active mode to run each epoch, and whether gating is permitted
//! at all. The five paper models (baseline, PG, LEAD-τ, DozzNoC,
//! ML+TURBO) are implemented in `dozznoc-core`; this module only defines
//! the contract plus a trivial fixed-mode policy used by tests.

use dozznoc_types::{Mode, RouterId};

use crate::observation::EpochObservation;
use crate::telemetry::DecisionTrace;

/// A power-management policy driving one simulation run.
///
/// `select_mode` is invoked once per router per epoch boundary with that
/// router's epoch observation; the returned mode takes effect for the
/// next epoch (paying T-Switch if it differs from the current one, per
/// Table III). The observation hook fires for *every* epoch, including
/// epochs the router spent gated — idle epochs are exactly the ones a
/// training collector must see.
pub trait PowerPolicy {
    /// Choose the active mode for `router`'s next epoch.
    fn select_mode(&mut self, router: RouterId, obs: &EpochObservation) -> Mode;

    /// Whether routers may be power-gated (Fig. 3(a) mechanics). The
    /// baseline and DVFS-only models return `false`.
    fn gating_enabled(&self) -> bool {
        false
    }

    /// Number of ML features evaluated per label, for §III-D overhead
    /// billing. `None` disables billing (non-ML policies).
    fn ml_features(&self) -> Option<usize> {
        None
    }

    /// The feature vector and prediction behind the most recent
    /// `select_mode` call, for telemetry. Non-ML policies (and policies
    /// that do not care to trace) return `None`; the network forwards a
    /// `Some` to [`Telemetry::on_decision`](crate::Telemetry::on_decision)
    /// right after each epoch decision.
    fn decision_trace(&self) -> Option<&DecisionTrace> {
        None
    }

    /// Display name for reports.
    fn name(&self) -> &str;
}

/// Fixed-mode policy: always selects `mode`, optionally gating. With
/// `Mode::M7` and gating disabled this is the paper's **baseline**; with
/// gating enabled it is the skeleton of the Power Punch-style PG model.
#[derive(Debug, Clone)]
pub struct AlwaysMode {
    mode: Mode,
    gating: bool,
    name: String,
}

impl AlwaysMode {
    /// A policy that always runs routers at `mode`.
    pub fn new(mode: Mode) -> Self {
        AlwaysMode {
            mode,
            gating: false,
            name: format!("always-{}", mode.index()),
        }
    }

    /// Enable power gating. Idempotent: re-enabling is a no-op, so the
    /// name tag is appended exactly once.
    #[must_use]
    pub fn with_gating(mut self) -> Self {
        if !self.gating {
            self.gating = true;
            self.name.push_str("+pg");
        }
        self
    }
}

impl PowerPolicy for AlwaysMode {
    fn select_mode(&mut self, _router: RouterId, _obs: &EpochObservation) -> Mode {
        self.mode
    }

    fn gating_enabled(&self) -> bool {
        self.gating
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_mode_is_constant() {
        let mut p = AlwaysMode::new(Mode::M5);
        let obs = EpochObservation {
            cycles: 500,
            ..Default::default()
        };
        assert_eq!(p.select_mode(RouterId(0), &obs), Mode::M5);
        assert_eq!(p.select_mode(RouterId(9), &obs), Mode::M5);
        assert!(!p.gating_enabled());
        assert_eq!(p.ml_features(), None);
        assert_eq!(p.name(), "always-5");
    }

    #[test]
    fn gating_variant() {
        let p = AlwaysMode::new(Mode::M7).with_gating();
        assert!(p.gating_enabled());
        assert_eq!(p.name(), "always-7+pg");
    }

    #[test]
    fn with_gating_is_idempotent() {
        // Regression: enabling twice used to name it "always-7+pg+pg".
        let p = AlwaysMode::new(Mode::M7).with_gating().with_gating();
        assert!(p.gating_enabled());
        assert_eq!(p.name(), "always-7+pg");
    }
}
