//! Per-epoch router observations — the raw material of ML features.
//!
//! At every epoch boundary the simulator snapshots one
//! [`EpochObservation`] per router. The DozzNoC feature-extract unit
//! (in `dozznoc-core`) maps observations to feature vectors; the data
//! collector pairs each observation with the *next* epoch's IBU to form
//! the training label.
//!
//! All rate-like fields are normalized to the epoch (per-cycle or
//! fraction-of-capacity), so feature magnitudes are comparable across
//! epoch sizes and V/F modes.

use serde::{Deserialize, Serialize};

use dozznoc_types::{Mode, RouterId};

/// Statistics of one port class (N/S/E/W/local-aggregate) over an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PortClassStats {
    /// Mean buffer occupancy, as a fraction of the class's capacity.
    pub occupancy: f64,
    /// Flits received on this class, per cycle.
    pub flits_in: f64,
    /// Flits sent out of this class, per cycle.
    pub flits_out: f64,
    /// Fraction of cycles the class's output was busy.
    pub link_utilization: f64,
}

/// Snapshot of one router's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EpochObservation {
    /// The router observed.
    pub router: RouterId,
    /// Epoch sequence number (0-based).
    pub epoch: u64,
    /// Local cycles in the epoch (the configured epoch size).
    pub cycles: u64,

    /// Mean input-buffer utilization (fraction of the theoretical
    /// maximum) — Table IV feature 5 and the basis of the label.
    pub ibu: f64,
    /// Peak per-cycle IBU.
    pub ibu_peak: f64,
    /// Previous epoch's mean IBU.
    pub prev_ibu: f64,
    /// Short-horizon EWMA of epoch IBUs (α = 0.5).
    pub ibu_ewma_short: f64,
    /// Long-horizon EWMA of epoch IBUs (α = 0.1).
    pub ibu_ewma_long: f64,

    /// Requests injected by attached cores, per cycle.
    pub reqs_sent: f64,
    /// Requests delivered to attached cores, per cycle.
    pub reqs_recv: f64,
    /// Responses injected by attached cores, per cycle.
    pub resps_sent: f64,
    /// Responses delivered to attached cores, per cycle.
    pub resps_recv: f64,

    /// Fraction of *total elapsed time* this router has been gated
    /// (Table IV feature 4: "router total off time").
    pub total_off_fraction: f64,
    /// Fraction of this epoch spent gated.
    pub epoch_off_fraction: f64,
    /// Wake-ups so far (lifetime), per epoch elapsed.
    pub wakeup_rate: f64,
    /// Gate-offs so far (lifetime), per epoch elapsed.
    pub gate_off_rate: f64,
    /// Fraction of cycles this epoch secured as a downstream router.
    pub secured_fraction: f64,
    /// Fraction of cycles this epoch with all input buffers empty.
    pub idle_fraction: f64,

    /// Per-port-class statistics (N, S, E, W, local) in canonical order.
    pub port_classes: [PortClassStats; 5],

    /// Flits injected by attached cores, per cycle.
    pub flits_injected: f64,
    /// Flits ejected to attached cores, per cycle.
    pub flits_ejected: f64,
    /// Flit-hops routed through the switch, per cycle.
    pub hops_routed: f64,
    /// Fraction of cycles a ready head flit lost switch allocation.
    pub stall_fraction: f64,
    /// Fraction of cycles a send was blocked on downstream space.
    pub credit_stall_fraction: f64,

    /// Mode the router ended the epoch in (Fig. 7 residency reporting
    /// uses the per-epoch mode decision instead).
    pub mode: Mode,
}

impl EpochObservation {
    /// Sanity check: every fraction within its domain. Used by debug
    /// assertions and property tests.
    pub fn is_well_formed(&self) -> bool {
        let fracs = [
            self.ibu,
            self.ibu_peak,
            self.prev_ibu,
            self.ibu_ewma_short,
            self.ibu_ewma_long,
            self.total_off_fraction,
            self.epoch_off_fraction,
            self.secured_fraction,
            self.idle_fraction,
            self.stall_fraction,
            self.credit_stall_fraction,
        ];
        fracs
            .iter()
            .all(|f| (0.0..=1.0).contains(f) && f.is_finite())
            && self.port_classes.iter().all(|p| {
                (0.0..=1.0).contains(&p.occupancy) && (0.0..=1.0).contains(&p.link_utilization)
            })
            && self.ibu <= self.ibu_peak + 1e-9
            && self.cycles > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EpochObservation {
        EpochObservation {
            cycles: 500,
            mode: Mode::M7,
            ..Default::default()
        }
    }

    #[test]
    fn default_with_cycles_is_well_formed() {
        assert!(base().is_well_formed());
    }

    #[test]
    fn out_of_range_fraction_detected() {
        let mut o = base();
        o.ibu = 1.5;
        assert!(!o.is_well_formed());
        let mut o = base();
        o.total_off_fraction = -0.1;
        assert!(!o.is_well_formed());
    }

    #[test]
    fn peak_must_dominate_mean() {
        let mut o = base();
        o.ibu = 0.5;
        o.ibu_peak = 0.4;
        assert!(!o.is_well_formed());
        o.ibu_peak = 0.5;
        assert!(o.is_well_formed());
    }

    #[test]
    fn zero_cycles_rejected() {
        let mut o = base();
        o.cycles = 0;
        assert!(!o.is_well_formed());
    }
}
