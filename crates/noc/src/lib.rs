//! Cycle-accurate, multi-clock-domain NoC simulator.
//!
//! This is the substrate the DozzNoC policies run on: an input-buffered
//! wormhole network with virtual channels, credit-style backpressure, XY
//! dimension-order look-ahead routing, and — the part that makes DozzNoC
//! simulable — **per-router clock domains and power states**.
//!
//! Time advances in ticks of a virtual 18 GHz base clock
//! ([`dozznoc_types::time`]); a router in mode *m* executes one pipeline
//! cycle every `m.divisor()` ticks. A hop is performed by the *upstream*
//! router during its own cycle, so hop latency is governed by the sender's
//! frequency exactly as §III-A describes.
//!
//! Power-state mechanics are structural (identical for every policy):
//!
//! * a router may gate off only when idle ≥ T-Idle cycles, IBU = 0 and it
//!   is not secured as a downstream router (paper Fig. 3(a));
//! * look-ahead routing secures/wakes the downstream router of every
//!   packet, making gating *partially non-blocking*;
//! * wake-ups pay T-Wakeup (Table III), mode switches pay T-Switch, and
//!   off-residencies shorter than T-Breakeven are counted as violations;
//! * residency, flit-hops and ML labels are billed to a
//!   [`dozznoc_power::EnergyLedger`].
//!
//! *Policies* (what DozzNoC actually contributes) plug in through the
//! [`PowerPolicy`] trait and are implemented in `dozznoc-core`.

pub mod buffer;
pub mod config;
pub mod histogram;
pub mod network;
pub mod observation;
pub mod policy;
pub mod router;
pub mod sanitizer;
pub mod shard;
pub mod stats;
pub mod telemetry;

pub use config::NocConfig;
pub use histogram::LatencyHistogram;
pub use network::Network;
pub use observation::{EpochObservation, PortClassStats};
pub use policy::{AlwaysMode, PowerPolicy};
pub use sanitizer::{
    InvariantViolation, SanitizerConfig, SanitizerReport, SimSanitizer, ViolationKind,
};
pub use shard::run_sharded;
pub use stats::{RouterSummary, RunReport, RunStats, REPORT_FORMAT_VERSION};
pub use telemetry::{DecisionTrace, EpochSample, JsonlSink, NullSink, Telemetry, TimelineSink};
