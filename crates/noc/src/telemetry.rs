//! Per-epoch telemetry: observe a run without perturbing it.
//!
//! A [`Telemetry`] sink receives three families of callbacks from
//! [`Network::run_with_telemetry`](crate::Network::run_with_telemetry):
//!
//! * **run lifecycle** — [`on_run_start`](Telemetry::on_run_start) /
//!   [`on_run_end`](Telemetry::on_run_end) bracket the simulation;
//! * **per epoch** — [`on_epoch`](Telemetry::on_epoch) fires at every
//!   router's epoch boundary with the epoch observation, the mode the
//!   policy selected, and the [`EnergyDelta`] billed since the previous
//!   boundary (the network settles residency billing first, so the
//!   delta carries the epoch's static energy, not just its traffic).
//!   ML policies additionally report the feature vector behind each
//!   decision through [`on_decision`](Telemetry::on_decision);
//! * **per transition** — [`on_transition`](Telemetry::on_transition)
//!   delivers gate-off / wake-up / mode-switch events with base-tick
//!   timestamps.
//!
//! Sinks opt out of all of it by returning `false` from
//! [`is_enabled`](Telemetry::is_enabled): the network then skips the
//! ledger snapshots and residency settling entirely, so a disabled sink
//! ([`NullSink`]) costs nothing measurable (see the `telemetry`
//! Criterion bench).

use std::io::{self, Write};
use std::path::Path;

use dozznoc_power::EnergyDelta;
use dozznoc_types::{Mode, RouterId, TransitionEvent};

use serde::{Deserialize, Serialize};

use crate::config::NocConfig;
use crate::observation::EpochObservation;
use crate::sanitizer::InvariantViolation;
use crate::stats::RunReport;

/// The feature vector and raw prediction behind one ML policy decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// Feature values, in the policy's feature-set order.
    pub features: Vec<f64>,
    /// The model's predicted future input-buffer utilization.
    pub predicted_ibu: f64,
}

/// Observer of one simulation run. All hooks default to no-ops so a
/// sink only implements what it cares about.
pub trait Telemetry {
    /// Fast-path gate: when `false` the network skips every hook *and*
    /// the bookkeeping behind them (ledger snapshots, event buffering).
    fn is_enabled(&self) -> bool {
        true
    }

    /// The run is starting under `cfg`, driven by `policy` on `trace`.
    fn on_run_start(&mut self, _cfg: &NocConfig, _policy: &str, _trace: &str) {}

    /// `router` crossed an epoch boundary: `obs` is the epoch just
    /// ended, `selected` the policy's mode for the next epoch, `energy`
    /// what the ledger billed this router since the previous boundary.
    fn on_epoch(
        &mut self,
        _router: RouterId,
        _obs: &EpochObservation,
        _selected: Mode,
        _energy: &EnergyDelta,
    ) {
    }

    /// An ML policy produced `decision` for `router` and chose
    /// `selected` (fires just before the matching [`on_epoch`]).
    ///
    /// [`on_epoch`]: Telemetry::on_epoch
    fn on_decision(&mut self, _router: RouterId, _decision: &DecisionTrace, _selected: Mode) {}

    /// A router changed power state.
    fn on_transition(&mut self, _event: &TransitionEvent) {}

    /// The runtime sanitizer detected an invariant violation. Fires
    /// regardless of [`is_enabled`](Telemetry::is_enabled): violations
    /// are correctness signals, not profiling data, so a disabled sink
    /// still hears about them (the default no-op drops them for sinks
    /// that do not care).
    fn on_violation(&mut self, _violation: &InvariantViolation) {}

    /// The run finished; `report` is what `run` is about to return.
    fn on_run_end(&mut self, _report: &RunReport) {}
}

/// The default sink: telemetry disabled, zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Telemetry for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Streaming sink: one JSON object per line (JSONL) per event.
///
/// Record shapes (all carry an `"event"` discriminator):
///
/// ```text
/// {"event":"run_start","policy":…,"trace":…,"config":{…}}
/// {"event":"epoch","router":…,"selected":…,"observation":{…},"energy":{…}}
/// {"event":"decision","router":…,"features":[…],"predicted_ibu":…,"selected":…}
/// {"event":"transition","at":…,"router":…,"kind":…}
/// {"event":"run_end","report":{…}}
/// ```
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    records: u64,
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Stream records to a file at `path` (created/truncated, buffered).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Stream records into `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out, records: 0 }
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and recover the writer.
    pub fn into_inner(mut self) -> W {
        self.out.flush().expect("telemetry flush");
        self.out
    }

    fn write_record(&mut self, v: serde_json::Value) {
        // A telemetry sink has no way to surface IO errors mid-run;
        // failing loudly beats silently truncated timelines.
        writeln!(self.out, "{v}").expect("telemetry write");
        self.records += 1;
    }
}

impl<W: Write> Telemetry for JsonlSink<W> {
    fn on_run_start(&mut self, cfg: &NocConfig, policy: &str, trace: &str) {
        self.write_record(serde_json::json!({
            "event": "run_start",
            "policy": policy,
            "trace": trace,
            "config": serde_json::to_value(cfg),
        }));
    }

    fn on_epoch(
        &mut self,
        router: RouterId,
        obs: &EpochObservation,
        selected: Mode,
        energy: &EnergyDelta,
    ) {
        self.write_record(serde_json::json!({
            "event": "epoch",
            "router": router.idx(),
            "epoch": obs.epoch,
            "selected": serde_json::to_value(&selected),
            "observation": serde_json::to_value(obs),
            "energy": serde_json::to_value(energy),
        }));
    }

    fn on_decision(&mut self, router: RouterId, decision: &DecisionTrace, selected: Mode) {
        self.write_record(serde_json::json!({
            "event": "decision",
            "router": router.idx(),
            "features": serde_json::to_value(&decision.features),
            "predicted_ibu": decision.predicted_ibu,
            "selected": serde_json::to_value(&selected),
        }));
    }

    fn on_transition(&mut self, event: &TransitionEvent) {
        self.write_record(serde_json::json!({
            "event": "transition",
            "at": event.at.ticks(),
            "router": event.router.idx(),
            "kind": serde_json::to_value(&event.kind),
        }));
    }

    fn on_violation(&mut self, violation: &InvariantViolation) {
        self.write_record(serde_json::json!({
            "event": "violation",
            "violation": serde_json::to_value(violation),
        }));
    }

    fn on_run_end(&mut self, report: &RunReport) {
        self.write_record(serde_json::json!({
            "event": "run_end",
            "report": serde_json::to_value(report),
        }));
        self.out.flush().expect("telemetry flush");
    }
}

/// One router-epoch as recorded by [`TimelineSink`]: the observation's
/// per-cycle rates de-normalized back to raw event counts, plus the
/// epoch's energy bill.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochSample {
    /// Router observed.
    pub router: RouterId,
    /// Epoch index (per router, starting at 0).
    pub epoch: u64,
    /// Local cycles the epoch spanned (the final, partial epoch of a
    /// run is shorter than `epoch_cycles`).
    pub cycles: u64,
    /// Mode the policy selected at this boundary.
    pub mode: Mode,
    /// Mean input-buffer utilization over the epoch.
    pub ibu: f64,
    /// Fraction of the epoch spent power-gated.
    pub off_fraction: f64,
    /// Flits injected by attached cores during the epoch.
    pub flits_injected: u64,
    /// Flits delivered to attached cores during the epoch.
    pub flits_ejected: u64,
    /// Flit-hops routed through the switch during the epoch.
    pub hops: u64,
    /// Energy billed to this router over the epoch.
    pub energy: EnergyDelta,
}

/// Recover a raw per-epoch count from a per-cycle rate. Exact for the
/// counter magnitudes an epoch can hold (`rate` is `count / cycles`
/// computed in f64; the round-trip error is far below 0.5).
fn denormalize(rate: f64, cycles: u64) -> u64 {
    (rate * cycles as f64).round() as u64
}

/// In-memory sink: the full per-router mode/energy timeline, used by
/// `dozz-repro timeline` and by integration tests that check per-epoch
/// events against run totals.
#[derive(Debug, Clone, Default)]
pub struct TimelineSink {
    /// Every epoch of every router, in emission order (time-sorted per
    /// router; routers interleave).
    pub epochs: Vec<EpochSample>,
    /// Every power-state transition, in emission order.
    pub transitions: Vec<TransitionEvent>,
    /// Every sanitizer violation, in emission order (empty unless the
    /// run executed under an enabled [`SimSanitizer`](crate::SimSanitizer)).
    pub violations: Vec<InvariantViolation>,
    /// The final report, filled in at run end.
    pub report: Option<RunReport>,
}

impl TimelineSink {
    /// An empty timeline.
    pub fn new() -> Self {
        TimelineSink::default()
    }

    /// This router's epochs, in time order.
    pub fn router_timeline(&self, router: RouterId) -> impl Iterator<Item = &EpochSample> {
        self.epochs.iter().filter(move |s| s.router == router)
    }

    /// Total flits injected across all recorded epochs.
    pub fn total_injected(&self) -> u64 {
        self.epochs.iter().map(|s| s.flits_injected).sum()
    }

    /// Total flits ejected across all recorded epochs.
    pub fn total_ejected(&self) -> u64 {
        self.epochs.iter().map(|s| s.flits_ejected).sum()
    }

    /// Total energy billed across all recorded epochs (static + dynamic
    /// + ML).
    pub fn total_energy_j(&self) -> f64 {
        self.epochs.iter().map(|s| s.energy.total_j()).sum()
    }
}

impl Telemetry for TimelineSink {
    fn on_epoch(
        &mut self,
        router: RouterId,
        obs: &EpochObservation,
        selected: Mode,
        energy: &EnergyDelta,
    ) {
        self.epochs.push(EpochSample {
            router,
            epoch: obs.epoch,
            cycles: obs.cycles,
            mode: selected,
            ibu: obs.ibu,
            off_fraction: obs.epoch_off_fraction,
            flits_injected: denormalize(obs.flits_injected, obs.cycles),
            flits_ejected: denormalize(obs.flits_ejected, obs.cycles),
            hops: denormalize(obs.hops_routed, obs.cycles),
            energy: *energy,
        });
    }

    fn on_transition(&mut self, event: &TransitionEvent) {
        self.transitions.push(*event);
    }

    fn on_violation(&mut self, violation: &InvariantViolation) {
        self.violations.push(violation.clone());
    }

    fn on_run_end(&mut self, report: &RunReport) {
        self.report = Some(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dozznoc_types::{SimTime, TransitionKind};

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.is_enabled());
        assert!(TimelineSink::new().is_enabled());
        assert!(JsonlSink::new(Vec::new()).is_enabled());
    }

    #[test]
    fn denormalize_round_trips_counts() {
        for cycles in [1u64, 7, 499, 500, 100_000] {
            for count in [0u64, 1, 3, cycles, 5 * cycles + 1] {
                let rate = count as f64 / cycles as f64;
                assert_eq!(denormalize(rate, cycles), count, "{count}/{cycles}");
            }
        }
    }

    #[test]
    fn timeline_accumulates_and_filters() {
        let mut sink = TimelineSink::new();
        let obs = |router: u16, inj: f64| EpochObservation {
            router: RouterId(router),
            cycles: 100,
            flits_injected: inj,
            ..Default::default()
        };
        sink.on_epoch(RouterId(0), &obs(0, 0.5), Mode::M7, &EnergyDelta::default());
        sink.on_epoch(
            RouterId(1),
            &obs(1, 0.25),
            Mode::M3,
            &EnergyDelta::default(),
        );
        sink.on_epoch(RouterId(0), &obs(0, 0.0), Mode::M5, &EnergyDelta::default());
        assert_eq!(sink.epochs.len(), 3);
        assert_eq!(sink.router_timeline(RouterId(0)).count(), 2);
        assert_eq!(sink.total_injected(), 50 + 25);
        let modes: Vec<Mode> = sink.router_timeline(RouterId(0)).map(|s| s.mode).collect();
        assert_eq!(modes, vec![Mode::M7, Mode::M5]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_epoch(
            RouterId(3),
            &EpochObservation {
                router: RouterId(3),
                cycles: 500,
                ..Default::default()
            },
            Mode::M6,
            &EnergyDelta {
                static_j: 1e-9,
                ..Default::default()
            },
        );
        sink.on_transition(&TransitionEvent {
            at: SimTime::from_ticks(42),
            router: RouterId(3),
            kind: TransitionKind::GateOff,
        });
        sink.on_decision(
            RouterId(3),
            &DecisionTrace {
                features: vec![1.0, 0.5],
                predicted_ibu: 0.25,
            },
            Mode::M6,
        );
        assert_eq!(sink.records_written(), 3);
        let text = String::from_utf8(sink.into_inner()).expect("records are UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Every line parses back and carries its discriminator.
        let v: serde_json::Value = serde_json::from_str(lines[0]).expect("line 0 parses");
        assert_eq!(v["event"].as_str(), Some("epoch"));
        assert_eq!(v["router"].as_u64(), Some(3));
        let t: serde_json::Value = serde_json::from_str(lines[1]).expect("line 1 parses");
        assert_eq!(t["event"].as_str(), Some("transition"));
        assert_eq!(t["at"].as_u64(), Some(42));
        let d: serde_json::Value = serde_json::from_str(lines[2]).expect("line 2 parses");
        assert_eq!(d["predicted_ibu"].as_f64(), Some(0.25));
    }
}
