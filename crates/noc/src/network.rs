//! The network: owns all routers and runs the simulation loop.
//!
//! ## Tick discipline
//!
//! The global clock advances in base ticks (18 GHz). Each router fires a
//! local cycle when the tick counter reaches its `next_cycle_at`, then
//! re-arms `divisor()` ticks later — so a router at 1 GHz fires every 18
//! ticks, one at 2.25 GHz every 8. All flit movement happens inside the
//! *upstream* router's cycle, which is what makes hop latency follow the
//! sender's frequency (§III-A). A flit that lands in a downstream buffer
//! carries `ready_at = tick + lookahead_ticks`, so it can never traverse
//! two routers within one base tick regardless of router iteration order.
//!
//! ## Tick-edge settlement
//!
//! Every event tick runs in two phases. During the **fire** phase a
//! router mutates only *its own* state; anything it does to another
//! router — handing over a flit, taking or releasing a downstream-secure
//! reference, punching a wake signal — is emitted as a deferred [`Msg`]
//! instead of applied in place. Cross-router *reads* (is the downstream
//! router operational, which of its VCs accept a new packet) go through
//! per-router snapshots settled at the end of the previous tick. The
//! **settle** phase then applies all messages in a deterministic key
//! order — `(phase, source, emission seq)` — and rebuilds the snapshots
//! of every router that fired or was targeted.
//!
//! Because firings touch disjoint state and settlement order is fixed by
//! the keys (not by who computed what first), the network can be
//! partitioned into spatial shards that fire concurrently and exchange
//! messages at a conservative time-window barrier, producing the *same
//! bits* as this single-threaded loop (see `crate::shard`). The
//! sequential engine is simply the one-shard instance of the same phased
//! code.
//!
//! ## Power mechanics
//!
//! Gating (Fig. 3(a)): an active router gates off when its policy permits
//! gating, its buffers have been empty ≥ T-Idle consecutive cycles, no
//! attached core has a pending injection, and it is not *secured* as the
//! downstream router of any in-flight packet. Route computation secures
//! the downstream router of every packet (look-ahead) and wakes it if it
//! is off; a local injection wakes the router it targets. Wake-ups pay
//! the target mode's T-Wakeup; active-mode switches pay T-Switch;
//! off-residencies shorter than T-Breakeven are counted as violations.

use dozznoc_power::{
    EnergyDelta, EnergyLedger, MlOverhead, RouterEnergy, TransitionEnergy, VfTable,
};
use dozznoc_topology::{Port, Topology, XyRouter};
use dozznoc_traffic::Trace;
use dozznoc_types::{
    DomainCycles, Flit, FlitKind, Mode, PowerState, RouterId, SimTime, TransitionEvent,
    TransitionKind,
};

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::buffer::VcRoute;
use crate::config::NocConfig;
use crate::policy::PowerPolicy;
use crate::router::{port_class, Router};
use crate::sanitizer::{InvariantViolation, SimSanitizer};
use crate::stats::{RunReport, RunStats};
use crate::telemetry::{NullSink, Telemetry};

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded `NocConfig::max_ticks` without draining —
    /// either the network is hopelessly saturated or a policy livelocked
    /// it. Carries the flits still in flight.
    Livelock {
        /// Flits still undelivered at abort time.
        in_flight: u64,
    },
    /// A fail-fast [`SimSanitizer`] detected an invariant violation.
    Invariant {
        /// The violation that aborted the run.
        violation: InvariantViolation,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Livelock { in_flight } => {
                write!(
                    f,
                    "simulation hit max_ticks with {in_flight} flits in flight"
                )
            }
            SimError::Invariant { violation } => {
                write!(
                    f,
                    "invariant violation at tick {}: {:?}",
                    violation.tick, violation.kind
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A cross-router side effect deferred to the end-of-tick settlement.
///
/// Every mutation of a router other than the one currently firing is
/// expressed as one of these; the settle phase applies them in [`Msg`]
/// key order. `Punch` and `Secure` are emitted *unconditionally* (no
/// "is the target gated?" check at the emitter): the emitter only has a
/// settled snapshot of its physical neighbors, while punches target
/// arbitrary routers along a path — filtering on possibly-stale state
/// would make the outcome depend on who owns the target. The gate check
/// happens at apply time against the target's live state.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Effect {
    /// Admission-time wake punch along a packet's XY path.
    Punch {
        /// Target router index.
        router: u32,
    },
    /// Downstream-secure reference taken at route compute (wakes a
    /// gated target).
    Secure {
        /// Target router index.
        router: u32,
    },
    /// Release of a downstream-secure reference (the tail departed).
    Unsecure {
        /// Target router index.
        router: u32,
    },
    /// A flit crossing a link into a downstream router's input VC.
    Transfer {
        /// Downstream router index.
        dst: u32,
        /// Input-port index at the downstream router.
        port: u8,
        /// VC index within that port.
        vc: u8,
        /// The flit itself.
        flit: Flit,
        /// Earliest tick the flit may move on downstream.
        ready_at: u64,
        /// Tick the packet's head entered the network (carried along so
        /// the ejecting shard can report network latency without owning
        /// the source router).
        entered: u64,
    },
}

impl Effect {
    /// The router whose owner must apply this effect.
    #[inline]
    pub(crate) fn target(&self) -> u32 {
        match *self {
            Effect::Punch { router } | Effect::Secure { router } | Effect::Unsecure { router } => {
                router
            }
            Effect::Transfer { dst, .. } => dst,
        }
    }
}

/// One deferred effect with its deterministic settlement key.
///
/// `phase` 0 is admission (keyed by global packet index), phase 1 is
/// router firing (keyed by source router index); `seq` orders emissions
/// from the same source within one tick. Sorting a tick's messages by
/// `(phase, src_key, seq)` reproduces exactly the order the sequential
/// loop emits them in, which is what makes sharded settlement
/// bit-identical.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Msg {
    pub(crate) phase: u8,
    pub(crate) src_key: u64,
    pub(crate) seq: u32,
    pub(crate) effect: Effect,
}

impl Msg {
    /// The total settlement order.
    #[inline]
    pub(crate) fn key(&self) -> (u8, u64, u32) {
        (self.phase, self.src_key, self.seq)
    }
}

/// Settled per-router metadata (state as of the end of the previous
/// tick), read by *other* routers during the fire phase.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SnapMeta {
    /// `state.is_operational()` at settlement.
    pub(crate) operational: bool,
    /// T-Switch stall deadline at settlement.
    pub(crate) stall_until: u64,
    /// Clock divisor at settlement (downstream pipeline timing).
    pub(crate) divisor: u64,
}

/// Snapshot VC flag: the VC can accept a new packet's head.
pub(crate) const SNAP_ACCEPTS_NEW: u8 = 1 << 0;
/// Snapshot VC flag: the VC has space for one more flit.
pub(crate) const SNAP_HAS_SPACE: u8 = 1 << 1;

/// The simulated network.
///
/// Fields the [`SimSanitizer`](crate::sanitizer) cross-checks are
/// `pub(crate)`: the sanitizer reads them but, by taking `&Network`
/// only, can never perturb a run.
pub struct Network {
    pub(crate) cfg: NocConfig,
    pub(crate) topo: Topology,
    xy: XyRouter,
    vf: VfTable,
    pub(crate) routers: Vec<Router>,
    /// Downstream-secure reference counts, one per router.
    secured: Vec<u32>,
    /// Per-core injection queues (unbounded NI buffers).
    pub(crate) inject: Vec<VecDeque<Flit>>,
    ledger: EnergyLedger,
    transition: TransitionEnergy,
    pub(crate) stats: RunStats,
    pub(crate) now: u64,
    pub(crate) in_flight: u64,
    /// Tick each packet's head flit entered the network (dense by
    /// `PacketId`; `u64::MAX` = not yet entered).
    net_entry: Vec<u64>,
    /// Telemetry fast path: `false` (the default) skips every hook and
    /// all bookkeeping behind them.
    tel_enabled: bool,
    /// Transition events buffered for the sink (inner helpers fill
    /// this; the main loop drains it once per tick, so the sink does
    /// not need to be threaded through every state-machine helper).
    events: Vec<TransitionEvent>,
    /// Ledger snapshot at each router's previous epoch boundary
    /// (allocated only when telemetry is enabled).
    energy_prev: Vec<RouterEnergy>,
    /// Next-event schedule: a min-heap of `(next_cycle_at, router
    /// index)` with lazy deletion. Invariants:
    ///
    /// * every router's current `next_cycle_at` has an entry in the
    ///   heap (entries are pushed on every assignment that could lower
    ///   or re-arm it);
    /// * an entry whose tick no longer matches the router's
    ///   `next_cycle_at` is stale and is discarded on pop;
    /// * ties pop in router-index order (`Reverse<(tick, idx)>`), which
    ///   keeps same-tick firing order identical to a linear index scan.
    ///
    /// This replaces an O(n) min-scan over all routers per event with
    /// O(log n) per firing, and stays correct when `begin_wakeup` pulls
    /// a router's `next_cycle_at` *earlier* than its scheduled entry.
    pub(crate) sched: BinaryHeap<Reverse<(u64, u32)>>,
    /// Switch-allocation scratch: candidate input slots bucketed by
    /// output port (flattened `n_ports × n_slots`), reused every cycle
    /// so the allocator never allocates.
    sa_cand: Vec<usize>,
    /// Number of live candidates per output-port bucket in `sa_cand`.
    sa_cand_len: Vec<usize>,
    /// Dump router state on livelock (the `DOZZNOC_DUMP_ON_LIVELOCK`
    /// env var, read once at construction: the engine region itself
    /// must stay free of ambient process state — determinism-taint
    /// pass). Deliberately not part of `NocConfig`: it changes only
    /// what is printed on an error path, never simulation output, so
    /// it must not perturb run-cache fingerprints.
    dump_on_livelock: bool,
    /// Deferred cross-router effects emitted during the current tick's
    /// fire phase, in emission order. The sequential loop emits them
    /// already sorted by settlement key; the sharded engine merges
    /// outboxes from several shards and sorts.
    pub(crate) outbox: Vec<Msg>,
    /// Per-source emission counter (reset before each admission packet
    /// and each router firing; the `seq` of the next emitted message).
    emit_seq: u32,
    /// Settled per-router metadata, indexed by router.
    pub(crate) snap_meta: Vec<SnapMeta>,
    /// Settled per-VC flags ([`SNAP_ACCEPTS_NEW`] | [`SNAP_HAS_SPACE`]),
    /// flattened `(router · ports + port) · vcs + vc`.
    pub(crate) snap_vc: Vec<u8>,
    /// Routers whose snapshot is stale (fired or was a settle target).
    dirty: Vec<bool>,
    /// Dense list backing `dirty`.
    dirty_list: Vec<u32>,
    /// Router-index range this instance owns. The sequential engine
    /// owns everything; a shard restricted via [`Network::restrict`]
    /// fires, admits for, and bills only this range — every other
    /// router's `Router` struct is untouched dead weight whose *snapshot*
    /// (installed by the owning shard) is the only thing read.
    pub(crate) owned: std::ops::Range<usize>,
}

impl Network {
    /// Build a network in the baseline state (everything active at M7).
    pub fn new(cfg: NocConfig) -> Self {
        assert!(
            cfg.pipeline_cycles >= 1,
            "pipeline_cycles must be ≥ 1 (use NocConfig::try_with_pipeline_cycles)"
        );
        assert!(
            cfg.lookahead_ticks >= 1,
            "lookahead_ticks must be ≥ 1 (use NocConfig::try_with_lookahead_ticks)"
        );
        let topo = cfg.topology;
        let n = topo.num_routers();
        let mut net = Network {
            cfg,
            topo,
            xy: XyRouter::with_order(topo, cfg.routing),
            vf: VfTable::paper(),
            routers: (0..n)
                .map(|i| Router::new(RouterId::from(i), &cfg))
                .collect(),
            secured: vec![0; n],
            inject: (0..topo.num_cores()).map(|_| VecDeque::new()).collect(),
            ledger: EnergyLedger::new(n),
            transition: TransitionEnergy::default(),
            stats: RunStats::default(),
            now: 0,
            in_flight: 0,
            net_entry: Vec::new(),
            tel_enabled: false,
            events: Vec::new(),
            energy_prev: Vec::new(),
            // Every router starts with next_cycle_at == 0.
            sched: (0..n as u32).map(|i| Reverse((0u64, i))).collect(),
            sa_cand: {
                let n_ports = topo.ports_per_router();
                let n_slots = n_ports * cfg.vcs_per_port;
                vec![0; n_ports * n_slots]
            },
            sa_cand_len: vec![0; topo.ports_per_router()],
            // xtask-analyze: allow(determinism-taint) — read once at construction, before any simulation state exists; the flag only gates error-path printing, never simulation output
            dump_on_livelock: std::env::var_os("DOZZNOC_DUMP_ON_LIVELOCK").is_some(),
            outbox: Vec::new(),
            emit_seq: 0,
            snap_meta: vec![SnapMeta::default(); n],
            snap_vc: vec![0; n * topo.ports_per_router() * cfg.vcs_per_port],
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            owned: 0..n,
        };
        net.refresh_all_snaps();
        net
    }

    /// Restrict this instance to a contiguous shard of routers: only
    /// `owned` routers are scheduled, admitted for, and billed. The
    /// foreign remainder of every per-router array stays allocated (so
    /// global indices keep working) but is only ever written through
    /// settled messages routed here by the sharded engine — which, for
    /// a restricted instance, never targets a foreign router.
    pub(crate) fn restrict(&mut self, owned: std::ops::Range<usize>) {
        assert!(owned.end <= self.routers.len() && !owned.is_empty());
        self.sched = (owned.clone()).map(|i| Reverse((0u64, i as u32))).collect();
        self.owned = owned;
    }

    /// Size the per-packet entry table (the run loop does this from the
    /// trace; the sharded engine calls it per shard instance).
    pub(crate) fn prepare_packets(&mut self, num_packets: usize) {
        self.net_entry = vec![u64::MAX; num_packets];
    }

    /// The configuration in force.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Borrow a router (tests, diagnostics).
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.idx()]
    }

    /// Dump per-router flow-control state to stderr (diagnostic aid for
    /// livelock reports).
    #[doc(hidden)]
    pub fn dump_state(&self) {
        eprintln!("tick {} in_flight {}", self.now, self.in_flight);
        for (i, r) in self.routers.iter().enumerate() {
            let occ = r.occupancy();
            let q: usize = self
                .topo
                .cores_of_router(r.id)
                .map(|c| self.inject[c.idx()].len())
                .sum();
            if occ == 0 && q == 0 {
                continue;
            }
            eprintln!(
                "  R{i}: state {:?} occ {occ} ni-q {q} secured {} stall_until {} next_cycle {}",
                r.state, self.secured[i], r.stall_until, r.next_cycle_at
            );
            for (p, port) in r.ports.iter().enumerate() {
                for (v, vc) in port.iter() {
                    if !vc.is_empty() {
                        eprintln!(
                            "    port {p} vc {v}: len {} owner {:?} route {:?} front {:?}",
                            vc.len(),
                            vc.owner(),
                            vc.route(),
                            vc.peek_ready(u64::MAX)
                                .map(|f| (f.packet, f.kind, f.seq, f.dst))
                        );
                    }
                }
            }
        }
    }

    /// Run `trace` under `policy` to completion and report.
    pub fn run(self, trace: &Trace, policy: &mut dyn PowerPolicy) -> Result<RunReport, SimError> {
        self.run_instrumented(trace, policy, &mut NullSink, None)
    }

    /// Run `trace` under `policy`, streaming per-epoch observations,
    /// power-state transitions and run lifecycle events into `tel`.
    ///
    /// With a disabled sink ([`NullSink`], or any sink whose
    /// [`Telemetry::is_enabled`] returns `false`) this is exactly
    /// [`Network::run`]: no snapshots are kept and no hooks fire.
    pub fn run_with_telemetry(
        self,
        trace: &Trace,
        policy: &mut dyn PowerPolicy,
        tel: &mut dyn Telemetry,
    ) -> Result<RunReport, SimError> {
        self.run_instrumented(trace, policy, tel, None)
    }

    /// Run under a [`SimSanitizer`]: every event tick's post-drain state
    /// is swept for invariant violations, which are surfaced through
    /// [`Telemetry::on_violation`] and collected in the sanitizer for
    /// [`SimSanitizer::report`]. The sanitizer only reads network state,
    /// so the returned report is bit-identical to an unsanitized run.
    ///
    /// With [`SimSanitizer::disabled`] (or by passing `None` internally)
    /// the cost is one branch per event tick.
    pub fn run_sanitized(
        self,
        trace: &Trace,
        policy: &mut dyn PowerPolicy,
        tel: &mut dyn Telemetry,
        san: &mut SimSanitizer,
    ) -> Result<RunReport, SimError> {
        self.run_instrumented(trace, policy, tel, Some(san))
    }

    fn run_instrumented(
        mut self,
        trace: &Trace,
        policy: &mut dyn PowerPolicy,
        tel: &mut dyn Telemetry,
        mut san: Option<&mut SimSanitizer>,
    ) -> Result<RunReport, SimError> {
        // Sanitizer fast path mirrors `tel_enabled`: one bool decides
        // whether the per-tick sweep call exists at all.
        let san_enabled = san.as_ref().is_some_and(|s| s.is_enabled());
        assert_eq!(
            trace.num_cores,
            self.topo.num_cores(),
            "trace core count does not match the topology"
        );
        let packets = trace.packets();
        self.prepare_packets(packets.len());
        let mut next_pkt = 0usize;
        let ml_overhead = policy.ml_features().map(MlOverhead::for_features);
        self.tel_enabled = tel.is_enabled();
        if self.tel_enabled {
            self.energy_prev = vec![RouterEnergy::default(); self.routers.len()];
            tel.on_run_start(&self.cfg, policy.name(), &trace.name);
        }

        loop {
            self.admit(packets, &mut next_pkt);
            self.fire(policy, ml_overhead.as_ref(), tel);
            self.settle_local();

            // Deliver the transitions this tick produced (admissions
            // included) in one batch; events carry their own timestamps.
            if self.tel_enabled && !self.events.is_empty() {
                for e in self.events.drain(..) {
                    tel.on_transition(&e);
                }
            }

            // Sweep invariants over the post-drain state (read-only).
            if san_enabled {
                if let Some(s) = san.as_deref_mut() {
                    s.check_tick(&self, tel);
                    if s.should_abort() {
                        let violation = s
                            .first_violation()
                            .expect("fail-fast abort implies a recorded violation")
                            .clone();
                        return Err(SimError::Invariant { violation });
                    }
                }
            }

            if next_pkt == packets.len() && self.in_flight == 0 {
                break;
            }
            if self.now >= self.cfg.max_ticks {
                if self.dump_on_livelock {
                    self.dump_state();
                }
                return Err(SimError::Livelock {
                    in_flight: self.in_flight,
                });
            }

            // Jump straight to the next event: the earliest live router
            // cycle (draining stale heap tops on the way) or the next
            // packet injection.
            let mut next = self.local_next_event();
            if next_pkt < packets.len() {
                next = next.min(packets[next_pkt].inject_time.ticks());
            }
            debug_assert!(next > self.now, "time must advance");
            self.now = next;
        }

        // Flush residual residency into the ledger.
        self.flush_residency();

        // Flush each router's final partial epoch to the sink so
        // per-epoch sums (flits, energy) conserve against run totals.
        // A zero-cycle tail still flushes if the residual residency
        // billed anything since the last boundary snapshot.
        if self.tel_enabled {
            for i in 0..self.routers.len() {
                let id = self.routers[i].id;
                let cur = *self.ledger.router(id);
                let delta = cur.delta_since(&self.energy_prev[i]);
                if self.routers[i].counters.cycles == 0 && delta == EnergyDelta::default() {
                    continue;
                }
                let obs = self.routers[i].end_epoch(self.now.max(1));
                self.energy_prev[i] = cur;
                tel.on_epoch(id, &obs, self.routers[i].selected_mode, &delta);
            }
        }

        let report = self.build_report(policy.name(), &trace.name);
        if self.tel_enabled {
            tel.on_run_end(&report);
        }
        Ok(report)
    }

    /// Assemble the final [`RunReport`] from this instance's settled
    /// accounting. Call only after the run loop has finished and
    /// residency has been flushed — and, in the sharded engine, after
    /// every other shard has been [`absorb`](Network::absorb)ed.
    pub(crate) fn build_report(&self, policy: &str, trace: &str) -> RunReport {
        let per_router = self
            .ledger
            .routers()
            .iter()
            .map(|e| crate::stats::RouterSummary {
                off_fraction: e.off_fraction(),
                hops: e.flit_hops,
                static_j: e.static_j,
                dynamic_j: e.dynamic_j,
                wakeups: e.wakeups,
            })
            .collect();
        RunReport {
            policy: policy.to_string(),
            trace: trace.to_string(),
            finished_at: SimTime::from_ticks(self.now),
            stats: self.stats.clone(),
            energy: self.ledger.report(),
            per_router,
        }
    }

    /// Fold another, disjointly-restricted instance's owned accounting
    /// into this one — the sharded engine's reduce step. Counters are
    /// integers and every ledger entry is billed by exactly one owner
    /// shard (all billing targets the firing router), so each per-entry
    /// sum here adds a real value to a still-default one and the merged
    /// ledger is bit-identical to a sequential run's.
    pub(crate) fn absorb(&mut self, other: &Network) {
        self.stats.merge(&other.stats);
        self.ledger.merge(&other.ledger);
    }

    /// Admit packets whose injection time has arrived.
    ///
    /// Every instance walks the *full* packet list so `next_pkt` stays
    /// globally synchronized across shards; a packet is acted on only by
    /// the instance owning its source router. Wake punches are emitted
    /// as deferred messages keyed by global packet index, so their
    /// settlement order is the global admission order regardless of
    /// which shard emitted them.
    pub(crate) fn admit(&mut self, packets: &[dozznoc_types::Packet], next_pkt: &mut usize) {
        while *next_pkt < packets.len() && packets[*next_pkt].inject_time.ticks() <= self.now {
            let p = &packets[*next_pkt];
            let home = self.topo.router_of_core(p.src).idx();
            if self.owned.contains(&home) {
                self.stats.packets_injected += 1;
                self.in_flight += p.flit_count() as u64;
                for f in p.flits() {
                    self.inject[p.src.idx()].push_back(f);
                }
                // Power Punch-style wake punching: the packet's XY path
                // is fully determined at injection, so wake signals race
                // ahead of it and gated routers charge up while the
                // packet is still upstream — this is what makes the
                // gating *partially non-blocking* rather than adding a
                // full T-Wakeup per hop. (Routers are only *secured*
                // one hop ahead, at route compute.)
                self.emit_seq = 0;
                if self.cfg.wake_punch {
                    // `path` borrows the precomputed table, so the walk
                    // re-indexes per hop instead of holding the slice
                    // across the emission calls.
                    let hops = self.xy.path(p.src, p.dst).len();
                    for h in 0..hops {
                        let hop = self.xy.path(p.src, p.dst)[h].idx();
                        self.emit(0, *next_pkt as u64, Effect::Punch { router: hop as u32 });
                    }
                } else {
                    // Ablation: only the home router wakes at injection;
                    // downstream routers wait for the one-hop look-ahead.
                    self.emit(
                        0,
                        *next_pkt as u64,
                        Effect::Punch {
                            router: home as u32,
                        },
                    );
                }
            }
            *next_pkt += 1;
        }
    }

    /// Fire every owned router whose local cycle lands on this tick.
    ///
    /// Same-tick entries pop in router-index order; a popped entry that
    /// no longer matches the router's `next_cycle_at` is stale (the
    /// router re-armed, or a wake-up pulled it earlier) and is dropped.
    /// A firing router's re-arm lands strictly in the future, so this
    /// drain terminates.
    pub(crate) fn fire(
        &mut self,
        policy: &mut dyn PowerPolicy,
        ml_overhead: Option<&MlOverhead>,
        tel: &mut dyn Telemetry,
    ) {
        while let Some(&Reverse((t, idx))) = self.sched.peek() {
            let i = idx as usize;
            if self.routers[i].next_cycle_at != t {
                self.sched.pop();
                continue;
            }
            if t > self.now {
                break;
            }
            debug_assert_eq!(t, self.now, "router cycle slipped past the clock");
            self.sched.pop();
            self.emit_seq = 0;
            self.mark_dirty(idx);
            self.step_router(i, policy, ml_overhead, tel);
            let r = &mut self.routers[i];
            r.next_cycle_at = self.now + r.divisor();
            self.sched.push(Reverse((r.next_cycle_at, idx)));
        }
    }

    /// Append a deferred effect with the next emission sequence number.
    fn emit(&mut self, phase: u8, src_key: u64, effect: Effect) {
        let seq = self.emit_seq;
        self.emit_seq += 1;
        self.outbox.push(Msg {
            phase,
            src_key,
            seq,
            effect,
        });
    }

    /// Settle this tick entirely from the local outbox (the sequential
    /// engine's path). Admission emits in ascending packet order and the
    /// fire drain in ascending router order, so the outbox is already in
    /// settlement-key order — asserted, never sorted.
    pub(crate) fn settle_local(&mut self) {
        debug_assert!(
            self.outbox.windows(2).all(|w| w[0].key() <= w[1].key()),
            "sequential outbox must be pre-sorted by settlement key"
        );
        let msgs = std::mem::take(&mut self.outbox);
        for m in &msgs {
            self.apply_msg(m);
        }
        self.outbox = msgs; // keep the allocation for the next tick
        self.outbox.clear();
        self.rebuild_dirty_snaps();
    }

    /// Apply an already-sorted batch of settled messages, then refresh
    /// the snapshots they (or this tick's firings) staled. The sharded
    /// engine calls this with the merged inter-shard batch.
    pub(crate) fn settle_msgs(&mut self, msgs: &[Msg]) {
        debug_assert!(msgs.windows(2).all(|w| w[0].key() <= w[1].key()));
        for m in msgs {
            self.apply_msg(m);
        }
        self.rebuild_dirty_snaps();
    }

    /// Apply one settled message against live state.
    fn apply_msg(&mut self, m: &Msg) {
        match m.effect {
            Effect::Punch { router } => {
                let r = router as usize;
                if self.routers[r].state.is_inactive() {
                    self.begin_wakeup(r);
                }
                self.mark_dirty(router);
            }
            Effect::Secure { router } => {
                self.secure(router as usize);
                self.mark_dirty(router);
            }
            // An unsecure flips no snapshotted field, but the dirty mark
            // keeps the rule simple: every apply target is re-snapped.
            Effect::Unsecure { router } => {
                self.unsecure(router as usize);
                self.mark_dirty(router);
            }
            Effect::Transfer {
                dst,
                port,
                vc,
                flit,
                ready_at,
                entered,
            } => {
                let d = dst as usize;
                self.routers[d].ports[port as usize]
                    .vc_mut(vc as usize)
                    .push(flit, ready_at);
                self.routers[d].buffered_flits += 1;
                self.routers[d].counters.flits_in[port_class(port as usize)] += 1;
                self.in_flight += 1;
                self.net_entry[flit.packet.0 as usize] = entered;
                self.mark_dirty(dst);
            }
        }
    }

    /// Record that router `r`'s snapshot no longer matches live state.
    fn mark_dirty(&mut self, r: u32) {
        if !self.dirty[r as usize] {
            self.dirty[r as usize] = true;
            self.dirty_list.push(r);
        }
    }

    /// Rebuild the snapshot of every dirty router. Only routers that
    /// fired or were settle targets can have changed, so this is the
    /// complete set.
    pub(crate) fn rebuild_dirty_snaps(&mut self) {
        while let Some(r) = self.dirty_list.pop() {
            self.dirty[r as usize] = false;
            self.rebuild_snap(r as usize);
        }
    }

    /// Recompute router `r`'s settled snapshot from its live state.
    pub(crate) fn rebuild_snap(&mut self, r: usize) {
        let router = &self.routers[r];
        self.snap_meta[r] = SnapMeta {
            operational: router.state.is_operational(),
            stall_until: router.stall_until,
            divisor: router.divisor(),
        };
        let n_vcs = self.cfg.vcs_per_port;
        let n_ports = router.ports.len();
        let base = r * n_ports * n_vcs;
        for (p, port) in router.ports.iter().enumerate() {
            for v in 0..n_vcs {
                let vcb = port.vc(v);
                self.snap_vc[base + p * n_vcs + v] = u8::from(vcb.can_accept_new_packet())
                    * SNAP_ACCEPTS_NEW
                    + u8::from(vcb.has_space()) * SNAP_HAS_SPACE;
            }
        }
    }

    /// Rebuild every router's snapshot (construction, and tests that
    /// plant router state by hand).
    pub(crate) fn refresh_all_snaps(&mut self) {
        for r in 0..self.routers.len() {
            self.rebuild_snap(r);
        }
    }

    /// Settled view of `free_vc` on a downstream router's input port.
    fn snap_free_vc(&self, d: usize, port: usize) -> Option<u8> {
        let n_vcs = self.cfg.vcs_per_port;
        let base = (d * self.topo.ports_per_router() + port) * n_vcs;
        (0..n_vcs)
            .find(|&v| self.snap_vc[base + v] & SNAP_ACCEPTS_NEW != 0)
            .map(|v| v as u8)
    }

    /// Settled view of `has_space` on a downstream VC.
    fn snap_has_space(&self, d: usize, port: usize, vc: usize) -> bool {
        let n_vcs = self.cfg.vcs_per_port;
        self.snap_vc[(d * self.topo.ports_per_router() + port) * n_vcs + vc] & SNAP_HAS_SPACE != 0
    }

    /// Earliest live router-cycle deadline, draining stale heap tops on
    /// the way. The heap is never empty (heartbeats are perpetual), so
    /// this is finite.
    pub(crate) fn local_next_event(&mut self) -> u64 {
        while let Some(&Reverse((t, idx))) = self.sched.peek() {
            if self.routers[idx as usize].next_cycle_at == t {
                return t;
            }
            self.sched.pop();
        }
        u64::MAX
    }

    /// Bill the residual residency of every owned router at `now`.
    pub(crate) fn flush_residency(&mut self) {
        let now = SimTime::from_ticks(self.now);
        for i in self.owned.clone() {
            let r = &mut self.routers[i];
            self.ledger
                .bill_residency(r.id, r.state, now.since(r.state_since));
            r.state_since = now;
        }
    }

    /// One local cycle of router `i`.
    fn step_router(
        &mut self,
        i: usize,
        policy: &mut dyn PowerPolicy,
        ml_overhead: Option<&MlOverhead>,
        tel: &mut dyn Telemetry,
    ) {
        match self.routers[i].state {
            PowerState::Inactive => {
                // Always-on heartbeat: account off time, advance epoch.
                let div = self.routers[i].divisor();
                let r = &mut self.routers[i];
                r.counters.off_ticks += div;
                r.total_off_ticks += div;
                r.sample_cycle(false);
            }
            PowerState::Wakeup { until, target } => {
                if self.now >= until.ticks() {
                    self.transition(i, PowerState::Active(target));
                    self.routers[i].idle_streak = 0;
                }
                let secured = self.secured[i] > 0;
                self.routers[i].sample_cycle(secured);
            }
            PowerState::Active(_) => {
                let secured = self.secured[i] > 0;
                self.routers[i].sample_cycle(secured);
                if self.routers[i].operational(self.now) {
                    self.inject_flits(i);
                    debug_assert_eq!(
                        self.routers[i].buffered_flits as usize,
                        self.routers[i].occupancy(),
                        "buffered-flit count drifted from the buffers"
                    );
                    // Nothing buffered means both scans below are
                    // no-ops; most routers are empty most cycles.
                    if self.routers[i].buffered_flits > 0 {
                        self.route_compute(i);
                        self.switch_allocate(i);
                    }
                }
                self.maybe_gate_off(i, policy.gating_enabled());
            }
        }

        // Epoch bookkeeping (all states: idle epochs train the model).
        self.routers[i].cycles_into_epoch += 1;
        if self.routers[i].at_epoch_boundary(self.cfg.epoch_cycles) {
            let obs = self.routers[i].end_epoch(self.now.max(1));
            let mode = policy.select_mode(self.routers[i].id, &obs);
            self.stats.epochs += 1;
            self.stats.mode_selections[mode.rank()] += 1;
            if let Some(oh) = ml_overhead {
                self.ledger.bill_label(self.routers[i].id, oh);
            }
            if self.tel_enabled {
                // Settle residency billing up to this boundary so the
                // delta carries the epoch's static energy (residency is
                // otherwise only billed at state transitions). The
                // epoch's delta excludes the T-Switch this decision may
                // cost below — that bills to the epoch it stalls.
                let now = SimTime::from_ticks(self.now);
                let r = &mut self.routers[i];
                self.ledger
                    .bill_residency(r.id, r.state, now.since(r.state_since));
                r.state_since = now;
                let id = r.id;
                let cur = *self.ledger.router(id);
                let delta = cur.delta_since(&self.energy_prev[i]);
                self.energy_prev[i] = cur;
                if let Some(d) = policy.decision_trace() {
                    tel.on_decision(id, d, mode);
                }
                tel.on_epoch(id, &obs, mode, &delta);
            }
            self.apply_mode(i, mode);
        }
    }

    /// Apply an epoch mode decision: switch an active router (paying
    /// T-Switch) or retarget a gated router's future wake-up.
    fn apply_mode(&mut self, i: usize, mode: Mode) {
        self.routers[i].selected_mode = mode;
        if let PowerState::Active(cur) = self.routers[i].state {
            if cur != mode {
                self.transition(i, PowerState::Active(mode));
                let stall = self.vf.timings(mode).t_switch();
                self.routers[i].stall_until = self.now + stall.ticks();
                let id = self.routers[i].id;
                self.ledger
                    .bill_transition(id, self.transition.mode_switch_j(cur, mode));
            }
        }
    }

    /// Inject up to one flit per local port from the attached cores' NI
    /// queues.
    fn inject_flits(&mut self, i: usize) {
        // Core ids of router i are i·c .. i·c+c (Topology's attachment
        // rule) — plain arithmetic keeps the per-cycle hot path free of
        // the iterator collect this loop used to do.
        let conc = self.topo.concentration();
        let core_base = i * conc;
        for slot in 0..conc {
            let core_idx = core_base + slot;
            let Some(&flit) = self.inject[core_idx].front() else {
                continue;
            };
            let port_idx = Port::Local(slot as u8).index();
            let r = &mut self.routers[i];
            let divisor = r.divisor();
            let port = &mut r.ports[port_idx];
            let target_vc = if flit.kind.is_head() {
                port.free_vc()
            } else {
                (0..port.num_vcs())
                    .find(|&v| port.vc(v).owner() == Some(flit.packet))
                    .map(|v| v as u8)
            };
            let Some(vc) = target_vc else { continue };
            if !port.vc(vc as usize).has_space() {
                continue;
            }
            // The flit spends the router pipeline (minus the ST cycle
            // the switch allocator itself models) before it may move on.
            let ready = self.now
                + 1
                + DomainCycles::new(self.cfg.pipeline_cycles - 1)
                    .to_ticks(divisor)
                    .ticks();
            port.vc_mut(vc as usize).push(flit, ready);
            r.buffered_flits += 1;
            if flit.kind.is_head() {
                self.net_entry[flit.packet.0 as usize] = self.now;
            }
            self.inject[core_idx].pop_front();
            let c = &mut r.counters;
            c.flits_injected += 1;
            c.flits_in[port_class(port_idx)] += 1;
            if flit.kind.is_head() {
                // Single-flit packets are requests, multi-flit are
                // responses (PacketKind::flit_count).
                if flit.kind == FlitKind::Single {
                    c.reqs_sent += 1;
                } else {
                    c.resps_sent += 1;
                }
            }
        }
    }

    /// Compute routes (and secure/wake downstream routers) for every VC
    /// holding an unrouted packet head.
    fn route_compute(&mut self, i: usize) {
        let router_id = self.routers[i].id;
        let n_ports = self.routers[i].ports.len();
        let n_vcs = self.cfg.vcs_per_port;
        for p in 0..n_ports {
            for v in 0..n_vcs {
                let vc = self.routers[i].ports[p].vc(v);
                if vc.owner().is_none() || vc.route().is_some() || vc.is_empty() {
                    continue;
                }
                let dst = vc
                    .peek_ready(u64::MAX)
                    .expect("non-empty VC has a front flit")
                    .dst;
                let out_port = self.xy.output_port(router_id, dst);
                let next_router = self.xy.next_hop(router_id, dst);
                self.routers[i].ports[p].vc_mut(v).set_route(VcRoute {
                    out_port,
                    next_router,
                    out_vc: None,
                });
                if let Some(d) = next_router {
                    self.emit(
                        1,
                        i as u64,
                        Effect::Secure {
                            router: d.idx() as u32,
                        },
                    );
                }
            }
        }
    }

    /// Switch allocation: for every output port pick one ready input VC
    /// (round-robin) and move its head flit.
    ///
    /// One read-only pass over the input VCs buckets every ready routed
    /// head by output port into a scratch buffer owned by the network
    /// (no per-cycle allocation); each output then walks its bucket in
    /// rotation order from its round-robin pointer. Bucketing first is
    /// sound because a granted send only mutates the winning VC and the
    /// *downstream* router, never another input VC's candidacy on this
    /// router.
    fn switch_allocate(&mut self, i: usize) {
        let n_ports = self.routers[i].ports.len();
        let n_vcs = self.cfg.vcs_per_port;
        let n_slots = n_ports * n_vcs;
        // Gather: slot s = p·n_vcs + v, ascending per bucket.
        let mut total = 0usize;
        {
            let router = &self.routers[i];
            let cand = &mut self.sa_cand;
            let cand_len = &mut self.sa_cand_len;
            cand_len[..n_ports].fill(0);
            let mut slot = 0usize;
            for port in router.ports.iter() {
                for v in 0..n_vcs {
                    let vc = port.vc(v);
                    if let Some(route) = vc.route() {
                        if vc.peek_ready(self.now).is_some() {
                            let out = route.out_port.index();
                            cand[out * n_slots + cand_len[out]] = slot;
                            cand_len[out] += 1;
                            total += 1;
                        }
                    }
                    slot += 1;
                }
            }
        }
        if total == 0 {
            return;
        }
        // Stall gauges are per router *cycle*, not per output port: a
        // 5-port router must book at most one stall cycle per cycle.
        let mut credit_stalled = false;
        let mut contended = false;
        for out in 0..n_ports {
            let n_candidates = self.sa_cand_len[out];
            if n_candidates == 0 {
                continue;
            }
            // Round-robin among candidates, starting after the last
            // winner for this output: the bucket is ascending, so the
            // rotation order is everything at or past `start`, then the
            // wrap-around — no sort needed. A candidate that cannot
            // actually send (downstream gated, no free VC, no space)
            // must not hold the grant — skipping it is what keeps a
            // blocked head from starving every other packet on this
            // output.
            let start = self.routers[i].sa_rr[out];
            let base = out * n_slots;
            let bucket = &self.sa_cand[base..base + n_candidates];
            let pivot = bucket.partition_point(|&s| s < start);
            let mut sent = false;
            for j in 0..n_candidates {
                let k = pivot + j;
                let k = if k < n_candidates {
                    k
                } else {
                    k - n_candidates
                };
                let s = self.sa_cand[base + k];
                if self.try_send(i, s / n_vcs, s % n_vcs) {
                    self.routers[i].sa_rr[out] = if s + 1 == n_slots { 0 } else { s + 1 };
                    sent = true;
                    break;
                }
            }
            if !sent {
                // Every candidate was blocked downstream.
                credit_stalled = true;
            } else if n_candidates > 1 {
                // Losers of a granted output stalled this cycle.
                contended = true;
            }
        }
        let c = &mut self.routers[i].counters;
        c.credit_stall_cycles += credit_stalled as u64;
        c.stall_cycles += contended as u64;
    }

    /// Try to move the head flit of `(port, vc)` through the switch.
    /// Returns false when blocked on downstream state or space.
    fn try_send(&mut self, i: usize, port: usize, vc: usize) -> bool {
        let route = *self.routers[i].ports[port]
            .vc(vc)
            .route()
            .expect("routed VC");
        match route.out_port {
            Port::Local(_) => {
                self.eject(i, port, vc, route.out_port);
                true
            }
            Port::Dir(dir) => {
                let d = route
                    .next_router
                    .expect("direction routes have a downstream router")
                    .idx();
                // Every read of the downstream router goes through its
                // settled snapshot: identical no matter which shard owns
                // it or whether it fired earlier this tick. The checks
                // stay *exact* at apply time because each in-port has a
                // single upstream sender and each output port grants at
                // most once per tick — at most one flit lands per
                // (router, in-port) per settlement, so space seen at the
                // last settle cannot be stolen in between.
                let snap = self.snap_meta[d];
                if !snap.operational || self.now < snap.stall_until {
                    return false;
                }
                let down_port = Port::Dir(dir.opposite()).index();
                let flit_is_head = self.routers[i].ports[port]
                    .vc(vc)
                    .peek_ready(self.now)
                    .expect("caller checked readiness")
                    .kind
                    .is_head();
                // Pick / reuse the downstream VC.
                let down_vc = if flit_is_head {
                    match self.snap_free_vc(d, down_port) {
                        Some(v) => {
                            self.routers[i].ports[port].vc_mut(vc).set_out_vc(v);
                            v
                        }
                        None => return false,
                    }
                } else {
                    match route.out_vc {
                        Some(v) => v,
                        None => return false, // head not yet sent
                    }
                };
                if !self.snap_has_space(d, down_port, down_vc as usize) {
                    return false;
                }
                // Grant: pop here, hand the flit over as a settled
                // transfer (applied end-of-tick at the downstream
                // router's owner).
                let flit = self.routers[i].ports[port].vc_mut(vc).pop();
                let mode = match self.routers[i].state {
                    PowerState::Active(m) => m,
                    _ => unreachable!("only active routers allocate"),
                };
                let ready = self.now
                    + self.cfg.lookahead_ticks
                    + DomainCycles::new(self.cfg.pipeline_cycles - 1)
                        .to_ticks(snap.divisor)
                        .ticks();
                self.routers[i].buffered_flits -= 1;
                let out_class = port_class(route.out_port.index());
                {
                    let c = &mut self.routers[i].counters;
                    c.flits_out[out_class] += 1;
                    c.class_busy_cycles[out_class] += 1;
                    c.hops += 1;
                }
                self.ledger.bill_hop(self.routers[i].id, mode);
                // The flit leaves this instance's accounting now and
                // enters the receiver's at apply (net zero within one
                // instance; cross-shard it migrates).
                self.in_flight -= 1;
                let entered = self.net_entry[flit.packet.0 as usize];
                self.emit(
                    1,
                    i as u64,
                    Effect::Transfer {
                        dst: d as u32,
                        port: down_port as u8,
                        vc: down_vc,
                        flit,
                        ready_at: ready,
                        entered,
                    },
                );
                if flit.kind.is_tail() {
                    self.emit(1, i as u64, Effect::Unsecure { router: d as u32 });
                }
                true
            }
        }
    }

    /// Eject the head flit of `(port, vc)` to the attached core.
    fn eject(&mut self, i: usize, port: usize, vc: usize, out_port: Port) {
        let flit = self.routers[i].ports[port].vc_mut(vc).pop();
        self.routers[i].buffered_flits -= 1;
        let mode = match self.routers[i].state {
            PowerState::Active(m) => m,
            _ => unreachable!("only active routers eject"),
        };
        let out_class = port_class(out_port.index());
        {
            let c = &mut self.routers[i].counters;
            c.flits_ejected += 1;
            c.flits_out[out_class] += 1;
            c.class_busy_cycles[out_class] += 1;
            c.hops += 1;
        }
        // Router + ejection-link traversal costs one hop charge too.
        self.ledger.bill_hop(self.routers[i].id, mode);
        self.in_flight -= 1;
        self.stats.flits_delivered += 1;
        if flit.kind.is_tail() {
            let c = &mut self.routers[i].counters;
            if flit.kind == FlitKind::Single {
                c.reqs_recv += 1;
            } else {
                c.resps_recv += 1;
            }
            self.stats.packets_delivered += 1;
            let latency = self.now.saturating_sub(flit.inject_time.ticks());
            self.stats.latency_sum_ticks += latency as u128;
            self.stats.latency_max_ticks = self.stats.latency_max_ticks.max(latency);
            let entered = self.net_entry[flit.packet.0 as usize];
            debug_assert_ne!(entered, u64::MAX, "delivered before entering?");
            let net_latency = self.now.saturating_sub(entered);
            self.stats.net_latency_sum_ticks += net_latency as u128;
            self.stats.net_latency_max_ticks = self.stats.net_latency_max_ticks.max(net_latency);
            self.stats.net_latency_hist.record(net_latency);
            self.stats.last_delivery = SimTime::from_ticks(self.now);
        }
    }

    /// Gate the router off when every Fig. 3(a) condition holds.
    fn maybe_gate_off(&mut self, i: usize, gating_enabled: bool) {
        if !gating_enabled {
            return;
        }
        let r = &self.routers[i];
        debug_assert_eq!(r.buffered_flits == 0, r.buffers_empty());
        if r.idle_streak < self.cfg.t_idle
            || r.buffered_flits > 0
            || self.secured[i] > 0
            || self.now < r.stall_until
        {
            return;
        }
        // No pending local injection either (it would re-wake instantly).
        let router_id = r.id;
        let has_pending = self
            .topo
            .cores_of_router(router_id)
            .any(|c| !self.inject[c.idx()].is_empty());
        if has_pending {
            return;
        }
        self.transition(i, PowerState::Inactive);
        let r = &mut self.routers[i];
        r.off_since = Some(SimTime::from_ticks(self.now));
        r.lifetime_gate_offs += 1;
        self.ledger.note_gate_off(router_id);
    }

    /// Secure router `d` as a downstream router; wake it if gated.
    fn secure(&mut self, d: usize) {
        self.secured[d] += 1;
        if self.routers[d].state.is_inactive() {
            self.begin_wakeup(d);
        }
    }

    /// Release one downstream-secure reference on router `d`.
    ///
    /// An unbalanced secure/unsecure pairing is a flow-control
    /// accounting bug that would wedge gating forever; instead of
    /// silently saturating, it is counted in
    /// [`RunStats::secure_underflows`] and logged (and still panics
    /// under debug assertions).
    fn unsecure(&mut self, d: usize) {
        match self.secured[d].checked_sub(1) {
            Some(n) => self.secured[d] = n,
            None => {
                self.stats.secure_underflows += 1;
                if self.stats.secure_underflows == 1 {
                    eprintln!(
                        "dozznoc-noc: invariant violation at tick {}: unbalanced unsecure \
                         of router {d} (counted in RunStats::secure_underflows)",
                        self.now
                    );
                }
                debug_assert!(false, "unbalanced unsecure of router {d}");
            }
        }
    }

    /// Begin waking a gated router into its selected mode.
    fn begin_wakeup(&mut self, i: usize) {
        debug_assert!(self.routers[i].state.is_inactive());
        let target = self.routers[i].selected_mode;
        let t_wakeup = self.vf.timings(target).t_wakeup();
        let until = SimTime::from_ticks(self.now + t_wakeup.ticks());
        // T-Breakeven accounting.
        if let Some(off_since) = self.routers[i].off_since.take() {
            let off_for = self.now.saturating_sub(off_since.ticks());
            if off_for < self.vf.timings(target).t_breakeven().ticks() {
                self.ledger.note_breakeven_violation(self.routers[i].id);
            }
        }
        self.transition(i, PowerState::Wakeup { target, until });
        self.routers[i].lifetime_wakeups += 1;
        let id = self.routers[i].id;
        self.ledger.note_wakeup(id);
        self.ledger
            .bill_transition(id, self.transition.wakeup_j(target));
        // The heartbeat must check `until` promptly. Pulling the cycle
        // earlier strands the old heap entry (discarded as stale on
        // pop), so the new deadline needs its own entry.
        let r = &mut self.routers[i];
        let pulled = self.now + r.divisor();
        if pulled < r.next_cycle_at {
            r.next_cycle_at = pulled;
            self.sched.push(Reverse((pulled, i as u32)));
        }
    }

    /// Change power state, billing the residency of the outgoing state.
    fn transition(&mut self, i: usize, new_state: PowerState) {
        let now = SimTime::from_ticks(self.now);
        let r = &mut self.routers[i];
        self.ledger
            .bill_residency(r.id, r.state, now.since(r.state_since));
        if self.tel_enabled {
            let kind = match (r.state, new_state) {
                (_, PowerState::Inactive) => Some(TransitionKind::GateOff),
                (_, PowerState::Wakeup { target, .. }) => {
                    Some(TransitionKind::WakeupStart { target })
                }
                (PowerState::Wakeup { .. }, PowerState::Active(mode)) => {
                    Some(TransitionKind::WakeupDone { mode })
                }
                (PowerState::Active(from), PowerState::Active(to)) if from != to => {
                    Some(TransitionKind::ModeSwitch { from, to })
                }
                _ => None,
            };
            if let Some(kind) = kind {
                self.events.push(TransitionEvent {
                    at: now,
                    router: r.id,
                    kind,
                });
            }
        }
        r.state = new_state;
        r.state_since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AlwaysMode;
    use dozznoc_traffic::trace::packet;
    use dozznoc_types::PacketKind;

    fn mesh_cfg() -> NocConfig {
        NocConfig::paper(Topology::mesh8x8())
    }

    fn one_packet_trace(src: u16, dst: u16, kind: PacketKind) -> Trace {
        Trace::new("unit", 64, vec![packet(src, dst, kind, 1.0)])
    }

    /// A single packet injected *after* the first epoch boundary
    /// (≈222 ns at M7), so an `AlwaysMode` policy's choice has already
    /// taken effect when the packet traverses.
    fn late_packet_trace(src: u16, dst: u16, kind: PacketKind) -> Trace {
        Trace::new("late", 64, vec![packet(src, dst, kind, 400.0)])
    }

    fn run(trace: &Trace, policy: &mut dyn PowerPolicy) -> RunReport {
        Network::new(mesh_cfg())
            .run(trace, policy)
            .expect("run completes")
    }

    #[test]
    fn single_request_delivers() {
        let t = one_packet_trace(0, 63, PacketKind::Request);
        let r = run(&t, &mut AlwaysMode::new(Mode::M7));
        assert_eq!(r.stats.packets_delivered, 1);
        assert_eq!(r.stats.flits_delivered, 1);
        assert!(r.stats.avg_latency_ns() > 0.0);
    }

    #[test]
    fn response_delivers_all_flits() {
        let t = one_packet_trace(5, 40, PacketKind::Response);
        let r = run(&t, &mut AlwaysMode::new(Mode::M7));
        assert_eq!(r.stats.packets_delivered, 1);
        assert_eq!(r.stats.flits_delivered, 5);
    }

    #[test]
    fn latency_scales_with_distance() {
        let near = run(
            &one_packet_trace(0, 1, PacketKind::Request),
            &mut AlwaysMode::new(Mode::M7),
        );
        let far = run(
            &one_packet_trace(0, 63, PacketKind::Request),
            &mut AlwaysMode::new(Mode::M7),
        );
        assert!(
            far.stats.avg_latency_ns() > near.stats.avg_latency_ns(),
            "far {} ns vs near {} ns",
            far.stats.avg_latency_ns(),
            near.stats.avg_latency_ns()
        );
    }

    #[test]
    fn lower_mode_is_slower() {
        let t = late_packet_trace(0, 63, PacketKind::Response);
        let fast = run(&t, &mut AlwaysMode::new(Mode::M7));
        let slow = run(&t, &mut AlwaysMode::new(Mode::M3));
        assert!(
            slow.stats.avg_latency_ns() > fast.stats.avg_latency_ns() * 1.5,
            "slow {} ns vs fast {} ns",
            slow.stats.avg_latency_ns(),
            fast.stats.avg_latency_ns()
        );
    }

    #[test]
    fn lower_mode_uses_less_dynamic_energy() {
        let t = late_packet_trace(0, 63, PacketKind::Response);
        let fast = run(&t, &mut AlwaysMode::new(Mode::M7));
        let slow = run(&t, &mut AlwaysMode::new(Mode::M3));
        assert!(slow.energy.dynamic_j < fast.energy.dynamic_j);
        // Same flits, same hops — only the per-hop cost differs.
        assert_eq!(slow.energy.flit_hops, fast.energy.flit_hops);
    }

    #[test]
    fn hop_count_matches_route_length() {
        // 0 → 7 on the top row: 7 link hops + 1 ejection = 8 hop charges.
        let t = one_packet_trace(0, 7, PacketKind::Request);
        let r = run(&t, &mut AlwaysMode::new(Mode::M7));
        assert_eq!(r.energy.flit_hops, 8);
    }

    #[test]
    fn gating_saves_static_energy_on_idle_network() {
        let t = one_packet_trace(0, 1, PacketKind::Request);
        let always_on = run(&t, &mut AlwaysMode::new(Mode::M7));
        let gated = run(&t, &mut AlwaysMode::new(Mode::M7).with_gating());
        assert!(
            gated.energy.static_j < always_on.energy.static_j * 0.7,
            "gated {} J vs always-on {} J",
            gated.energy.static_j,
            always_on.energy.static_j
        );
        assert!(gated.energy.gate_offs > 0);
        assert!(gated.energy.off_fraction() > 0.3);
        // Delivery still happens.
        assert_eq!(gated.stats.packets_delivered, 1);
    }

    #[test]
    fn gated_run_pays_wakeup_latency() {
        // Inject a second packet long after the first so routers have
        // gated off; its latency must absorb wake-ups.
        let t = Trace::new(
            "two",
            64,
            vec![
                packet(0, 9, PacketKind::Request, 1.0),
                packet(0, 9, PacketKind::Request, 800.0),
            ],
        );
        let on = run(&t, &mut AlwaysMode::new(Mode::M7));
        let gated = run(&t, &mut AlwaysMode::new(Mode::M7).with_gating());
        assert_eq!(gated.stats.packets_delivered, 2);
        assert!(gated.energy.wakeups > 0);
        assert!(gated.stats.avg_latency_ns() > on.stats.avg_latency_ns());
    }

    #[test]
    fn in_flight_conservation_under_load() {
        // A burst of packets from many sources: everything injected must
        // be delivered.
        let mut pkts = Vec::new();
        for s in 0..32u16 {
            for k in 0..4 {
                pkts.push(packet(
                    s,
                    63 - s,
                    PacketKind::Response,
                    1.0 + k as f64 * 3.0,
                ));
            }
        }
        let t = Trace::new("burst", 64, pkts);
        let r = run(&t, &mut AlwaysMode::new(Mode::M7));
        assert_eq!(r.stats.packets_delivered, 128);
        assert_eq!(r.stats.flits_delivered, 128 * 5);
    }

    #[test]
    fn gating_preserves_delivery_under_load() {
        let mut pkts = Vec::new();
        for s in 0..64u16 {
            for k in 0..3 {
                pkts.push(packet(
                    s,
                    (s + 17) % 64,
                    PacketKind::Request,
                    1.0 + k as f64 * 400.0,
                ));
            }
        }
        let t = Trace::new("gated-load", 64, pkts);
        let r = run(&t, &mut AlwaysMode::new(Mode::M3).with_gating());
        assert_eq!(r.stats.packets_delivered, 192);
    }

    #[test]
    fn cmesh_topology_works() {
        let t = Trace::new(
            "cmesh",
            64,
            vec![
                packet(0, 63, PacketKind::Response, 1.0),
                packet(13, 2, PacketKind::Request, 2.0),
            ],
        );
        let r = Network::new(NocConfig::paper(Topology::cmesh4x4()))
            .run(&t, &mut AlwaysMode::new(Mode::M7))
            .expect("cmesh run completes");
        assert_eq!(r.stats.packets_delivered, 2);
    }

    #[test]
    fn epochs_fire_and_count_modes() {
        // A trace long enough to cross several epoch boundaries.
        let pkts = (0..40)
            .map(|k| packet(0, 5, PacketKind::Request, 1.0 + k as f64 * 50.0))
            .collect();
        let t = Trace::new("epochs", 64, pkts);
        let r = run(&t, &mut AlwaysMode::new(Mode::M4));
        assert!(r.stats.epochs > 0);
        // AlwaysMode(M4) selects M4 every epoch.
        assert_eq!(r.stats.mode_selections[Mode::M4.rank()], r.stats.epochs);
        let d = r.stats.mode_distribution();
        assert!((d[Mode::M4.rank()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn static_energy_scales_with_run_length() {
        let short = run(
            &one_packet_trace(0, 1, PacketKind::Request),
            &mut AlwaysMode::new(Mode::M7),
        );
        let long_trace = Trace::new(
            "long",
            64,
            vec![
                packet(0, 1, PacketKind::Request, 1.0),
                packet(0, 1, PacketKind::Request, 2000.0),
            ],
        );
        let long = run(&long_trace, &mut AlwaysMode::new(Mode::M7));
        assert!(long.energy.static_j > short.energy.static_j * 10.0);
    }

    /// A head flit of packet `id` from `src` to `dst`.
    fn head_flit(id: u64, src: u16, dst: u16) -> Flit {
        dozznoc_types::Packet {
            id: dozznoc_types::PacketId(id),
            src: dozznoc_types::CoreId(src),
            dst: dozznoc_types::CoreId(dst),
            kind: PacketKind::Request,
            inject_time: SimTime::ZERO,
        }
        .flits()
        .next()
        .expect("packet has a head flit")
    }

    #[test]
    fn stalls_count_at_most_once_per_router_cycle() {
        use dozznoc_topology::Direction;
        // Router 9 (coord (1,1)) holds two routed, ready head flits
        // aimed at *different* output ports, both blocked because the
        // downstream routers are gated. The old accounting booked one
        // credit-stall per output port (2 here, up to 5 on a mesh
        // router) in a single cycle; it must book exactly one.
        let mut net = Network::new(mesh_cfg());
        let i = 9;
        net.routers[10].state = PowerState::Inactive; // east neighbor
        net.routers[8].state = PowerState::Inactive; // west neighbor
        net.refresh_all_snaps(); // try_send reads the settled snapshots
        let east = dozznoc_topology::Port::Dir(Direction::East);
        let west = dozznoc_topology::Port::Dir(Direction::West);
        // Local input VC 0 → east; north input VC 0 → west.
        let local = dozznoc_topology::Port::Local(0).index();
        net.routers[i].ports[local]
            .vc_mut(0)
            .push(head_flit(0, 9, 15), 0);
        net.routers[i].ports[local].vc_mut(0).set_route(VcRoute {
            out_port: east,
            next_router: Some(RouterId(10)),
            out_vc: None,
        });
        let north = dozznoc_topology::Port::Dir(Direction::North).index();
        net.routers[i].ports[north]
            .vc_mut(0)
            .push(head_flit(1, 9, 8), 0);
        net.routers[i].ports[north].vc_mut(0).set_route(VcRoute {
            out_port: west,
            next_router: Some(RouterId(8)),
            out_vc: None,
        });
        net.switch_allocate(i);
        assert_eq!(net.routers[i].counters.credit_stall_cycles, 1);
        assert_eq!(net.routers[i].counters.stall_cycles, 0);
    }

    #[test]
    fn unbalanced_unsecure_is_counted_not_saturated() {
        let mut net = Network::new(mesh_cfg());
        if cfg!(debug_assertions) {
            // Debug builds still fail fast.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| net.unsecure(3)));
            assert!(r.is_err(), "debug build must panic on unbalanced unsecure");
            assert_eq!(net.stats.secure_underflows, 1);
        } else {
            // Release builds count the violation instead of wedging
            // gating with a silently-saturated reference count.
            net.unsecure(3);
            net.unsecure(3);
            assert_eq!(net.stats.secure_underflows, 2);
            assert_eq!(net.secured[3], 0);
        }
        // Balanced pairs never trip the counter.
        let mut ok = Network::new(mesh_cfg());
        ok.secure(4);
        ok.unsecure(4);
        assert_eq!(ok.stats.secure_underflows, 0);
    }

    #[test]
    fn wakeup_pull_reschedules_earlier_than_standing_heap_entry() {
        // A gated router keeps a slow heartbeat; its standing heap entry
        // can sit far in the future when a wake punch arrives. The wake
        // must pull the next cycle to `now + divisor` and push a fresh
        // entry for it — the stranded entry is discarded as stale later.
        let mut net = Network::new(mesh_cfg());
        let i = 12;
        net.now = 360;
        net.routers[i].state = PowerState::Inactive;
        net.routers[i].next_cycle_at = 360 + 1_000;
        net.sched.push(Reverse((360 + 1_000, i as u32)));
        net.begin_wakeup(i);
        let pulled = 360 + net.routers[i].divisor();
        assert!(pulled < 360 + 1_000);
        assert_eq!(net.routers[i].next_cycle_at, pulled);
        assert!(
            net.sched
                .iter()
                .any(|&Reverse((t, idx))| idx == i as u32 && t == pulled),
            "pulled-up deadline must have its own heap entry"
        );
        // The stranded entry no longer matches `next_cycle_at`, which is
        // exactly the staleness test the fire loop applies on pop.
        assert_ne!(net.routers[i].next_cycle_at, 360 + 1_000);

        // When the heartbeat is already due sooner than the pull would
        // land, the wake must NOT re-arm (that would push the cycle
        // *later*) and needs no new entry.
        let mut soon = Network::new(mesh_cfg());
        let j = 30;
        soon.now = 360;
        soon.routers[j].state = PowerState::Inactive;
        soon.routers[j].next_cycle_at = 361;
        let before = soon.sched.len();
        soon.begin_wakeup(j);
        assert_eq!(soon.routers[j].next_cycle_at, 361);
        assert_eq!(soon.sched.len(), before);
    }

    #[test]
    fn same_tick_heap_entries_pop_in_router_index_order() {
        // `Reverse<(tick, index)>` orders same-tick entries by router
        // index, so the heap drain visits routers exactly like the old
        // linear scan did — this is what keeps run reports bit-identical.
        let mut net = Network::new(mesh_cfg());
        let n = net.routers.len() as u32;
        // Re-arm router 3 as if it had already fired: its tick-0 entry
        // is now stale and the fire loop's check must say so.
        net.routers[3].next_cycle_at = 7;
        let mut fired = Vec::new();
        while let Some(Reverse((t, idx))) = net.sched.pop() {
            if net.routers[idx as usize].next_cycle_at != t {
                assert_eq!(idx, 3, "only the re-armed router may be stale");
                continue;
            }
            assert_eq!(t, 0);
            fired.push(idx);
        }
        let expected: Vec<u32> = (0..n).filter(|&i| i != 3).collect();
        assert_eq!(fired, expected);
    }

    #[test]
    fn injection_exactly_at_max_ticks_is_admitted_before_livelock_abort() {
        // A packet landing on the very last permitted tick is the edge
        // the event loop has to get right: time jumps to exactly
        // `max_ticks` (the "time must advance" invariant still holds),
        // the packet is admitted, routers fire once, and only then does
        // the tick budget abort the run — reporting that flit in flight
        // rather than silently dropping it.
        let mut cfg = mesh_cfg();
        cfg.max_ticks = 180; // == ceil(10 ns × 18 ticks/ns)
        let t = Trace::new("edge", 64, vec![packet(0, 63, PacketKind::Request, 10.0)]);
        let err = Network::new(cfg)
            .run(&t, &mut AlwaysMode::new(Mode::M7))
            .expect_err("a cross-mesh packet cannot drain in zero remaining ticks");
        assert_eq!(err, SimError::Livelock { in_flight: 1 });
    }

    #[test]
    fn trace_core_count_must_match() {
        let t = Trace::new("small", 4, vec![packet(0, 1, PacketKind::Request, 0.0)]);
        let net = Network::new(mesh_cfg());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = net.run(&t, &mut AlwaysMode::new(Mode::M7));
        }));
        assert!(result.is_err());
    }
}
