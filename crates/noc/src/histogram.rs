//! Log-bucketed latency histogram with percentile estimation.
//!
//! Mean latency hides tails, and DozzNoC's costs (T-Wakeup stalls,
//! low-mode epochs) live exactly in the tail. The histogram buckets
//! latencies by powers of two of base ticks — 1 tick ≈ 55.6 ps up to
//! ≈ 6 µs — which keeps recording O(1) and percentile error below the
//! bucket ratio (2×), plenty for P50/P95/P99 reporting.

use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets (bucket `b` covers `[2^b, 2^(b+1))`
/// ticks; the last bucket absorbs everything from 2³⁶ ticks ≈ 3.8 ms
/// up).
pub const BUCKETS: usize = 37;

/// A histogram over latencies in base ticks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one latency (ticks).
    ///
    /// Bucket `b` holds latencies in `[2^b, 2^(b+1))` — `floor(log2)`
    /// bucketing, so an exact power of two lands in its own bucket and
    /// a 1-tick latency lands in bucket 0. Zero latencies (impossible
    /// for real flits, which always spend ≥ 1 tick in flight) share
    /// bucket 0.
    #[inline]
    pub fn record(&mut self, ticks: u64) {
        let bucket = (63 - ticks.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Inclusive upper bound (ticks) of the bucket containing the
    /// `p`-quantile, `p ∈ [0, 1]`: bucket `b` covers `[2^b, 2^(b+1))`,
    /// so this reports `2^(b+1) − 1`. A population of exact 1-tick
    /// samples (bucket 0) therefore reports exactly 1. Returns 0 for an
    /// empty histogram.
    pub fn percentile_ticks(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        if self.total == 0 {
            return 0;
        }
        let rank = (p * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (bucket + 1)) - 1;
            }
        }
        (1u64 << BUCKETS) - 1
    }

    /// Percentile in nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        self.percentile_ticks(p) as f64 / dozznoc_types::TICKS_PER_NS as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Non-empty `(bucket inclusive upper bound in ns, count)` pairs,
    /// for reports. Bucket `b` covers `[2^b, 2^(b+1))` ticks.
    pub fn buckets_ns(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let hi = (1u64 << (b + 1)) - 1;
                (hi as f64 / dozznoc_types::TICKS_PER_NS as f64, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentile_ticks(0.5), 0);
        assert!(h.buckets_ns().is_empty());
    }

    #[test]
    fn percentiles_bound_samples() {
        let mut h = LatencyHistogram::default();
        for t in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 100_000] {
            h.record(t);
        }
        assert_eq!(h.total(), 10);
        // P50 bucket bound must cover the median sample (160) within 2×.
        let p50 = h.percentile_ticks(0.5);
        assert!((160..=320).contains(&p50), "{p50}");
        // P100 covers the max.
        assert!(h.percentile_ticks(1.0) >= 100_000);
        // P10 is near the small end.
        assert!(h.percentile_ticks(0.1) <= 32);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::default();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 1_000_000);
        }
        let mut prev = 0;
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.percentile_ticks(p);
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(100);
        b.record(200);
        b.record(100_000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!(a.percentile_ticks(1.0) >= 100_000);
    }

    #[test]
    fn zero_and_huge_latencies_are_representable() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.total(), 2);
        // Zero shares bucket 0 with the 1-tick latencies.
        assert_eq!(h.percentile_ticks(0.25), 1);
        assert_eq!(h.percentile_ticks(1.0), (1u64 << BUCKETS) - 1);
    }

    #[test]
    fn uniform_one_tick_population_reports_p50_of_one() {
        // Regression: the old `64 - leading_zeros` bucketing put a
        // 1-tick latency in bucket 1, so percentiles reported 2 ticks
        // for a population made entirely of exact 1-tick samples.
        let mut h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(1);
        }
        assert_eq!(h.percentile_ticks(0.5), 1);
        assert_eq!(h.percentile_ticks(0.99), 1);
        assert_eq!(h.percentile_ticks(1.0), 1);
    }

    #[test]
    fn powers_of_two_land_in_their_own_bucket() {
        // floor(log2) bucketing: 2^b opens bucket b, 2^b − 1 closes
        // bucket b−1; the percentile bound of a population of exact
        // 2^b samples is the inclusive top of bucket b.
        for b in 1..10u32 {
            let mut h = LatencyHistogram::default();
            h.record(1u64 << b);
            assert_eq!(h.percentile_ticks(1.0), (1u64 << (b + 1)) - 1, "2^{b}");
            let mut lo = LatencyHistogram::default();
            lo.record((1u64 << b) - 1);
            assert_eq!(lo.percentile_ticks(1.0), (1u64 << b) - 1, "2^{b}-1");
        }
    }

    #[test]
    fn ns_conversion() {
        let mut h = LatencyHistogram::default();
        h.record(18 * 100); // 100 ns → bucket 2048 ticks ≈ 113.8 ns
        let p = h.percentile_ns(1.0);
        assert!((100.0..230.0).contains(&p), "{p}");
    }
}
