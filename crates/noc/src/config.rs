//! Simulator configuration.

use serde::{Deserialize, Serialize};

use dozznoc_topology::{DimOrder, Topology};
use dozznoc_types::{ConfigError, MIN_EPOCH_CYCLES};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Network topology.
    pub topology: Topology,
    /// Virtual channels per input port.
    pub vcs_per_port: usize,
    /// Flit capacity of one VC buffer.
    pub vc_depth: usize,
    /// Epoch length in router-local cycles (paper default: 500; the
    /// trade-off study sweeps 100–1000).
    pub epoch_cycles: u64,
    /// Consecutive idle cycles required before a router may gate off
    /// (paper: T-Idle = 4, following Catnap).
    pub t_idle: u64,
    /// Router pipeline depth in local cycles (BW/RC → VA/SA → ST): a
    /// flit spends this many cycles in a router before its link
    /// traversal. Classic input-buffered routers are 3–4 stages.
    pub pipeline_cycles: u64,
    /// Dimension order of the DOR routing function (paper: XY).
    pub routing: DimOrder,
    /// Power Punch-style wake punching: at injection, wake signals race
    /// down the packet's entire XY path so gated routers charge while
    /// the packet is still upstream. Disabling it (ablation) leaves only
    /// the one-hop look-ahead wake at route compute, so packets pay
    /// nearly a full T-Wakeup per gated hop.
    pub wake_punch: bool,
    /// Hard safety limit on simulated ticks (guards against livelock in
    /// buggy policies; generous: ~20× a typical trace horizon).
    pub max_ticks: u64,
    /// Link traversal latency in base ticks: a flit handed downstream at
    /// tick *t* is first visible there at `t + lookahead_ticks`. This is
    /// also the conservative lookahead the sharded engine's time-window
    /// barrier is built on — cross-shard traffic emitted inside a window
    /// cannot take effect before the next one — so it must be ≥ 1 (see
    /// [`NocConfig::try_with_lookahead_ticks`]).
    pub lookahead_ticks: u64,
}

impl NocConfig {
    /// The paper's configuration for a topology: 4 VCs × 4 flits,
    /// epoch 500, T-Idle 4.
    pub fn paper(topology: Topology) -> Self {
        NocConfig {
            topology,
            vcs_per_port: 4,
            vc_depth: 4,
            epoch_cycles: 500,
            t_idle: 4,
            pipeline_cycles: 3,
            routing: DimOrder::Xy,
            wake_punch: true,
            max_ticks: 40_000_000, // ≈ 2.2 ms of simulated time
            lookahead_ticks: 1,
        }
    }

    /// Override the link latency (shard-barrier lookahead). Rejects
    /// zero: a flit must spend at least one base tick on the wire, and
    /// the sharded engine derives its conservative barrier window from
    /// this latency.
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_lookahead_ticks(mut self, lookahead_ticks: u64) -> Result<Self, ConfigError> {
        if lookahead_ticks == 0 {
            return Err(ConfigError::ZeroLookahead);
        }
        self.lookahead_ticks = lookahead_ticks;
        Ok(self)
    }

    /// Override the epoch size (the §IV-B sweep). Rejects epochs
    /// shorter than [`MIN_EPOCH_CYCLES`] local cycles.
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_epoch_cycles(mut self, epoch_cycles: u64) -> Result<Self, ConfigError> {
        if epoch_cycles < MIN_EPOCH_CYCLES {
            return Err(ConfigError::DegenerateEpoch { epoch_cycles });
        }
        self.epoch_cycles = epoch_cycles;
        Ok(self)
    }

    /// Override the router pipeline depth. Rejects zero: the ready-tick
    /// arithmetic books `pipeline_cycles - 1` extra cycles per buffered
    /// flit, so a zero depth would underflow the tick math.
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_pipeline_cycles(mut self, pipeline_cycles: u64) -> Result<Self, ConfigError> {
        if pipeline_cycles == 0 {
            return Err(ConfigError::DegeneratePipeline { pipeline_cycles });
        }
        self.pipeline_cycles = pipeline_cycles;
        Ok(self)
    }

    /// Override T-Idle.
    #[must_use]
    pub fn with_t_idle(mut self, t_idle: u64) -> Self {
        self.t_idle = t_idle;
        self
    }

    /// Use a different DOR dimension order (routing-sensitivity
    /// experiments).
    #[must_use]
    pub fn with_routing(mut self, routing: DimOrder) -> Self {
        self.routing = routing;
        self
    }

    /// Disable Power Punch-style path wake punching (ablation).
    pub fn without_wake_punch(mut self) -> Self {
        self.wake_punch = false;
        self
    }

    /// Total flit capacity of one router's input buffers (the IBU
    /// denominator: the paper's "theoretical maximum").
    pub fn buffer_capacity(&self) -> usize {
        self.topology.ports_per_router() * self.vcs_per_port * self.vc_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = NocConfig::paper(Topology::mesh8x8());
        assert_eq!(c.vcs_per_port, 4);
        assert_eq!(c.vc_depth, 4);
        assert_eq!(c.epoch_cycles, 500);
        assert_eq!(c.t_idle, 4);
    }

    #[test]
    fn buffer_capacity_scales_with_ports() {
        let mesh = NocConfig::paper(Topology::mesh8x8());
        assert_eq!(mesh.buffer_capacity(), 5 * 4 * 4);
        let cmesh = NocConfig::paper(Topology::cmesh4x4());
        assert_eq!(cmesh.buffer_capacity(), 8 * 4 * 4);
    }

    #[test]
    fn builders() {
        let c = NocConfig::paper(Topology::mesh8x8())
            .try_with_epoch_cycles(100)
            .expect("epoch 100 is valid")
            .with_t_idle(8);
        assert_eq!(c.epoch_cycles, 100);
        assert_eq!(c.t_idle, 8);
    }

    #[test]
    fn zero_lookahead_rejected() {
        let err = NocConfig::paper(Topology::mesh8x8())
            .try_with_lookahead_ticks(0)
            .expect_err("zero lookahead must be rejected");
        assert_eq!(err, dozznoc_types::ConfigError::ZeroLookahead);
        // One tick (the paper default) is the boundary and is fine.
        let c = NocConfig::paper(Topology::mesh8x8())
            .try_with_lookahead_ticks(1)
            .expect("lookahead 1 is valid");
        assert_eq!(c.lookahead_ticks, 1);
        // Slower links are allowed.
        assert_eq!(
            NocConfig::paper(Topology::mesh8x8())
                .try_with_lookahead_ticks(4)
                .expect("lookahead 4 is valid")
                .lookahead_ticks,
            4
        );
    }

    #[test]
    fn zero_pipeline_rejected() {
        let err = NocConfig::paper(Topology::mesh8x8())
            .try_with_pipeline_cycles(0)
            .expect_err("zero pipeline must be rejected");
        assert_eq!(
            err,
            dozznoc_types::ConfigError::DegeneratePipeline { pipeline_cycles: 0 }
        );
        // A single-stage pipeline (ST only) is the boundary and is fine.
        let c = NocConfig::paper(Topology::mesh8x8())
            .try_with_pipeline_cycles(1)
            .expect("pipeline depth 1 is valid");
        assert_eq!(c.pipeline_cycles, 1);
    }

    #[test]
    fn tiny_epoch_rejected() {
        let err = NocConfig::paper(Topology::mesh8x8())
            .try_with_epoch_cycles(1)
            .expect_err("degenerate epoch must be rejected");
        assert_eq!(
            err,
            dozznoc_types::ConfigError::DegenerateEpoch { epoch_cycles: 1 }
        );
        // The boundary value is accepted.
        assert!(NocConfig::paper(Topology::mesh8x8())
            .try_with_epoch_cycles(dozznoc_types::MIN_EPOCH_CYCLES)
            .is_ok());
    }
}
