//! The spatially-sharded intra-run engine.
//!
//! [`run_sharded`] partitions the mesh into contiguous spatial shards
//! (a [`ShardPlan`]) and runs the *same* tick-edge-settled simulation
//! loop as [`Network::run`] on one worker thread per shard, each
//! restricted (via [`Network::restrict`]) to firing, admitting for, and
//! billing only its own router range.
//!
//! ## The conservative time-window barrier
//!
//! Ticks of the 18 GHz base clock are the simulation's finest time
//! unit, and `NocConfig::lookahead_ticks ≥ 1` guarantees that a flit or
//! credit emitted at tick *t* is first visible downstream at
//! `t + lookahead ≥ t + 1`. Each **window** is therefore the span from
//! one global event tick to the next: within it, every shard can fire
//! its own routers against *settled* state (end-of-previous-window
//! snapshots) with no possibility of seeing — or missing — a same-window
//! cross-shard effect. Two barriers bound each window:
//!
//! * **boundary A** — all shards have fired; every cross-shard message
//!   for this window is posted to its per-edge mailbox;
//! * **boundary B** — all shards have settled, exported fresh boundary
//!   snapshots, and published their `(next-event, in-flight)` pulse.
//!
//! Between B and the next A each shard installs its halo snapshots and
//! reduces the pulses to the *same* global verdict (done / livelocked /
//! advance to tick `min(next)`), so control flow never diverges across
//! workers.
//!
//! ## Why the result is bit-identical to the sequential engine
//!
//! * The sequential loop is the one-shard instance of the same phased
//!   code: fire emits deferred [`Msg`]s, settlement applies them in
//!   `(phase, src_key, seq)` key order. Shards merge their inbound
//!   mailboxes and sort by the same key, reproducing exactly the order
//!   the sequential loop emits in (keys are globally unique: phase 0 is
//!   keyed by global packet index, phase 1 by firing-router index).
//! * Every counter and ledger entry is billed by exactly one owner
//!   shard, so the final [`Network::absorb`] reduce adds each real
//!   value to a still-default one — integer sums are trivially exact
//!   and each f64 sum is `0.0 + x`, which is bitwise `x`.
//! * The global next-event is `min` over shard-local minima plus the
//!   (identically computed) next injection time — the same value the
//!   sequential heap produces.
//!
//! Telemetry and the sanitizer hook the *sequential* loop; callers that
//! need either (or a policy whose learned state is shared across
//! routers) fall back to one shard. The engine-selection layer in
//! `dozznoc-core` enforces this.

use dozz_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use dozz_sync::Mutex;

use dozznoc_power::MlOverhead;
use dozznoc_topology::{ShardPlan, DIR_PORTS};
use dozznoc_traffic::Trace;
use dozznoc_types::RouterId;

use crate::config::NocConfig;
use crate::network::{Msg, Network, SimError, SnapMeta};
use crate::policy::PowerPolicy;
use crate::stats::RunReport;
use crate::telemetry::NullSink;

/// Fixed capacity of a snapshot export block's per-VC flag array.
/// Large enough for both paper topologies (mesh: 5 ports × 4 VCs = 20,
/// cmesh: 8 × 4 = 32); [`run_sharded`] asserts the bound so a future
/// topology cannot silently truncate.
const MAX_SNAP_SLOTS: usize = 32;

/// One boundary router's settled snapshot, shipped across a shard seam
/// at window boundary B.
#[derive(Clone, Copy)]
struct SnapExport {
    /// Router index the snapshot describes.
    router: u32,
    /// Settled per-router metadata.
    meta: SnapMeta,
    /// Settled per-VC flags, `slots` of them used.
    vc: [u8; MAX_SNAP_SLOTS],
}

/// A shard's per-window contribution to the global reduction.
#[derive(Clone, Copy, Default)]
struct Pulse {
    /// Earliest owned router-cycle deadline (min-reduced with the next
    /// injection time, which every shard computes identically).
    local_next: u64,
    /// Flits physically inside this shard (NI queues + buffers), after
    /// settlement.
    in_flight: u64,
}

/// Sense-reversing spin-then-yield barrier for the per-window
/// rendezvous.
///
/// `std::sync::Barrier` parks threads through a mutex/condvar pair;
/// with two rendezvous per window and tens of thousands of windows per
/// run, wake-up latency would dominate the very speedup sharding is
/// for. Windows are short, so a bounded spin catches the common case;
/// past the bound the waiter yields its timeslice, which keeps the
/// barrier from livelocking the peer off the CPU when the host has
/// fewer cores than shards.
///
/// Orderings: arrivals publish their pre-barrier writes with an
/// `AcqRel` fetch-add on `count` (the last arrival thereby *acquires*
/// every earlier arrival's writes), and the release happens through a
/// `Release` store of `generation` that waiters `Acquire`-load — so
/// everything written before the barrier by any thread happens-before
/// everything after it on every thread. No `Relaxed` anywhere.
///
/// Public (rather than engine-private) so the `dozznoc-modelcheck`
/// harnesses can drive the real barrier — generation protocol, poison
/// path and all — through every interleaving.
pub struct SpinBarrier {
    /// Arrivals in the current generation.
    count: AtomicUsize,
    /// Generation counter; waiters spin until it moves.
    generation: AtomicUsize,
    /// Thread count per rendezvous.
    members: usize,
    /// Spins before a waiter starts yielding its timeslice.
    spin_budget: u32,
    /// Set by a panicking worker's drop guard so the surviving workers
    /// panic out of their spin loops instead of hanging the process.
    poisoned: AtomicBool,
}

/// Spin budget for a host with `parallelism` usable cores: on a 1-core
/// host the peer *cannot* be running, so every spin iteration is pure
/// waste that delays the scheduler switch — yield immediately instead.
pub fn spin_budget_for(parallelism: usize) -> u32 {
    if parallelism <= 1 {
        0
    } else {
        128
    }
}

/// [`spin_budget_for`] of the current host.
fn host_spin_budget() -> u32 {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    spin_budget_for(parallelism)
}

impl SpinBarrier {
    /// A barrier for `members` threads that busy-spins `spin_budget`
    /// iterations per rendezvous before yielding.
    pub fn new(members: usize, spin_budget: u32) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            members,
            spin_budget,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Block until all `members` threads have arrived.
    ///
    /// # Panics
    /// When the barrier is [`poison`](Self::poison)ed, so survivors
    /// unwind instead of spinning forever on a dead rendezvous.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.members {
            // Last arrival: reset the count *before* releasing the
            // generation, so a released waiter re-entering the next
            // rendezvous never observes the stale count.
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Acquire) {
                    panic!("shard barrier poisoned by a panicked worker");
                }
                // Bounded spin first (the peer is typically one short
                // window behind), then yield so an oversubscribed host
                // can schedule the stragglers this waiter is waiting on.
                if spins < self.spin_budget {
                    spins += 1;
                    dozz_sync::hint::spin_loop();
                } else {
                    dozz_sync::thread::yield_now();
                }
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            panic!("shard barrier poisoned by a panicked worker");
        }
    }

    /// Mark the rendezvous dead: every current and future waiter
    /// panics out of [`wait`](Self::wait).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }
}

/// Drop guard: a worker unwinding past this poisons the barrier so its
/// peers panic out of their spins and `thread::scope` can propagate the
/// original panic instead of deadlocking.
pub struct PoisonOnPanic<'a>(&'a SpinBarrier);

impl<'a> PoisonOnPanic<'a> {
    /// Arm the guard for `barrier`.
    pub fn new(barrier: &'a SpinBarrier) -> Self {
        PoisonOnPanic(barrier)
    }
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Read-only state shared by every shard worker.
struct Shared<'a> {
    cfg: NocConfig,
    trace: &'a Trace,
    plan: &'a ShardPlan,
    /// `exports[k][j]`: routers shard `k` owns whose snapshots shard
    /// `j` reads (k's boundary routers adjacent to j's range).
    exports: &'a [Vec<Vec<usize>>],
    /// Per-router snapshot VC slots (`ports × vcs`).
    slots: usize,
    barrier: &'a SpinBarrier,
    /// `mail[src][dst]`: bounded-by-construction per-edge message
    /// channel, drained in fixed `(src)` order at boundary A.
    mail: &'a [Vec<Mutex<Vec<Msg>>>],
    /// `snap_mail[src][dst]`: boundary snapshots exported at B.
    snap_mail: &'a [Vec<Mutex<Vec<SnapExport>>>],
    pulses: &'a [Mutex<Pulse>],
}

/// What a worker hands back: its restricted network (owned accounting
/// settled and residency flushed), the policy's display name, and the
/// run verdict (identical on every shard by construction).
struct ShardOutcome {
    net: Network,
    policy_name: String,
    result: Result<(), SimError>,
}

/// Run `trace` under per-shard instances of `policy_build` on `shards`
/// spatial shards, bit-identical to [`Network::run`] with the policy
/// from `policy_build(0)`.
///
/// `policy_build(k)` is called once *inside* worker `k`; policies whose
/// state is per-router (all built-in non-shared policies) produce
/// identical decisions to a single sequential instance because each
/// router's observations reach exactly one instance. Policies with
/// cross-router shared state must not be run sharded — the
/// engine-selection layer checks `PolicyFactory::shardable`.
///
/// A plan that collapses to one shard (request ≤ 1, or more state than
/// routers clamped down to 1) short-circuits to the sequential engine.
pub fn run_sharded(
    cfg: NocConfig,
    trace: &Trace,
    shards: usize,
    policy_build: &(dyn Fn(usize) -> Box<dyn PowerPolicy> + Sync),
) -> Result<RunReport, SimError> {
    let plan = ShardPlan::new(&cfg.topology, shards);
    let s = plan.num_shards();
    if s == 1 {
        // One shard IS the sequential engine — same code path, zero
        // barrier or mailbox overhead.
        let mut policy = policy_build(0);
        return Network::new(cfg).run(trace, &mut *policy);
    }
    assert_eq!(
        trace.num_cores,
        cfg.topology.num_cores(),
        "trace core count does not match the topology"
    );
    let slots = cfg.topology.ports_per_router() * cfg.vcs_per_port;
    assert!(
        slots <= MAX_SNAP_SLOTS,
        "snapshot export block too small: {slots} VC slots per router (max {MAX_SNAP_SLOTS})"
    );

    // Who ships which snapshots to whom: shard k's boundary routers,
    // filtered to the ones actually adjacent to shard j. With
    // contiguous row-major shards only seam neighbors get entries, so
    // the exchange volume is the seam perimeter, not the shard area.
    let topo = cfg.topology;
    let exports: Vec<Vec<Vec<usize>>> = (0..s)
        .map(|k| {
            let boundary = plan.boundary(&topo, k);
            (0..s)
                .map(|j| {
                    if j == k {
                        return Vec::new();
                    }
                    let jr = plan.range(j);
                    boundary
                        .iter()
                        .map(|r| r.idx())
                        .filter(|&r| {
                            DIR_PORTS
                                .iter()
                                .filter_map(|&d| topo.neighbor(RouterId(r as u16), d))
                                .any(|n| jr.contains(&n.idx()))
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let barrier = SpinBarrier::new(s, host_spin_budget());
    let mail: Vec<Vec<Mutex<Vec<Msg>>>> = (0..s)
        .map(|_| (0..s).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let snap_mail: Vec<Vec<Mutex<Vec<SnapExport>>>> = (0..s)
        .map(|_| (0..s).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let pulses: Vec<Mutex<Pulse>> = (0..s).map(|_| Mutex::new(Pulse::default())).collect();

    let shared = Shared {
        cfg,
        trace,
        plan: &plan,
        exports: &exports,
        slots,
        barrier: &barrier,
        mail: &mail,
        snap_mail: &snap_mail,
        pulses: &pulses,
    };

    let outcomes: Vec<ShardOutcome> = dozz_sync::thread::scope(|scope| {
        let handles: Vec<_> = (0..s)
            .map(|k| {
                let shared = &shared;
                scope.spawn(move || shard_worker(k, shared, policy_build))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Reduce in fixed shard order. Every worker derived the same
    // verdict from the same pulses, so the lead shard speaks for all.
    let mut it = outcomes.into_iter();
    let lead = it.next().expect("plan has ≥ 1 shard");
    lead.result?;
    let mut net = lead.net;
    for o in it {
        debug_assert!(o.result.is_ok(), "shard verdicts diverged");
        net.absorb(&o.net);
    }
    Ok(net.build_report(&lead.policy_name, &trace.name))
}

/// The per-shard simulation loop: the sequential loop with settlement
/// split across the two window boundaries.
fn shard_worker(
    k: usize,
    sh: &Shared<'_>,
    policy_build: &(dyn Fn(usize) -> Box<dyn PowerPolicy> + Sync),
) -> ShardOutcome {
    let _poison = PoisonOnPanic::new(sh.barrier);
    let s = sh.plan.num_shards();
    let mut policy = policy_build(k);
    let ml_overhead = policy.ml_features().map(MlOverhead::for_features);
    let mut tel = NullSink;
    let mut net = Network::new(sh.cfg);
    net.restrict(sh.plan.range(k));
    let packets = sh.trace.packets();
    net.prepare_packets(packets.len());
    let mut next_pkt = 0usize;
    let mut inbound: Vec<Msg> = Vec::new();

    let result = loop {
        // Fire phase: admissions and owned router cycles for this
        // window, against settled (previous-window) snapshots only.
        net.admit(packets, &mut next_pkt);
        net.fire(&mut *policy, ml_overhead.as_ref(), &mut tel);

        // Partition the outbox by each effect's owning shard: own
        // effects stay local, foreign ones go to the per-edge channel.
        for m in net.outbox.drain(..) {
            let dst = sh.plan.shard_of(m.effect.target() as usize);
            if dst == k {
                inbound.push(m);
            } else {
                sh.mail[k][dst]
                    .lock()
                    .expect("shard mailbox poisoned")
                    .push(m);
            }
        }

        // Boundary A: all shards fired; all messages are posted.
        sh.barrier.wait();

        // Settle phase: drain the per-edge channels in fixed source
        // order, restore the global settlement order (keys are
        // globally unique, so the unstable sort is total), and apply.
        for src in 0..s {
            if src != k {
                inbound.append(&mut sh.mail[src][k].lock().expect("shard mailbox poisoned"));
            }
        }
        inbound.sort_unstable_by_key(|m| m.key());
        net.settle_msgs(&inbound);
        inbound.clear();

        // Export fresh boundary snapshots for every seam neighbor.
        for (j, list) in sh.exports[k].iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let mut out = sh.snap_mail[k][j].lock().expect("snap mailbox poisoned");
            out.clear();
            for &r in list {
                let mut vc = [0u8; MAX_SNAP_SLOTS];
                let base = r * sh.slots;
                vc[..sh.slots].copy_from_slice(&net.snap_vc[base..base + sh.slots]);
                out.push(SnapExport {
                    router: r as u32,
                    meta: net.snap_meta[r],
                    vc,
                });
            }
        }

        // Publish this shard's pulse. The next-injection term is
        // computed identically by every shard, so min-reducing it from
        // each pulse is harmless and keeps the reduce branch-free.
        let mut local_next = net.local_next_event();
        if next_pkt < packets.len() {
            local_next = local_next.min(packets[next_pkt].inject_time.ticks());
        }
        *sh.pulses[k].lock().expect("shard pulse poisoned") = Pulse {
            local_next,
            in_flight: net.in_flight,
        };

        // Boundary B: all shards settled; snapshots and pulses are out.
        sh.barrier.wait();

        // Install halo snapshots (settled state of foreign neighbors).
        for src in 0..s {
            if src == k {
                continue;
            }
            let inbox = sh.snap_mail[src][k].lock().expect("snap mailbox poisoned");
            for e in inbox.iter() {
                let r = e.router as usize;
                net.snap_meta[r] = e.meta;
                let base = r * sh.slots;
                net.snap_vc[base..base + sh.slots].copy_from_slice(&e.vc[..sh.slots]);
            }
        }

        // Reduce the pulses to the global verdict — same inputs, same
        // arithmetic, same verdict on every shard.
        let mut global_next = u64::MAX;
        let mut in_flight = 0u64;
        for p in sh.pulses {
            let p = *p.lock().expect("shard pulse poisoned");
            global_next = global_next.min(p.local_next);
            in_flight += p.in_flight;
        }

        if next_pkt == packets.len() && in_flight == 0 {
            break Ok(());
        }
        if net.now >= sh.cfg.max_ticks {
            break Err(SimError::Livelock { in_flight });
        }
        debug_assert!(global_next > net.now, "time must advance");
        net.now = global_next;
    };

    // Bill residual residency for owned routers at the final clock so
    // the merged ledger matches a sequential run's flush.
    net.flush_residency();
    ShardOutcome {
        net,
        policy_name: policy.name().to_string(),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AlwaysMode;
    use dozznoc_topology::Topology;
    use dozznoc_traffic::trace::packet;
    use dozznoc_types::{Mode, PacketKind};

    /// Seam-crossing mixed traffic: every packet traverses most of the
    /// mesh, so 2- and 4-shard plans all see cross-shard transfers,
    /// secures and wake punches.
    fn crossing_trace(num_cores: usize, packets: usize) -> Trace {
        let pkts = (0..packets as u16)
            .map(|i| {
                let src = i % num_cores as u16;
                let dst = (num_cores as u16 - 1) - src;
                let kind = if i % 3 == 0 {
                    PacketKind::Response
                } else {
                    PacketKind::Request
                };
                packet(src, dst, kind, 1.0 + f64::from(i) * 5.0)
            })
            .collect();
        Trace::new("shard-unit", num_cores, pkts)
    }

    /// Bit-exact comparison: Rust prints every f64 as the shortest
    /// round-tripping string, so JSON equality is bit equality.
    fn ser(r: &RunReport) -> String {
        serde_json::to_string(r).expect("reports serialize")
    }

    fn sequential(cfg: NocConfig, trace: &Trace, gating: bool) -> Result<RunReport, SimError> {
        let mut policy = build_policy(gating)(0);
        Network::new(cfg).run(trace, &mut *policy)
    }

    fn build_policy(gating: bool) -> impl Fn(usize) -> Box<dyn PowerPolicy> + Sync {
        move |_| {
            let p = AlwaysMode::new(Mode::M5);
            Box::new(if gating { p.with_gating() } else { p })
        }
    }

    #[test]
    fn one_core_hosts_skip_the_spin_phase() {
        assert_eq!(spin_budget_for(0), 0);
        assert_eq!(spin_budget_for(1), 0, "1-core: the peer cannot be running");
        assert_eq!(spin_budget_for(2), 128);
        assert_eq!(spin_budget_for(64), 128);
        // A zero-budget barrier still rendezvouses — the waiter goes
        // straight to the yield path.
        let b = SpinBarrier::new(2, 0);
        dozz_sync::thread::scope(|s| {
            let h = s.spawn(|| b.wait());
            b.wait();
            h.join().expect("zero-budget waiter completes");
        });
    }

    #[test]
    fn sharded_mesh_matches_sequential_bit_for_bit() {
        let cfg = NocConfig::paper(Topology::mesh8x8());
        let trace = crossing_trace(64, 48);
        for gating in [false, true] {
            let seq = ser(&sequential(cfg, &trace, gating).expect("sequential completes"));
            for shards in [2, 4] {
                let sharded = run_sharded(cfg, &trace, shards, &build_policy(gating))
                    .expect("sharded run completes");
                assert_eq!(seq, ser(&sharded), "shards={shards} gating={gating}");
            }
        }
    }

    #[test]
    fn single_router_shards_match_sequential() {
        // 99 shards clamps to 16 single-router shards on the cmesh:
        // every link is a seam, every transfer crosses the channel.
        let cfg = NocConfig::paper(Topology::cmesh4x4());
        let trace = crossing_trace(64, 32);
        let seq = ser(&sequential(cfg, &trace, true).expect("sequential completes"));
        let sharded =
            run_sharded(cfg, &trace, 99, &build_policy(true)).expect("sharded run completes");
        assert_eq!(seq, ser(&sharded));
    }

    #[test]
    fn shards_without_injectors_stay_in_lockstep() {
        // All traffic originates at router 0: shards 1–3 admit nothing
        // and only ever receive flits through the seam channels (their
        // gated routers wake from cross-shard punches alone).
        let cfg = NocConfig::paper(Topology::mesh8x8());
        let pkts = (0..8u16)
            .map(|i| packet(0, 63 - i, PacketKind::Request, 1.0 + f64::from(i) * 40.0))
            .collect();
        let trace = Trace::new("one-injector", 64, pkts);
        let seq = sequential(cfg, &trace, true).expect("sequential completes");
        assert_eq!(seq.stats.packets_delivered, 8);
        let sharded =
            run_sharded(cfg, &trace, 4, &build_policy(true)).expect("sharded run completes");
        assert_eq!(ser(&seq), ser(&sharded));
    }

    #[test]
    fn livelock_verdict_is_identical_across_engines() {
        // The window boundary lands exactly on max_ticks: both engines
        // must admit the packet, fire once, and then abort with the
        // same in-flight count instead of draining or over-running.
        let mut cfg = NocConfig::paper(Topology::mesh8x8());
        cfg.max_ticks = 180; // == ceil(10 ns × 18 ticks/ns)
        let trace = Trace::new("edge", 64, vec![packet(0, 63, PacketKind::Request, 10.0)]);
        let seq = sequential(cfg, &trace, false).expect_err("cannot drain in zero ticks");
        let sharded = run_sharded(cfg, &trace, 4, &build_policy(false))
            .expect_err("cannot drain in zero ticks");
        assert_eq!(seq, sharded);
        assert_eq!(sharded, SimError::Livelock { in_flight: 1 });
    }

    #[test]
    fn one_shard_takes_the_sequential_fast_path() {
        // Plan collapse (request ≤ 1) must short-circuit: identical
        // bytes, and no panic from the degenerate barrier setup.
        let cfg = NocConfig::paper(Topology::mesh8x8());
        let trace = crossing_trace(64, 8);
        let seq = ser(&sequential(cfg, &trace, true).expect("sequential completes"));
        for shards in [0, 1] {
            let sharded =
                run_sharded(cfg, &trace, shards, &build_policy(true)).expect("run completes");
            assert_eq!(seq, ser(&sharded), "shards={shards}");
        }
    }

    #[test]
    fn empty_trace_terminates_immediately() {
        let cfg = NocConfig::paper(Topology::mesh8x8());
        let trace = Trace::new("empty", 64, Vec::new());
        let report = run_sharded(cfg, &trace, 4, &build_policy(false)).expect("run completes");
        assert_eq!(report.stats.packets_delivered, 0);
        assert_eq!(
            ser(&sequential(cfg, &trace, false).expect("sequential completes")),
            ser(&report)
        );
    }
}
