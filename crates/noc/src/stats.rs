//! Run-level statistics and the final report.

use serde::{Deserialize, Serialize};

use dozznoc_power::EnergyReport;
use dozznoc_types::SimTime;

use crate::histogram::LatencyHistogram;

/// Version stamp of the serialized [`RunReport`] format *and* of the
/// simulator behavior it records. Content-addressed stores of
/// serialized reports (the experiment engine's run cache) mix this into
/// their keys, so bump it whenever either changes:
///
/// * a field is added to / removed from / re-ordered in [`RunReport`],
///   [`RunStats`], [`RouterSummary`] or anything they embed, or
/// * an *intentional* behavioral change lands (one that re-blesses the
///   `tests/determinism.rs` goldens) — a stale cache entry from the
///   previous behavior would otherwise keep masquerading as current.
pub const REPORT_FORMAT_VERSION: u32 = 2;

/// Counters accumulated over one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Packets handed to injection queues.
    pub packets_injected: u64,
    /// Packets fully delivered (tail ejected).
    pub packets_delivered: u64,
    /// Flits delivered.
    pub flits_delivered: u64,
    /// Sum of packet latencies in base ticks (injection to tail
    /// ejection, source queueing included).
    pub latency_sum_ticks: u128,
    /// Worst packet latency in base ticks.
    pub latency_max_ticks: u64,
    /// Sum of *network* latencies in base ticks (head flit entering the
    /// source router's buffer to tail ejection — the metric NoC papers
    /// usually plot, excluding NI source-queueing).
    pub net_latency_sum_ticks: u128,
    /// Worst network latency in base ticks.
    pub net_latency_max_ticks: u64,
    /// Log-bucketed distribution of network latencies (P50/P95/P99
    /// reporting; the DozzNoC costs live in the tail).
    pub net_latency_hist: LatencyHistogram,
    /// Time the last flit was delivered.
    pub last_delivery: SimTime,
    /// Per-active-mode epoch-decision counts (Fig. 7: the distribution
    /// of predicted DVFS modes). Indexed by `Mode::rank()`.
    pub mode_selections: [u64; 5],
    /// Epoch boundaries processed (denominator of the Fig. 7 shares).
    pub epochs: u64,
    /// Invariant violations: releases of a downstream-secure reference
    /// that no matching secure ever took. Always 0 in a correct
    /// simulator; nonzero means a flow-control accounting bug that
    /// would previously have been masked by a saturating subtraction.
    pub secure_underflows: u64,
}

impl RunStats {
    /// Fold another run's counters into this one.
    ///
    /// Every field is a sum, a max, or a mergeable distribution, so the
    /// merge is exact and order-independent: partitioning a run's
    /// deliveries arbitrarily and merging the partial `RunStats` yields
    /// the whole run's stats bit-for-bit. This is the shard reducer of
    /// the sharded engine and the aggregation primitive of campaign
    /// summaries.
    pub fn merge(&mut self, other: &RunStats) {
        self.packets_injected += other.packets_injected;
        self.packets_delivered += other.packets_delivered;
        self.flits_delivered += other.flits_delivered;
        self.latency_sum_ticks += other.latency_sum_ticks;
        self.latency_max_ticks = self.latency_max_ticks.max(other.latency_max_ticks);
        self.net_latency_sum_ticks += other.net_latency_sum_ticks;
        self.net_latency_max_ticks = self.net_latency_max_ticks.max(other.net_latency_max_ticks);
        self.net_latency_hist.merge(&other.net_latency_hist);
        if other.last_delivery.ticks() > self.last_delivery.ticks() {
            self.last_delivery = other.last_delivery;
        }
        for (a, b) in self.mode_selections.iter_mut().zip(&other.mode_selections) {
            *a += b;
        }
        self.epochs += other.epochs;
        self.secure_underflows += other.secure_underflows;
    }

    /// Mean packet latency in nanoseconds.
    pub fn avg_latency_ns(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        self.latency_sum_ticks as f64
            / self.packets_delivered as f64
            / dozznoc_types::TICKS_PER_NS as f64
    }

    /// Worst packet latency in nanoseconds.
    pub fn max_latency_ns(&self) -> f64 {
        self.latency_max_ticks as f64 / dozznoc_types::TICKS_PER_NS as f64
    }

    /// Mean network latency (excluding NI source-queueing), nanoseconds.
    pub fn avg_net_latency_ns(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        self.net_latency_sum_ticks as f64
            / self.packets_delivered as f64
            / dozznoc_types::TICKS_PER_NS as f64
    }

    /// Network throughput: delivered flits per nanosecond of completion
    /// time.
    pub fn throughput_flits_per_ns(&self) -> f64 {
        let t = self.last_delivery.as_ns();
        if t <= 0.0 {
            0.0
        } else {
            self.flits_delivered as f64 / t
        }
    }

    /// Fig. 7 shares: fraction of epoch decisions per active mode.
    pub fn mode_distribution(&self) -> [f64; 5] {
        let total: u64 = self.mode_selections.iter().sum();
        let mut out = [0.0; 5];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(&self.mode_selections) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }
}

/// Per-router activity summary (spatial heatmaps, diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RouterSummary {
    /// Fraction of the run spent power-gated.
    pub off_fraction: f64,
    /// Flit-hops routed through this router.
    pub hops: u64,
    /// Leakage energy billed, joules.
    pub static_j: f64,
    /// Traffic energy billed, joules.
    pub dynamic_j: f64,
    /// Wake-up events.
    pub wakeups: u64,
}

/// Everything a finished run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy that drove the run.
    pub policy: String,
    /// Trace that was injected.
    pub trace: String,
    /// Tick the simulation finished at (all flits drained).
    pub finished_at: SimTime,
    /// Network statistics.
    pub stats: RunStats,
    /// Energy totals.
    pub energy: EnergyReport,
    /// Per-router activity, indexed by `RouterId`.
    pub per_router: Vec<RouterSummary>,
}

impl RunReport {
    /// Static energy relative to another run (Fig. 8 normalization).
    pub fn static_energy_vs(&self, baseline: &RunReport) -> f64 {
        self.energy.static_j / baseline.energy.static_j.max(f64::MIN_POSITIVE)
    }

    /// Dynamic energy (incl. ML overhead) relative to another run.
    pub fn dynamic_energy_vs(&self, baseline: &RunReport) -> f64 {
        self.energy.dynamic_with_ml_j() / baseline.energy.dynamic_with_ml_j().max(f64::MIN_POSITIVE)
    }

    /// Throughput relative to another run.
    pub fn throughput_vs(&self, baseline: &RunReport) -> f64 {
        self.stats.throughput_flits_per_ns()
            / baseline
                .stats
                .throughput_flits_per_ns()
                .max(f64::MIN_POSITIVE)
    }

    /// Mean *network* latency relative to another run (the paper's
    /// latency metric).
    pub fn latency_vs(&self, baseline: &RunReport) -> f64 {
        self.stats.avg_net_latency_ns() / baseline.stats.avg_net_latency_ns().max(f64::MIN_POSITIVE)
    }

    /// Mean end-to-end latency (incl. source queueing) relative to
    /// another run.
    pub fn e2e_latency_vs(&self, baseline: &RunReport) -> f64 {
        self.stats.avg_latency_ns() / baseline.stats.avg_latency_ns().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dozznoc_types::TICKS_PER_NS;

    #[test]
    fn latency_and_throughput_math() {
        let s = RunStats {
            packets_delivered: 2,
            flits_delivered: 10,
            latency_sum_ticks: (TICKS_PER_NS * 30) as u128, // 10 ns + 20 ns
            latency_max_ticks: TICKS_PER_NS * 20,
            last_delivery: SimTime::from_ticks(TICKS_PER_NS * 100),
            ..Default::default()
        };
        assert!((s.avg_latency_ns() - 15.0).abs() < 1e-9);
        assert!((s.max_latency_ns() - 20.0).abs() < 1e-9);
        assert!((s.throughput_flits_per_ns() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let s = RunStats::default();
        assert_eq!(s.avg_latency_ns(), 0.0);
        assert_eq!(s.throughput_flits_per_ns(), 0.0);
        assert_eq!(s.mode_distribution(), [0.0; 5]);
    }

    #[test]
    fn merge_of_parts_equals_whole() {
        // Split a synthetic run's deliveries into two partitions and
        // merge: every field must reassemble exactly.
        let mut whole = RunStats::default();
        let mut a = RunStats::default();
        let mut b = RunStats::default();
        for i in 0..100u64 {
            let lat = 17 + i * 13;
            let part = if i % 3 == 0 { &mut a } else { &mut b };
            for s in [&mut whole, part] {
                s.packets_injected += 1;
                s.packets_delivered += 1;
                s.flits_delivered += 5;
                s.latency_sum_ticks += lat as u128;
                s.latency_max_ticks = s.latency_max_ticks.max(lat);
                s.net_latency_sum_ticks += (lat - 7) as u128;
                s.net_latency_max_ticks = s.net_latency_max_ticks.max(lat - 7);
                s.net_latency_hist.record(lat - 7);
                s.last_delivery = SimTime::from_ticks(1000 + i);
                s.mode_selections[(i % 5) as usize] += 1;
                s.epochs += 1;
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        // Merge order must not matter either.
        let mut flipped = b;
        flipped.merge(&a);
        assert_eq!(flipped, whole);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let mut s = RunStats {
            packets_delivered: 3,
            latency_max_ticks: 99,
            ..Default::default()
        };
        s.net_latency_hist.record(42);
        s.last_delivery = SimTime::from_ticks(7);
        let mut empty = RunStats::default();
        empty.merge(&s);
        assert_eq!(empty, s);
        let before = s.clone();
        s.merge(&RunStats::default());
        assert_eq!(s, before);
    }

    #[test]
    fn mode_distribution_normalizes() {
        let s = RunStats {
            mode_selections: [1, 0, 1, 0, 2],
            ..Default::default()
        };
        let d = s.mode_distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d[4] - 0.5).abs() < 1e-12);
    }
}
