//! Virtual-channel input buffers.
//!
//! Wormhole flow control: a VC buffer is owned by at most one packet at a
//! time (from the cycle its head flit arrives until the cycle its tail
//! flit departs). The head's route — output port, look-ahead next router
//! and the downstream VC it was allocated — is stored with the buffer so
//! body/tail flits follow without re-computation.

use std::collections::VecDeque;

use dozznoc_topology::Port;
use dozznoc_types::{Flit, PacketId, RouterId};

/// Route state of the packet currently owning a VC buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcRoute {
    /// Output port at this router.
    pub out_port: Port,
    /// Look-ahead: the downstream router (None for ejection).
    pub next_router: Option<RouterId>,
    /// Downstream VC allocated for this packet (None until the head wins
    /// allocation; ejection never allocates one).
    pub out_vc: Option<u8>,
}

/// One virtual-channel FIFO with its wormhole state.
#[derive(Debug, Clone)]
pub struct VcBuffer {
    queue: VecDeque<(Flit, u64)>, // (flit, earliest tick it may leave)
    capacity: usize,
    owner: Option<PacketId>,
    route: Option<VcRoute>,
}

impl VcBuffer {
    /// An empty buffer of `capacity` flits.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        VcBuffer {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            owner: None,
            route: None,
        }
    }

    /// Flits currently buffered.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no flits are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when another flit fits.
    #[inline]
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Flit capacity of this buffer (the credit pool backing it).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffered `(flit, ready_at)` entries in FIFO order — read-only
    /// inspection for the invariant sanitizer; never perturbs state.
    #[inline]
    pub(crate) fn entries(&self) -> impl Iterator<Item = &(Flit, u64)> {
        self.queue.iter()
    }

    /// True when this VC can accept the *head* of a new packet: it must
    /// be unowned (wormhole) and have space.
    #[inline]
    pub fn can_accept_new_packet(&self) -> bool {
        self.owner.is_none() && self.has_space()
    }

    /// The packet currently owning this VC.
    #[inline]
    pub fn owner(&self) -> Option<PacketId> {
        self.owner
    }

    /// Route of the owning packet, if computed.
    #[inline]
    pub fn route(&self) -> Option<&VcRoute> {
        self.route.as_ref()
    }

    /// Set the owning packet's route (route-compute stage).
    pub fn set_route(&mut self, route: VcRoute) {
        debug_assert!(self.owner.is_some(), "route without an owner");
        self.route = Some(route);
    }

    /// Record the downstream VC the head was allocated.
    pub fn set_out_vc(&mut self, vc: u8) {
        if let Some(r) = self.route.as_mut() {
            r.out_vc = Some(vc);
        }
    }

    /// Enqueue a flit. `ready_at` is the earliest tick the flit may be
    /// forwarded onward (one tick after arrival, so a flit can never
    /// cross two routers inside the same base tick).
    ///
    /// Panics (debug) if the buffer is full or the flit does not belong
    /// to the owning packet.
    pub fn push(&mut self, flit: Flit, ready_at: u64) {
        debug_assert!(self.has_space(), "buffer overflow");
        match self.owner {
            None => {
                debug_assert!(flit.kind.is_head(), "body flit into unowned VC");
                self.owner = Some(flit.packet);
            }
            Some(owner) => {
                debug_assert_eq!(owner, flit.packet, "interleaved packets in one VC");
            }
        }
        self.queue.push_back((flit, ready_at));
    }

    /// The flit at the head of the FIFO, if it is allowed to move at
    /// `tick`.
    pub fn peek_ready(&self, tick: u64) -> Option<&Flit> {
        match self.queue.front() {
            Some((flit, ready_at)) if *ready_at <= tick => Some(flit),
            _ => None,
        }
    }

    /// Dequeue the head flit. Clears ownership and route when the tail
    /// departs. Panics (debug) if empty.
    pub fn pop(&mut self) -> Flit {
        let (flit, _) = self.queue.pop_front().expect("pop from empty VC");
        if flit.kind.is_tail() {
            self.owner = None;
            self.route = None;
        }
        flit
    }
}

/// All VCs of one input port.
#[derive(Debug, Clone)]
pub struct InputPort {
    vcs: Vec<VcBuffer>,
}

impl InputPort {
    /// `vcs` buffers of `depth` flits each.
    pub fn new(vcs: usize, depth: usize) -> Self {
        InputPort {
            vcs: (0..vcs).map(|_| VcBuffer::new(depth)).collect(),
        }
    }

    /// Immutable VC access.
    #[inline]
    pub fn vc(&self, vc: usize) -> &VcBuffer {
        &self.vcs[vc]
    }

    /// Mutable VC access.
    #[inline]
    pub fn vc_mut(&mut self, vc: usize) -> &mut VcBuffer {
        &mut self.vcs[vc]
    }

    /// Number of VCs.
    #[inline]
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Total flits buffered across VCs.
    pub fn occupancy(&self) -> usize {
        self.vcs.iter().map(VcBuffer::len).sum()
    }

    /// True when every VC is empty.
    pub fn is_empty(&self) -> bool {
        self.vcs.iter().all(VcBuffer::is_empty)
    }

    /// Index of a VC that can accept a new packet's head, if any.
    pub fn free_vc(&self) -> Option<u8> {
        self.vcs
            .iter()
            .position(VcBuffer::can_accept_new_packet)
            .map(|i| i as u8)
    }

    /// Iterate over `(vc index, buffer)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &VcBuffer)> {
        self.vcs.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dozznoc_types::{CoreId, FlitKind, Packet, PacketKind, SimTime};

    fn flits(id: u64, kind: PacketKind) -> Vec<Flit> {
        Packet {
            id: PacketId(id),
            src: CoreId(0),
            dst: CoreId(1),
            kind,
            inject_time: SimTime::ZERO,
        }
        .flits()
        .collect()
    }

    #[test]
    fn ownership_lifecycle() {
        let mut b = VcBuffer::new(8);
        assert!(b.can_accept_new_packet());
        for f in flits(7, PacketKind::Response) {
            b.push(f, 0);
        }
        assert_eq!(b.owner(), Some(PacketId(7)));
        assert!(!b.can_accept_new_packet());
        assert_eq!(b.len(), 5);
        // Drain: ownership persists until the tail pops.
        for _ in 0..4 {
            b.pop();
            assert_eq!(b.owner(), Some(PacketId(7)));
        }
        let tail = b.pop();
        assert_eq!(tail.kind, FlitKind::Tail);
        assert_eq!(b.owner(), None);
        assert!(b.can_accept_new_packet());
        assert!(b.route().is_none());
    }

    #[test]
    fn single_flit_packet_releases_immediately() {
        let mut b = VcBuffer::new(4);
        b.push(flits(1, PacketKind::Request)[0], 0);
        assert_eq!(b.owner(), Some(PacketId(1)));
        b.pop();
        assert_eq!(b.owner(), None);
    }

    #[test]
    fn ready_at_gates_forwarding() {
        let mut b = VcBuffer::new(4);
        b.push(flits(1, PacketKind::Request)[0], 10);
        assert!(b.peek_ready(9).is_none());
        assert!(b.peek_ready(10).is_some());
    }

    #[test]
    fn space_accounting() {
        let mut b = VcBuffer::new(2);
        let fs = flits(3, PacketKind::Response);
        b.push(fs[0], 0);
        assert!(b.has_space());
        b.push(fs[1], 0);
        assert!(!b.has_space());
    }

    #[test]
    fn route_set_and_cleared() {
        use dozznoc_topology::Direction;
        let mut b = VcBuffer::new(4);
        b.push(flits(1, PacketKind::Request)[0], 0);
        b.set_route(VcRoute {
            out_port: Port::Dir(Direction::East),
            next_router: Some(RouterId(5)),
            out_vc: None,
        });
        b.set_out_vc(2);
        assert_eq!(b.route().expect("route is set").out_vc, Some(2));
        b.pop();
        assert!(b.route().is_none());
    }

    #[test]
    fn input_port_free_vc_and_occupancy() {
        let mut p = InputPort::new(2, 2);
        assert_eq!(p.free_vc(), Some(0));
        p.vc_mut(0).push(flits(1, PacketKind::Request)[0], 0);
        assert_eq!(p.free_vc(), Some(1));
        assert_eq!(p.occupancy(), 1);
        assert!(!p.is_empty());
        p.vc_mut(1).push(flits(2, PacketKind::Request)[0], 0);
        assert_eq!(p.free_vc(), None);
    }

    #[test]
    #[should_panic(expected = "buffer overflow")]
    fn overflow_detected_in_debug() {
        let mut b = VcBuffer::new(1);
        let fs = flits(3, PacketKind::Response);
        b.push(fs[0], 0);
        b.push(fs[1], 0);
        if !cfg!(debug_assertions) {
            panic!("buffer overflow"); // the debug_assert is compiled out here
        }
    }
}
