//! Runtime invariant sanitizer: per-tick structural checks on the
//! simulator's flow-control and scheduling state.
//!
//! The simulator maintains several redundant views of the same physical
//! quantities — incremental flit counts next to authoritative buffer
//! scans, a lazy-deletion event heap next to per-router deadlines, a
//! global in-flight counter next to the union of NI queues and VC
//! buffers. [`SimSanitizer`] cross-checks those views after every event
//! tick and reports any disagreement as a structured
//! [`InvariantViolation`] through [`Telemetry::on_violation`].
//!
//! The sanitizer follows the telemetry discipline: it is **purely
//! observational** (it only ever takes `&Network`), off by default, and
//! gated behind a single `bool` in the run loop so a disabled sanitizer
//! costs one branch per event tick. Run reports are bit-identical with
//! the sanitizer on or off — the determinism goldens enforce this.
//!
//! The invariant catalogue lives in `DESIGN.md` ("Invariant catalogue");
//! each [`ViolationKind`] variant documents the check that produces it.

use serde::Serialize;

use dozznoc_topology::Port;
use dozznoc_types::{DomainCycles, PacketId, PowerState, RouterId, TickDelta};

use crate::network::Network;
use crate::telemetry::Telemetry;

/// Largest base-tick divisor any power state runs at (the gated
/// heartbeat ticks at the M3 rate).
const MAX_DIVISOR: u64 = 18;

/// Configuration of one [`SimSanitizer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SanitizerConfig {
    /// A VC whose front flit makes no progress for longer than this is
    /// reported as [`ViolationKind::VcStall`] (deadlock watchdog). The
    /// default — 10 µs — is orders of magnitude above any legitimate
    /// wait (a full wake-up chain across an 8×8 mesh is under 100 ns).
    pub max_stall_ns: f64,
    /// At most this many violations are recorded in the report; the
    /// total count keeps incrementing past it (flood control for a
    /// corrupted run that trips the same check every sweep).
    pub max_recorded: usize,
    /// Abort the run with [`crate::network::SimError::Invariant`] on the
    /// first violation instead of collecting them.
    pub fail_fast: bool,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            max_stall_ns: 10_000.0,
            max_recorded: 64,
            fail_fast: false,
        }
    }
}

/// What a violated invariant looked like, with enough context to
/// localize the bug: the tick, the router/port/VC involved, and the
/// disagreeing counter values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct InvariantViolation {
    /// Base tick at which the check failed.
    pub tick: u64,
    /// Router involved, when the check is router-local.
    pub router: Option<RouterId>,
    /// Input-port index, when the check is port-local.
    pub port: Option<usize>,
    /// VC index, when the check is VC-local.
    pub vc: Option<usize>,
    /// Which invariant failed, with the disagreeing values.
    pub kind: ViolationKind,
}

/// The individual invariants the sanitizer checks (see `DESIGN.md`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ViolationKind {
    /// A router's incremental `buffered_flits` counter disagrees with
    /// the authoritative scan of its input buffers. The counter is what
    /// lets the hot path skip empty routers — drift here silently skips
    /// routing work (credit-conservation check).
    CreditConservation {
        /// The incrementally-maintained count.
        counted: u64,
        /// The authoritative buffer-scan occupancy.
        actual: u64,
    },
    /// A VC buffer holds more flits than its credit pool allows.
    BufferOverflow {
        /// Flits buffered.
        len: usize,
        /// The VC's flit capacity.
        capacity: usize,
    },
    /// Wormhole ownership or route linkage is inconsistent (e.g. flits
    /// without an owner, a route on an unowned VC, or a downstream VC
    /// that is not owned by the packet holding its upstream allocation).
    WormholeState {
        /// Which linkage broke.
        reason: &'static str,
    },
    /// The global in-flight counter disagrees with the sum of NI-queued
    /// and buffered flits: a flit was lost or double-counted.
    FlitConservation {
        /// The network's `in_flight` counter.
        in_flight: u64,
        /// Flits waiting in NI injection queues.
        queued: u64,
        /// Flits resident in router input buffers.
        buffered: u64,
    },
    /// `in_flight + flits_delivered` (total flits ever admitted)
    /// decreased between sweeps — admission accounting went backwards.
    FlitAccountingRegressed {
        /// Admitted-flit total at the previous sweep.
        before: u64,
        /// Admitted-flit total now.
        after: u64,
    },
    /// A VC's front flit has not moved for longer than
    /// [`SanitizerConfig::max_stall_ns`]: a deadlock or wedged wake-up.
    VcStall {
        /// How long the flit has been stuck at the front, in ticks.
        age_ticks: u64,
        /// The stuck packet.
        packet: PacketId,
        /// The stuck flit's sequence number within the packet.
        seq: u16,
    },
    /// The event heap and a router's `next_cycle_at` disagree: either
    /// no live heap entry backs the deadline (the router would sleep
    /// forever) or the deadline is outside `(now, now + 18]`.
    ScheduleConsistency {
        /// The router's next-cycle deadline.
        next_cycle_at: u64,
        /// Whether a matching heap entry exists.
        has_entry: bool,
    },
    /// A buffered flit's `ready_at` violates clock-domain causality:
    /// it is out of FIFO order or beyond the worst-case pipeline bound
    /// `now + 1 + (pipeline_cycles − 1) × 18`.
    ClockCausality {
        /// The offending `ready_at` tick.
        ready_at: u64,
        /// The bound it violated.
        bound: u64,
    },
    /// A router's power-state timestamps run backwards: `state_since`
    /// is in the future, or a wake-up deadline precedes its own start.
    StateCausality {
        /// The router's `state_since` tick.
        state_since: u64,
    },
}

/// Summary of one sanitized run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SanitizerReport {
    /// Event ticks swept.
    pub sweeps: u64,
    /// Total violations detected (including any dropped past
    /// [`SanitizerConfig::max_recorded`]).
    pub total_violations: u64,
    /// The recorded violations, in detection order.
    pub violations: Vec<InvariantViolation>,
}

/// Watchdog state for one VC: the front flit last seen and when it
/// first appeared there.
#[derive(Debug, Clone, Copy, Default)]
struct FrontWatch {
    packet: Option<PacketId>,
    seq: u16,
    since: u64,
}

/// The runtime invariant checker. Construct one, pass it to
/// [`Network::run_sanitized`], then inspect [`SimSanitizer::report`].
#[derive(Debug)]
pub struct SimSanitizer {
    cfg: SanitizerConfig,
    enabled: bool,
    max_stall_ticks: u64,
    sweeps: u64,
    total_violations: u64,
    violations: Vec<InvariantViolation>,
    /// Per-VC front-flit watchdog, indexed `(router · ports + port) ·
    /// vcs + vc`; sized lazily on the first sweep.
    watch: Vec<FrontWatch>,
    /// Heap-consistency scratch: routers with a live heap entry.
    seen: Vec<bool>,
    /// `in_flight + flits_delivered` at the previous sweep.
    prev_admitted: u64,
}

impl Default for SimSanitizer {
    fn default() -> Self {
        SimSanitizer::new(SanitizerConfig::default())
    }
}

impl SimSanitizer {
    /// An enabled sanitizer with the given configuration.
    pub fn new(cfg: SanitizerConfig) -> Self {
        SimSanitizer {
            enabled: true,
            max_stall_ticks: TickDelta::from_ns_ceil(cfg.max_stall_ns).ticks(),
            cfg,
            sweeps: 0,
            total_violations: 0,
            violations: Vec::new(),
            watch: Vec::new(),
            seen: Vec::new(),
            prev_admitted: 0,
        }
    }

    /// A disabled sanitizer: [`Network::run_sanitized`] degenerates to
    /// plain [`Network::run_with_telemetry`] with one extra branch.
    pub fn disabled() -> Self {
        let mut s = SimSanitizer::new(SanitizerConfig::default());
        s.enabled = false;
        s
    }

    /// Whether checks run at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configuration in force.
    pub fn config(&self) -> &SanitizerConfig {
        &self.cfg
    }

    /// Total violations detected so far.
    pub fn violation_count(&self) -> u64 {
        self.total_violations
    }

    /// The first violation detected, if any.
    pub fn first_violation(&self) -> Option<&InvariantViolation> {
        self.violations.first()
    }

    /// Event ticks swept so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Snapshot the run's findings.
    pub fn report(&self) -> SanitizerReport {
        SanitizerReport {
            sweeps: self.sweeps,
            total_violations: self.total_violations,
            violations: self.violations.clone(),
        }
    }

    /// True when `fail_fast` is set and a violation has been detected.
    pub(crate) fn should_abort(&self) -> bool {
        self.cfg.fail_fast && self.total_violations > 0
    }

    fn emit(&mut self, v: InvariantViolation, tel: &mut dyn Telemetry) {
        self.total_violations += 1;
        tel.on_violation(&v);
        // The first violation is always kept (fail-fast reports it even
        // if `max_recorded` is zero).
        if self.violations.len() < self.cfg.max_recorded.max(1) {
            self.violations.push(v);
        }
    }

    /// Sweep every invariant once. Called by the run loop after the
    /// router drain of each event tick, so all deadlines at `now` have
    /// fired and re-armed.
    pub(crate) fn check_tick(&mut self, net: &Network, tel: &mut dyn Telemetry) {
        if !self.enabled {
            return;
        }
        self.sweeps += 1;
        let now = net.now;
        let n_ports = net.topo.ports_per_router();
        let n_vcs = net.cfg.vcs_per_port;
        if self.watch.is_empty() {
            self.watch = vec![FrontWatch::default(); net.routers.len() * n_ports * n_vcs];
        }

        // Worst-case pipeline bound for any buffered flit's ready tick
        // (link traversal plus the remaining pipeline at the slowest
        // divisor; NI injection books one tick, ≤ any legal lookahead).
        let ready_bound = now
            + net.cfg.lookahead_ticks
            + DomainCycles::new(net.cfg.pipeline_cycles - 1)
                .to_ticks(MAX_DIVISOR)
                .ticks();

        // --- Event-heap consistency: every router's deadline must have
        // a live entry (stale entries are expected; missing ones mean a
        // router sleeps forever).
        self.seen.clear();
        self.seen.resize(net.routers.len(), false);
        for &std::cmp::Reverse((t, idx)) in net.sched.iter() {
            let i = idx as usize;
            if i < net.routers.len() && net.routers[i].next_cycle_at == t {
                self.seen[i] = true;
            }
        }

        let mut total_buffered = 0u64;
        for (i, r) in net.routers.iter().enumerate() {
            let router = Some(r.id);

            // Schedule: every deadline is at most one max-divisor
            // heartbeat away, never in the past (a missed cycle), and
            // backed by a live heap entry. `now` itself is legal only
            // before the first drain (a fresh network).
            let in_window = r.next_cycle_at >= now && r.next_cycle_at <= now + MAX_DIVISOR;
            if !self.seen[i] || !in_window {
                self.emit(
                    InvariantViolation {
                        tick: now,
                        router,
                        port: None,
                        vc: None,
                        kind: ViolationKind::ScheduleConsistency {
                            next_cycle_at: r.next_cycle_at,
                            has_entry: self.seen[i],
                        },
                    },
                    tel,
                );
            }

            // State causality.
            let state_since = r.state_since.ticks();
            let wake_ok = match r.state {
                PowerState::Wakeup { until, .. } => until.ticks() >= state_since,
                _ => true,
            };
            if state_since > now || !wake_ok {
                self.emit(
                    InvariantViolation {
                        tick: now,
                        router,
                        port: None,
                        vc: None,
                        kind: ViolationKind::StateCausality { state_since },
                    },
                    tel,
                );
            }

            // Credit conservation: incremental count vs authoritative scan.
            let occupancy = r.occupancy() as u64;
            total_buffered += occupancy;
            if u64::from(r.buffered_flits) != occupancy {
                self.emit(
                    InvariantViolation {
                        tick: now,
                        router,
                        port: None,
                        vc: None,
                        kind: ViolationKind::CreditConservation {
                            counted: u64::from(r.buffered_flits),
                            actual: occupancy,
                        },
                    },
                    tel,
                );
            }

            for (p, port) in r.ports.iter().enumerate() {
                for (v, vcb) in port.iter() {
                    self.check_vc(net, i, p, v, vcb, now, ready_bound, tel);
                }
            }
        }

        // --- Flit conservation: the global in-flight counter must equal
        // NI-queued plus buffered flits.
        let queued: u64 = net.inject.iter().map(|q| q.len() as u64).sum();
        if net.in_flight != queued + total_buffered {
            self.emit(
                InvariantViolation {
                    tick: now,
                    router: None,
                    port: None,
                    vc: None,
                    kind: ViolationKind::FlitConservation {
                        in_flight: net.in_flight,
                        queued,
                        buffered: total_buffered,
                    },
                },
                tel,
            );
        }

        // --- Admission accounting is monotone.
        let admitted = net.in_flight + net.stats.flits_delivered;
        if admitted < self.prev_admitted {
            self.emit(
                InvariantViolation {
                    tick: now,
                    router: None,
                    port: None,
                    vc: None,
                    kind: ViolationKind::FlitAccountingRegressed {
                        before: self.prev_admitted,
                        after: admitted,
                    },
                },
                tel,
            );
        }
        self.prev_admitted = admitted;
    }

    /// Per-VC checks: capacity, wormhole linkage, ready-tick causality
    /// and the stall watchdog.
    #[allow(clippy::too_many_arguments)]
    fn check_vc(
        &mut self,
        net: &Network,
        i: usize,
        p: usize,
        v: usize,
        vcb: &crate::buffer::VcBuffer,
        now: u64,
        ready_bound: u64,
        tel: &mut dyn Telemetry,
    ) {
        let at = |kind: ViolationKind| InvariantViolation {
            tick: now,
            router: Some(net.routers[i].id),
            port: Some(p),
            vc: Some(v),
            kind,
        };

        if vcb.len() > vcb.capacity() {
            self.emit(
                at(ViolationKind::BufferOverflow {
                    len: vcb.len(),
                    capacity: vcb.capacity(),
                }),
                tel,
            );
        }

        match vcb.owner() {
            None => {
                // Unowned VCs hold nothing and route nothing.
                if !vcb.is_empty() {
                    self.emit(
                        at(ViolationKind::WormholeState {
                            reason: "flits in an unowned VC",
                        }),
                        tel,
                    );
                }
                if vcb.route().is_some() {
                    self.emit(
                        at(ViolationKind::WormholeState {
                            reason: "route on an unowned VC",
                        }),
                        tel,
                    );
                }
            }
            Some(owner) => {
                if vcb.entries().any(|(f, _)| f.packet != owner) {
                    self.emit(
                        at(ViolationKind::WormholeState {
                            reason: "foreign flit in an owned VC",
                        }),
                        tel,
                    );
                }
                // Downstream linkage: an allocated output VC must still
                // be owned by this packet (it releases only when the
                // tail pops there, which clears this VC first).
                if let Some(route) = vcb.route() {
                    if let (Port::Dir(dir), Some(d), Some(out_vc)) =
                        (route.out_port, route.next_router, route.out_vc)
                    {
                        let down_port = Port::Dir(dir.opposite()).index();
                        let down = net.routers[d.idx()].ports[down_port].vc(out_vc as usize);
                        if down.owner() != Some(owner) {
                            self.emit(
                                at(ViolationKind::WormholeState {
                                    reason: "downstream VC not owned by the allocated packet",
                                }),
                                tel,
                            );
                        }
                    }
                }
            }
        }

        // Ready ticks are FIFO-monotone and within the pipeline bound.
        let mut prev_ready = 0u64;
        for (_, ready_at) in vcb.entries() {
            if *ready_at < prev_ready || *ready_at > ready_bound {
                let bound = if *ready_at < prev_ready {
                    prev_ready
                } else {
                    ready_bound
                };
                self.emit(
                    at(ViolationKind::ClockCausality {
                        ready_at: *ready_at,
                        bound,
                    }),
                    tel,
                );
                break;
            }
            prev_ready = *ready_at;
        }

        // Deadlock watchdog on the front flit.
        let n_vcs = net.cfg.vcs_per_port;
        let n_ports = net.topo.ports_per_router();
        let w = &mut self.watch[(i * n_ports + p) * n_vcs + v];
        match vcb.entries().next() {
            Some((front, _)) => {
                if w.packet == Some(front.packet) && w.seq == front.seq {
                    let age = now.saturating_sub(w.since);
                    if age > self.max_stall_ticks {
                        let kind = ViolationKind::VcStall {
                            age_ticks: age,
                            packet: front.packet,
                            seq: front.seq,
                        };
                        // Re-arm so a wedged VC reports once per stall
                        // period instead of once per sweep.
                        w.since = now;
                        self.emit(at(kind), tel);
                    }
                } else {
                    w.packet = Some(front.packet);
                    w.seq = front.seq;
                    w.since = now;
                }
            }
            None => w.packet = None,
        }
    }
}

#[cfg(test)]
mod tests {
    //! Fault-injection tests: corrupt one redundant view of the
    //! network's state and assert the sanitizer pins the matching
    //! violation kind on the right router.

    use super::*;
    use crate::buffer::VcRoute;
    use crate::config::NocConfig;
    use crate::telemetry::{NullSink, TimelineSink};
    use dozznoc_topology::{Direction, Topology};
    use dozznoc_types::{CoreId, Packet, PacketKind, SimTime};

    fn net() -> Network {
        Network::new(NocConfig::paper(Topology::mesh8x8()))
    }

    fn head_flit(id: u64) -> dozznoc_types::Flit {
        Packet {
            id: PacketId(id),
            src: CoreId(0),
            dst: CoreId(9),
            kind: PacketKind::Request,
            inject_time: SimTime::ZERO,
        }
        .flits()
        .next()
        .expect("packet has a head flit")
    }

    fn kinds(san: &SimSanitizer) -> Vec<&ViolationKind> {
        san.violations.iter().map(|v| &v.kind).collect()
    }

    #[test]
    fn clean_network_has_no_violations() {
        let n = net();
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink);
        san.check_tick(&n, &mut NullSink);
        assert_eq!(san.violation_count(), 0);
        assert_eq!(san.sweeps(), 2);
        assert!(san.first_violation().is_none());
    }

    #[test]
    fn disabled_sanitizer_checks_nothing() {
        let mut n = net();
        n.routers[3].buffered_flits = 99; // corrupt — must go unnoticed
        let mut san = SimSanitizer::disabled();
        assert!(!san.is_enabled());
        san.check_tick(&n, &mut NullSink);
        assert_eq!(san.violation_count(), 0);
        assert_eq!(san.sweeps(), 0);
    }

    #[test]
    fn corrupted_flit_counter_is_credit_violation() {
        let mut n = net();
        n.routers[5].buffered_flits += 1;
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink);
        let v = san.first_violation().expect("violation detected");
        assert_eq!(v.router, Some(dozznoc_types::RouterId(5)));
        assert_eq!(
            v.kind,
            ViolationKind::CreditConservation {
                counted: 1,
                actual: 0
            }
        );
    }

    #[test]
    fn lost_flit_is_conservation_violation() {
        let mut n = net();
        n.in_flight += 3; // claims flits exist that no buffer holds
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink);
        assert!(kinds(&san).iter().any(|k| matches!(
            k,
            ViolationKind::FlitConservation {
                in_flight: 3,
                queued: 0,
                buffered: 0
            }
        )));
    }

    #[test]
    fn stalled_vc_trips_the_watchdog() {
        let mut n = net();
        let local = dozznoc_topology::Port::Local(0).index();
        // Count the planted flit everywhere so only the stall fires.
        n.routers[7].ports[local].vc_mut(0).push(head_flit(0), 1);
        n.routers[7].buffered_flits += 1;
        n.in_flight += 1;
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink); // arms the watchdog
        assert_eq!(san.violation_count(), 0);
        n.now = 200_000; // 10 µs at 18 GHz is 180 000 ticks
                         // The jump strands every router's deadline; re-arm them so only
                         // the watchdog is under test.
        for i in 0..n.routers.len() {
            n.routers[i].next_cycle_at = n.now + 8;
            n.sched.push(std::cmp::Reverse((n.now + 8, i as u32)));
        }
        let mut tel = TimelineSink::new();
        san.check_tick(&n, &mut tel);
        let v = san.first_violation().expect("watchdog fired");
        assert_eq!(v.router, Some(dozznoc_types::RouterId(7)));
        assert_eq!(v.port, Some(local));
        assert_eq!(v.vc, Some(0));
        assert!(matches!(
            v.kind,
            ViolationKind::VcStall {
                packet: PacketId(0),
                seq: 0,
                ..
            }
        ));
        // The violation also reached the telemetry sink.
        assert_eq!(tel.violations.len(), san.violations.len());
    }

    #[test]
    fn watchdog_rearms_instead_of_flooding() {
        let mut n = net();
        let local = dozznoc_topology::Port::Local(0).index();
        n.routers[7].ports[local].vc_mut(0).push(head_flit(0), 1);
        n.routers[7].buffered_flits += 1;
        n.in_flight += 1;
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink);
        n.now = 200_000;
        for i in 0..n.routers.len() {
            n.routers[i].next_cycle_at = n.now + 8;
            n.sched.push(std::cmp::Reverse((n.now + 8, i as u32)));
        }
        san.check_tick(&n, &mut NullSink);
        let after_first = san.violation_count();
        // Immediately re-checking at the same tick must not re-report.
        san.check_tick(&n, &mut NullSink);
        assert_eq!(san.violation_count(), after_first);
    }

    #[test]
    fn sleeping_router_without_heap_entry_is_schedule_violation() {
        let mut n = net();
        // Fake a fired tick: everyone re-armed to now + divisor except
        // router 4, whose deadline was reached but never re-pushed.
        n.now = 16;
        for i in 0..n.routers.len() {
            n.routers[i].next_cycle_at = 24;
            n.sched.push(std::cmp::Reverse((24, i as u32)));
        }
        n.routers[4].next_cycle_at = 30; // no heap entry backs this
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink);
        let v = san.first_violation().expect("schedule violation");
        assert_eq!(v.router, Some(dozznoc_types::RouterId(4)));
        assert_eq!(
            v.kind,
            ViolationKind::ScheduleConsistency {
                next_cycle_at: 30,
                has_entry: false
            }
        );
    }

    #[test]
    fn stale_deadline_is_schedule_violation_even_with_entry() {
        let mut n = net();
        n.now = 16;
        for i in 0..n.routers.len() {
            n.routers[i].next_cycle_at = 24;
            n.sched.push(std::cmp::Reverse((24, i as u32)));
        }
        // Router 2's deadline sits in the past (missed cycle).
        n.routers[2].next_cycle_at = 10;
        n.sched.push(std::cmp::Reverse((10, 2)));
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink);
        assert!(kinds(&san).iter().any(|k| matches!(
            k,
            ViolationKind::ScheduleConsistency {
                next_cycle_at: 10,
                has_entry: true
            }
        )));
    }

    #[test]
    fn out_of_order_ready_ticks_are_causality_violation() {
        let mut n = net();
        let local = dozznoc_topology::Port::Local(0).index();
        let flits: Vec<_> = Packet {
            id: PacketId(1),
            src: CoreId(0),
            dst: CoreId(9),
            kind: PacketKind::Response,
            inject_time: SimTime::ZERO,
        }
        .flits()
        .collect();
        let vc = n.routers[0].ports[local].vc_mut(0);
        vc.push(flits[0], 9);
        vc.push(flits[1], 3); // ready before its predecessor
        n.routers[0].buffered_flits += 2;
        n.in_flight += 2;
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink);
        assert!(kinds(&san).iter().any(|k| matches!(
            k,
            ViolationKind::ClockCausality {
                ready_at: 3,
                bound: 9
            }
        )));
    }

    #[test]
    fn broken_wormhole_linkage_is_detected() {
        let mut n = net();
        let local = dozznoc_topology::Port::Local(0).index();
        n.routers[0].ports[local].vc_mut(0).push(head_flit(2), 1);
        n.routers[0].buffered_flits += 1;
        n.in_flight += 1;
        // Claim a downstream VC allocation that was never granted: the
        // east neighbor's matching VC is unowned.
        n.routers[0].ports[local].vc_mut(0).set_route(VcRoute {
            out_port: Port::Dir(Direction::East),
            next_router: Some(dozznoc_types::RouterId(1)),
            out_vc: Some(0),
        });
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink);
        assert!(kinds(&san).iter().any(|k| matches!(
            k,
            ViolationKind::WormholeState {
                reason: "downstream VC not owned by the allocated packet"
            }
        )));
    }

    #[test]
    fn state_since_in_the_future_is_causality_violation() {
        let mut n = net();
        n.routers[11].state_since = SimTime::from_ticks(500);
        let mut san = SimSanitizer::default();
        san.check_tick(&n, &mut NullSink); // now == 0 < 500
        assert!(kinds(&san)
            .iter()
            .any(|k| matches!(k, ViolationKind::StateCausality { state_since: 500 })));
    }

    #[test]
    fn recording_caps_but_counting_does_not() {
        let mut n = net();
        for i in 0..n.routers.len() {
            n.routers[i].buffered_flits += 1; // 64 violations per sweep
        }
        let mut san = SimSanitizer::new(SanitizerConfig {
            max_recorded: 3,
            ..SanitizerConfig::default()
        });
        san.check_tick(&n, &mut NullSink);
        assert_eq!(san.violations.len(), 3);
        assert_eq!(san.violation_count(), 64);
        let report = san.report();
        assert_eq!(report.total_violations, 64);
        assert_eq!(report.violations.len(), 3);
        assert_eq!(report.sweeps, 1);
    }

    #[test]
    fn violations_serialize_for_the_jsonl_sink() {
        let v = InvariantViolation {
            tick: 42,
            router: Some(dozznoc_types::RouterId(3)),
            port: Some(1),
            vc: Some(0),
            kind: ViolationKind::CreditConservation {
                counted: 2,
                actual: 1,
            },
        };
        let json = serde_json::to_string(&v).expect("violation serializes");
        assert!(json.contains("CreditConservation"), "{json}");
        assert!(json.contains("42"), "{json}");
    }
}
