//! Per-router state: power state machine, input buffers, clocking and
//! epoch counters.
//!
//! The router is a passive data structure; the cross-router pipeline
//! (switch allocation, hops, wake-ups) lives in [`crate::network`]
//! because it needs simultaneous access to both ends of every link.

use dozznoc_types::{DomainCycles, Mode, PowerState, RouterId, SimTime};

use crate::buffer::InputPort;
use crate::config::NocConfig;
use crate::observation::{EpochObservation, PortClassStats};

/// Number of port classes (N, S, E, W, local-aggregate).
pub const PORT_CLASSES: usize = 5;

/// Map a dense port index to its class (local ports collapse to class 4).
#[inline]
pub fn port_class(port_index: usize) -> usize {
    port_index.min(4)
}

/// Raw per-epoch event counters; normalized into an
/// [`EpochObservation`] at each epoch boundary.
#[derive(Debug, Clone, Default)]
pub struct EpochCounters {
    /// Local cycles elapsed this epoch.
    pub cycles: u64,
    /// Sum over cycles of total input occupancy (flits).
    pub occupancy_flit_cycles: u64,
    /// Peak single-cycle occupancy (flits).
    pub occupancy_peak: u64,
    /// Sum over cycles of per-class occupancy (flits).
    pub class_occupancy: [u64; PORT_CLASSES],
    /// Flits received per class.
    pub flits_in: [u64; PORT_CLASSES],
    /// Flits sent per class.
    pub flits_out: [u64; PORT_CLASSES],
    /// Cycles with at least one flit sent out of the class.
    pub class_busy_cycles: [u64; PORT_CLASSES],
    /// Request packets injected by attached cores.
    pub reqs_sent: u64,
    /// Request packets delivered to attached cores.
    pub reqs_recv: u64,
    /// Response packets injected by attached cores.
    pub resps_sent: u64,
    /// Response packets delivered to attached cores.
    pub resps_recv: u64,
    /// Flits injected by attached cores.
    pub flits_injected: u64,
    /// Flits delivered to attached cores.
    pub flits_ejected: u64,
    /// Flit-hops routed through the switch.
    pub hops: u64,
    /// Cycles at least one ready head flit lost switch allocation
    /// (at most one per local cycle, however many ports contended).
    pub stall_cycles: u64,
    /// Cycles at least one output had every candidate blocked on
    /// downstream state or space (at most one per local cycle).
    pub credit_stall_cycles: u64,
    /// Cycles with all input buffers empty.
    pub idle_cycles: u64,
    /// Cycles secured as a downstream router.
    pub secured_cycles: u64,
    /// Base ticks spent gated during this epoch.
    pub off_ticks: u64,
}

impl EpochCounters {
    fn reset(&mut self) {
        *self = EpochCounters::default();
    }
}

/// One router of the simulated network.
#[derive(Debug, Clone)]
pub struct Router {
    /// This router's id.
    pub id: RouterId,
    /// Current power state.
    pub state: PowerState,
    /// The policy's current active-mode choice (wake-up target while
    /// gated).
    pub selected_mode: Mode,
    /// Input ports, indexed by `Port::index`.
    pub ports: Vec<InputPort>,
    /// Tick at which the next local cycle fires.
    pub next_cycle_at: u64,
    /// Router performs no flit movement before this tick (T-Switch /
    /// residual pipeline stall).
    pub stall_until: u64,
    /// When the current power state was entered (residency billing).
    pub state_since: SimTime,
    /// When the router gated off, if currently off or waking
    /// (T-Breakeven accounting).
    pub off_since: Option<SimTime>,
    /// Consecutive idle cycles (T-Idle counter).
    pub idle_streak: u64,
    /// Round-robin switch-allocation pointer per output port.
    pub sa_rr: Vec<usize>,
    /// Buffered-flit count, maintained incrementally by the network at
    /// every buffer push/pop. Lets the per-cycle pipeline skip the
    /// route-compute and switch-allocation scans outright for routers
    /// with nothing buffered (the common case); asserted against the
    /// authoritative [`Router::occupancy`] scan in debug builds.
    pub buffered_flits: u32,
    /// Local cycles into the current epoch.
    pub cycles_into_epoch: u64,
    /// Epochs completed.
    pub epochs: u64,
    /// Raw counters for the current epoch.
    pub counters: EpochCounters,
    /// Previous epoch's mean IBU.
    pub prev_ibu: f64,
    /// EWMA of epoch IBUs, α = 0.5.
    pub ewma_short: f64,
    /// EWMA of epoch IBUs, α = 0.1.
    pub ewma_long: f64,
    /// Lifetime base ticks spent gated.
    pub total_off_ticks: u64,
    /// Lifetime wake-up count.
    pub lifetime_wakeups: u64,
    /// Lifetime gate-off count.
    pub lifetime_gate_offs: u64,
    buffer_capacity: usize,
    class_capacity: [usize; PORT_CLASSES],
    class_ports: [usize; PORT_CLASSES],
}

impl Router {
    /// A fresh router in the baseline state (active at M7).
    pub fn new(id: RouterId, cfg: &NocConfig) -> Self {
        let n_ports = cfg.topology.ports_per_router();
        let ports: Vec<InputPort> = (0..n_ports)
            .map(|_| InputPort::new(cfg.vcs_per_port, cfg.vc_depth))
            .collect();
        let per_port = cfg.vcs_per_port * cfg.vc_depth;
        let mut class_capacity = [0usize; PORT_CLASSES];
        let mut class_ports = [0usize; PORT_CLASSES];
        for p in 0..n_ports {
            class_capacity[port_class(p)] += per_port;
            class_ports[port_class(p)] += 1;
        }
        Router {
            id,
            state: PowerState::Active(Mode::M7),
            selected_mode: Mode::M7,
            ports,
            next_cycle_at: 0,
            stall_until: 0,
            state_since: SimTime::ZERO,
            off_since: None,
            idle_streak: 0,
            sa_rr: vec![0; n_ports],
            buffered_flits: 0,
            cycles_into_epoch: 0,
            epochs: 0,
            counters: EpochCounters::default(),
            prev_ibu: 0.0,
            ewma_short: 0.0,
            ewma_long: 0.0,
            total_off_ticks: 0,
            lifetime_wakeups: 0,
            lifetime_gate_offs: 0,
            buffer_capacity: cfg.buffer_capacity(),
            class_capacity,
            class_ports,
        }
    }

    /// Total input occupancy (flits).
    pub fn occupancy(&self) -> usize {
        self.ports.iter().map(InputPort::occupancy).sum()
    }

    /// Input-buffer utilization right now (fraction of capacity).
    pub fn ibu_now(&self) -> f64 {
        self.occupancy() as f64 / self.buffer_capacity as f64
    }

    /// True when every input buffer is empty.
    pub fn buffers_empty(&self) -> bool {
        self.ports.iter().all(InputPort::is_empty)
    }

    /// The clock divisor the router ticks at in its current state.
    /// Gated/waking routers keep a slow M3-rate heartbeat for the
    /// always-on power-management logic.
    pub fn divisor(&self) -> u64 {
        match self.state {
            PowerState::Active(m) => m.divisor(),
            PowerState::Wakeup { target, .. } => target.divisor(),
            PowerState::Inactive => Mode::M3.divisor(),
        }
    }

    /// True when the router may move flits this tick.
    pub fn operational(&self, tick: u64) -> bool {
        self.state.is_operational() && tick >= self.stall_until
    }

    /// Sample per-cycle gauges into the epoch counters. `secured` is the
    /// network's downstream-secure count for this router.
    pub fn sample_cycle(&mut self, secured: bool) {
        let c = &mut self.counters;
        c.cycles += 1;
        let mut occ = 0u64;
        for (p, port) in self.ports.iter().enumerate() {
            let po = port.occupancy() as u64;
            occ += po;
            c.class_occupancy[port_class(p)] += po;
        }
        c.occupancy_flit_cycles += occ;
        c.occupancy_peak = c.occupancy_peak.max(occ);
        if occ == 0 {
            c.idle_cycles += 1;
            self.idle_streak += 1;
        } else {
            self.idle_streak = 0;
        }
        if secured {
            c.secured_cycles += 1;
        }
    }

    /// True when the epoch boundary has been reached.
    pub fn at_epoch_boundary(&self, epoch_cycles: u64) -> bool {
        self.cycles_into_epoch >= epoch_cycles
    }

    /// Snapshot and reset the epoch counters, updating IBU histories.
    pub fn end_epoch(&mut self, total_elapsed_ticks: u64) -> EpochObservation {
        let c = &self.counters;
        let cycles = c.cycles.max(1);
        let cyc = cycles as f64;
        let cap = self.buffer_capacity as f64;
        let ibu = c.occupancy_flit_cycles as f64 / (cyc * cap);
        let ibu_peak = c.occupancy_peak as f64 / cap;

        let mut port_classes = [PortClassStats::default(); PORT_CLASSES];
        for (i, pc) in port_classes.iter_mut().enumerate() {
            let class_cap = self.class_capacity[i].max(1) as f64;
            let n_ports = self.class_ports[i].max(1) as f64;
            pc.occupancy = c.class_occupancy[i] as f64 / (cyc * class_cap);
            pc.flits_in = c.flits_in[i] as f64 / cyc;
            pc.flits_out = c.flits_out[i] as f64 / cyc;
            pc.link_utilization = (c.class_busy_cycles[i] as f64 / (cyc * n_ports)).min(1.0);
        }

        let epoch_ticks = DomainCycles::new(cycles)
            .to_ticks(self.divisor())
            .ticks()
            .max(1) as f64;
        let epochs_elapsed = (self.epochs + 1) as f64;
        let obs = EpochObservation {
            router: self.id,
            epoch: self.epochs,
            cycles,
            ibu,
            ibu_peak,
            prev_ibu: self.prev_ibu,
            ibu_ewma_short: self.ewma_short,
            ibu_ewma_long: self.ewma_long,
            reqs_sent: c.reqs_sent as f64 / cyc,
            reqs_recv: c.reqs_recv as f64 / cyc,
            resps_sent: c.resps_sent as f64 / cyc,
            resps_recv: c.resps_recv as f64 / cyc,
            total_off_fraction: self.total_off_ticks as f64 / total_elapsed_ticks.max(1) as f64,
            epoch_off_fraction: (c.off_ticks as f64 / epoch_ticks).min(1.0),
            wakeup_rate: (self.lifetime_wakeups as f64 / epochs_elapsed).min(1.0),
            gate_off_rate: (self.lifetime_gate_offs as f64 / epochs_elapsed).min(1.0),
            secured_fraction: c.secured_cycles as f64 / cyc,
            idle_fraction: c.idle_cycles as f64 / cyc,
            port_classes,
            flits_injected: c.flits_injected as f64 / cyc,
            flits_ejected: c.flits_ejected as f64 / cyc,
            hops_routed: c.hops as f64 / cyc,
            stall_fraction: (c.stall_cycles as f64 / cyc).min(1.0),
            credit_stall_fraction: (c.credit_stall_cycles as f64 / cyc).min(1.0),
            mode: self.selected_mode,
        };
        debug_assert!(obs.is_well_formed(), "malformed observation: {obs:?}");

        // Update histories for the next epoch's features.
        self.ewma_short = 0.5 * ibu + 0.5 * self.ewma_short;
        self.ewma_long = 0.1 * ibu + 0.9 * self.ewma_long;
        self.prev_ibu = ibu;
        self.epochs += 1;
        self.cycles_into_epoch = 0;
        self.counters.reset();
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dozznoc_topology::Topology;

    fn router() -> Router {
        Router::new(RouterId(3), &NocConfig::paper(Topology::mesh8x8()))
    }

    #[test]
    fn starts_in_baseline_state() {
        let r = router();
        assert_eq!(r.state, PowerState::Active(Mode::M7));
        assert_eq!(r.selected_mode, Mode::M7);
        assert_eq!(r.divisor(), 8);
        assert!(r.buffers_empty());
        assert_eq!(r.ibu_now(), 0.0);
        assert_eq!(r.ports.len(), 5);
    }

    #[test]
    fn heartbeat_divisors() {
        let mut r = router();
        r.state = PowerState::Inactive;
        assert_eq!(r.divisor(), Mode::M3.divisor());
        r.state = PowerState::Wakeup {
            target: Mode::M6,
            until: SimTime::ZERO,
        };
        assert_eq!(r.divisor(), Mode::M6.divisor());
    }

    #[test]
    fn operational_requires_active_and_unstalled() {
        let mut r = router();
        assert!(r.operational(0));
        r.stall_until = 100;
        assert!(!r.operational(99));
        assert!(r.operational(100));
        r.state = PowerState::Inactive;
        assert!(!r.operational(200));
    }

    #[test]
    fn idle_streak_tracks_empty_cycles() {
        let mut r = router();
        for _ in 0..4 {
            r.sample_cycle(false);
        }
        assert_eq!(r.idle_streak, 4);
        assert_eq!(r.counters.idle_cycles, 4);
    }

    #[test]
    fn end_epoch_produces_well_formed_observation() {
        let mut r = router();
        for _ in 0..500 {
            r.sample_cycle(false);
            r.cycles_into_epoch += 1;
        }
        assert!(r.at_epoch_boundary(500));
        let obs = r.end_epoch(4000);
        assert!(obs.is_well_formed());
        assert_eq!(obs.epoch, 0);
        assert_eq!(obs.cycles, 500);
        assert_eq!(obs.ibu, 0.0);
        assert_eq!(obs.idle_fraction, 1.0);
        // Counters reset for the next epoch.
        assert_eq!(r.counters.cycles, 0);
        assert_eq!(r.epochs, 1);
        assert_eq!(r.cycles_into_epoch, 0);
    }

    #[test]
    fn ewma_histories_update() {
        let mut r = router();
        // First epoch with some synthetic occupancy.
        r.counters.cycles = 100;
        r.counters.occupancy_flit_cycles = 100 * 40; // half of the 80-flit capacity
        r.counters.occupancy_peak = 60;
        r.cycles_into_epoch = 100;
        let obs = r.end_epoch(1000);
        assert!((obs.ibu - 0.5).abs() < 1e-12);
        assert_eq!(obs.prev_ibu, 0.0);
        // Next epoch sees the histories.
        r.counters.cycles = 100;
        r.cycles_into_epoch = 100;
        let obs2 = r.end_epoch(2000);
        assert!((obs2.prev_ibu - 0.5).abs() < 1e-12);
        assert!((obs2.ibu_ewma_short - 0.25).abs() < 1e-12);
        assert!((obs2.ibu_ewma_long - 0.05).abs() < 1e-12);
    }

    #[test]
    fn port_class_mapping() {
        assert_eq!(port_class(0), 0);
        assert_eq!(port_class(3), 3);
        assert_eq!(port_class(4), 4);
        assert_eq!(port_class(7), 4);
    }

    #[test]
    fn cmesh_class_capacity_aggregates_locals() {
        let r = Router::new(RouterId(0), &NocConfig::paper(Topology::cmesh4x4()));
        // 8 ports: 4 dirs + 4 locals; class 4 holds 4 ports × 16 flits.
        assert_eq!(r.ports.len(), 8);
        assert_eq!(r.class_capacity[4], 4 * 16);
        assert_eq!(r.class_ports[4], 4);
    }
}
