//! Shared fixtures for the Criterion benchmarks.
//!
//! Each paper table/figure has a bench group that measures the kernel
//! regenerating it (see `benches/`). Simulation-driven benches use
//! deliberately short traces: Criterion needs repeatable sub-second
//! iterations, while the full-length reproduction lives in
//! `dozz-repro`.

pub mod regimes;

use dozznoc_core::{ModelSuite, Trainer};
use dozznoc_ml::FeatureSet;
use dozznoc_noc::NocConfig;
use dozznoc_topology::Topology;
use dozznoc_traffic::{Benchmark, Trace, TraceGenerator};

/// Trace horizon for bench-sized simulations (ns).
pub const BENCH_TRACE_NS: u64 = 2_000;

/// The benchmark trace every simulation bench injects.
pub fn bench_trace() -> Trace {
    TraceGenerator::new(Topology::mesh8x8())
        .with_duration_ns(BENCH_TRACE_NS)
        .generate(Benchmark::X264)
}

/// Simulator config for bench runs.
pub fn bench_config() -> NocConfig {
    NocConfig::paper(Topology::mesh8x8())
}

/// A trained model suite on bench-sized traces (trained once per bench
/// process).
pub fn bench_suite() -> ModelSuite {
    let trainer = Trainer::new(Topology::mesh8x8()).with_duration_ns(BENCH_TRACE_NS);
    ModelSuite::train(&trainer, FeatureSet::Reduced5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_materialize() {
        let t = bench_trace();
        assert!(!t.is_empty());
        assert_eq!(bench_config().epoch_cycles, 500);
    }
}
