//! Load-regime trace fixtures for the `cargo xtask bench` harness.
//!
//! The perf yardstick (ROADMAP item 5) does not measure the paper's
//! benchmark traces — those are calibrated for *energy* realism, not
//! for stressing the simulator. Instead it runs three synthetic load
//! regimes chosen to pin distinct hot paths, mirroring the
//! hot/pressure/thrash regime matrix of the simpledb exemplar:
//!
//! * **light** — low uniform-random load. Routers are mostly empty, so
//!   the event heap, empty-router skip and power-gating bookkeeping
//!   dominate; this is the regime where per-event overhead shows.
//! * **saturation** — uniform-random load near the injection rate where
//!   offered traffic saturates XY routing on an 8×8 mesh. Switch
//!   allocation, VC arbitration and credit stalls dominate.
//! * **pathological-hotspot** — a large fraction of all packets
//!   converge on one core. Tree-shaped congestion around the hot
//!   router: worst-case queueing depth and backpressure propagation.
//!
//! Fixtures are deterministic (seeded) and topology-generic, so the
//! same regime runs on `mesh8x8` and `cmesh4x4` produce comparable
//! work. Both the harness (`dozz-repro bench-cell`) and the Criterion
//! benches can build traces from here.

use dozznoc_topology::Topology;
use dozznoc_traffic::patterns::{self, Pattern};
use dozznoc_traffic::Trace;
use dozznoc_types::CoreId;

/// One load regime of the bench matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Low uniform load: event-scheduling overhead dominates.
    Light,
    /// Near-saturation uniform load: allocation/arbitration dominates.
    Saturation,
    /// Heavy convergence on one core: worst-case congestion.
    Hotspot,
}

/// All regimes in matrix order.
pub const ALL_REGIMES: [Regime; 3] = [Regime::Light, Regime::Saturation, Regime::Hotspot];

impl Regime {
    /// Stable, filename-safe regime name (the bench schema key).
    pub fn name(self) -> &'static str {
        match self {
            Regime::Light => "light",
            Regime::Saturation => "saturation",
            Regime::Hotspot => "pathological-hotspot",
        }
    }

    /// Parse a regime name as emitted by [`Regime::name`].
    pub fn parse(s: &str) -> Option<Regime> {
        ALL_REGIMES.into_iter().find(|r| r.name() == s)
    }

    /// Injection probability per core per nanosecond slot.
    ///
    /// Calibration: the 8×8 mesh under uniform random XY saturates
    /// around 0.10–0.15 packets/core/ns at the paper's link/VC
    /// configuration; light sits far below that knee, saturation just
    /// past it, and the hotspot regime offers moderate aggregate load
    /// whose *spatial* concentration does the damage.
    pub fn injection_rate(self) -> f64 {
        match self {
            Regime::Light => 0.015,
            Regime::Saturation => 0.12,
            Regime::Hotspot => 0.05,
        }
    }

    /// The destination pattern the regime injects on `topo`.
    pub fn pattern(self, topo: &Topology) -> Pattern {
        match self {
            Regime::Light | Regime::Saturation => Pattern::UniformRandom,
            Regime::Hotspot => Pattern::Hotspot {
                // Centre-ish core: maximally shielded by surrounding
                // traffic, so congestion trees span the whole mesh.
                hot: CoreId::from(topo.num_cores() / 2),
                percent: 40,
            },
        }
    }
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build one deterministic regime trace. The name encodes regime and
/// seed (`light-s3`) so the run cache and result rows stay
/// distinguishable across the seed sweep.
pub fn regime_trace(regime: Regime, topo: &Topology, duration_ns: u64, seed: u64) -> Trace {
    let trace = patterns::generate(
        regime.pattern(topo),
        topo,
        regime.injection_rate(),
        duration_ns,
        // Decorrelate the regimes: the same seed must not produce the
        // same injection coin-flips in every regime.
        seed ^ (regime as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    Trace::new(
        format!("{}-s{seed}", regime.name()),
        topo.num_cores(),
        trace.packets().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dozznoc_topology::Topology;

    #[test]
    fn names_round_trip() {
        for r in ALL_REGIMES {
            assert_eq!(Regime::parse(r.name()), Some(r));
        }
        assert_eq!(Regime::parse("no-such-regime"), None);
    }

    #[test]
    fn traces_are_deterministic_and_named() {
        let topo = Topology::mesh8x8();
        let a = regime_trace(Regime::Light, &topo, 1_000, 7);
        let b = regime_trace(Regime::Light, &topo, 1_000, 7);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.name, "light-s7");
        assert!(!a.is_empty());
    }

    #[test]
    fn seeds_and_regimes_decorrelate() {
        let topo = Topology::mesh8x8();
        let base = regime_trace(Regime::Light, &topo, 1_000, 0);
        assert_ne!(
            base.digest(),
            regime_trace(Regime::Light, &topo, 1_000, 1).digest()
        );
        assert_ne!(
            base.digest(),
            regime_trace(Regime::Saturation, &topo, 1_000, 0).digest()
        );
    }

    #[test]
    fn saturation_offers_much_more_load_than_light() {
        let topo = Topology::mesh8x8();
        let light = regime_trace(Regime::Light, &topo, 2_000, 0);
        let sat = regime_trace(Regime::Saturation, &topo, 2_000, 0);
        assert!(
            sat.len() > 4 * light.len(),
            "saturation {} vs light {}",
            sat.len(),
            light.len()
        );
    }

    #[test]
    fn hotspot_concentrates_destinations() {
        let topo = Topology::mesh8x8();
        let t = regime_trace(Regime::Hotspot, &topo, 2_000, 0);
        let hot = CoreId::from(topo.num_cores() / 2);
        let on_hot = t.packets().iter().filter(|p| p.dst == hot).count();
        let frac = on_hot as f64 / t.len() as f64;
        assert!((0.3..0.55).contains(&frac), "hotspot fraction {frac}");
    }

    #[test]
    fn regimes_build_on_cmesh_too() {
        let topo = Topology::cmesh4x4();
        for r in ALL_REGIMES {
            let t = regime_trace(r, &topo, 1_000, 0);
            assert!(!t.is_empty(), "{r}");
        }
    }
}
