//! Traffic benches: synthetic benchmark generation and trace transforms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dozznoc_topology::Topology;
use dozznoc_traffic::patterns::{generate, Pattern};
use dozznoc_traffic::{Benchmark, TraceGenerator};

/// Generating one synthetic PARSEC-like trace (the Fig. 7–8 inputs).
fn generate_benchmark_trace(c: &mut Criterion) {
    let generator = TraceGenerator::new(Topology::mesh8x8()).with_duration_ns(2_000);
    c.bench_function("traffic/generate_benchmark_trace", |b| {
        b.iter(|| black_box(generator.generate(Benchmark::X264)))
    });
}

/// Generating a classic uniform-random pattern trace.
fn generate_uniform_pattern(c: &mut Criterion) {
    let topo = Topology::mesh8x8();
    c.bench_function("traffic/generate_uniform_pattern", |b| {
        b.iter(|| black_box(generate(Pattern::UniformRandom, &topo, 0.02, 1_000, 7)))
    });
}

/// Compressing a trace (the Fig. 8(a,b) preprocessing).
fn compress_trace(c: &mut Criterion) {
    let trace = TraceGenerator::new(Topology::mesh8x8())
        .with_duration_ns(4_000)
        .generate(Benchmark::Fft);
    c.bench_function("traffic/compress_trace", |b| {
        b.iter(|| black_box(trace.rescale(2, 3)))
    });
}

/// Trace statistics (the calibration checks).
fn trace_stats(c: &mut Criterion) {
    let trace = TraceGenerator::new(Topology::mesh8x8())
        .with_duration_ns(4_000)
        .generate(Benchmark::Canneal);
    c.bench_function("traffic/trace_stats", |b| {
        b.iter(|| black_box(trace.stats()))
    });
}

criterion_group!(
    benches,
    generate_benchmark_trace,
    generate_uniform_pattern,
    compress_trace,
    trace_stats
);
criterion_main!(benches);
