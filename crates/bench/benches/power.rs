//! Energy-model benches: the Table V cost model and the ledger the
//! simulator bills every event to (hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dozznoc_power::{DsentCosts, EnergyLedger, MlOverhead};
use dozznoc_types::{Mode, PowerState, RouterId, TickDelta, ACTIVE_MODES};

/// Table V: cost lookups across the mode range.
fn table5_costs(c: &mut Criterion) {
    let costs = DsentCosts::paper();
    c.bench_function("power/table5_costs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in ACTIVE_MODES {
                acc += costs.static_power_w(black_box(m)) + costs.dynamic_j_per_hop(black_box(m));
            }
            black_box(acc)
        })
    });
}

/// Ledger hop billing — executed once per flit-hop in the simulator.
fn ledger_bill_hop(c: &mut Criterion) {
    let mut ledger = EnergyLedger::new(64);
    c.bench_function("power/ledger_bill_hop", |b| {
        b.iter(|| ledger.bill_hop(black_box(RouterId(17)), black_box(Mode::M5)))
    });
}

/// Ledger residency billing — executed on every state transition.
fn ledger_bill_residency(c: &mut Criterion) {
    let mut ledger = EnergyLedger::new(64);
    let dt = TickDelta::from_ticks(4_000);
    c.bench_function("power/ledger_bill_residency", |b| {
        b.iter(|| {
            ledger.bill_residency(
                black_box(RouterId(3)),
                black_box(PowerState::Active(Mode::M4)),
                black_box(dt),
            )
        })
    });
}

/// Full-ledger aggregation into a report (end of every run).
fn ledger_report(c: &mut Criterion) {
    let mut ledger = EnergyLedger::new(64);
    for i in 0..64u16 {
        ledger.bill_residency(
            RouterId(i),
            PowerState::Active(Mode::M7),
            TickDelta::from_ticks(1_000_000),
        );
        for _ in 0..100 {
            ledger.bill_hop(RouterId(i), Mode::M6);
        }
        ledger.bill_label(RouterId(i), &MlOverhead::for_features(5));
    }
    c.bench_function("power/ledger_report", |b| {
        b.iter(|| black_box(ledger.report()))
    });
}

criterion_group!(
    benches,
    table5_costs,
    ledger_bill_hop,
    ledger_bill_residency,
    ledger_report
);
criterion_main!(benches);
