//! Topology benches: the routing functions executed on every head flit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dozznoc_topology::{Topology, XyRouter};
use dozznoc_types::{CoreId, RouterId};

/// Single output-port computation (per head flit per hop).
fn xy_output_port(c: &mut Criterion) {
    let xy = XyRouter::new(Topology::mesh8x8());
    c.bench_function("topology/xy_output_port", |b| {
        b.iter(|| black_box(xy.output_port(black_box(RouterId(9)), black_box(CoreId(54)))))
    });
}

/// Look-ahead next-hop computation (per head flit per hop).
fn xy_next_hop(c: &mut Criterion) {
    let xy = XyRouter::new(Topology::mesh8x8());
    c.bench_function("topology/xy_next_hop", |b| {
        b.iter(|| black_box(xy.next_hop(black_box(RouterId(9)), black_box(CoreId(54)))))
    });
}

/// Full path enumeration (the Power Punch wake walk at injection).
fn xy_full_path(c: &mut Criterion) {
    let xy = XyRouter::new(Topology::mesh8x8());
    c.bench_function("topology/xy_full_path", |b| {
        b.iter(|| black_box(xy.path(black_box(CoreId(0)), black_box(CoreId(63))).len()))
    });
}

/// All-pairs hop distance (trace-generator neighbourhood setup).
fn all_pairs_distance(c: &mut Criterion) {
    let topo = Topology::mesh8x8();
    c.bench_function("topology/all_pairs_distance", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in topo.routers() {
                for bb in topo.routers() {
                    acc += topo.hop_distance(a, bb);
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    xy_output_port,
    xy_next_hop,
    xy_full_path,
    all_pairs_distance
);
criterion_main!(benches);
