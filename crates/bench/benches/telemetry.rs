//! Telemetry overhead: the fig8 kernel (all five models, one trace)
//! with telemetry disabled (`NullSink`) against the plain `run_model`
//! path, plus the cost of actually recording with a `TimelineSink`.
//!
//! The acceptance bar is that the NullSink path stays within 2% of the
//! plain path: a disabled sink short-circuits every hook behind one
//! boolean, so the two must be statistically indistinguishable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dozznoc_bench::{bench_config, bench_suite, bench_trace};
use dozznoc_core::{run_model, run_model_with_telemetry, ModelKind};
use dozznoc_noc::{NullSink, TimelineSink};

fn all_models(c: &mut Criterion, name: &str, mut run: impl FnMut(ModelKind) -> u64) {
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);
    g.bench_function(name, |b| {
        b.iter(|| {
            let mut total = 0u64;
            for kind in dozznoc_core::model::ALL_MODELS {
                total += run(kind);
            }
            black_box(total)
        })
    });
    g.finish();
}

/// Reference: the plain path with no telemetry parameter at all.
fn fig8_plain(c: &mut Criterion) {
    let trace = bench_trace();
    let suite = bench_suite();
    all_models(c, "fig8_plain", |kind| {
        run_model(bench_config(), &trace, kind, &suite)
            .stats
            .flits_delivered
    });
}

/// Disabled telemetry: must stay within 2% of `fig8_plain`.
fn fig8_null_sink(c: &mut Criterion) {
    let trace = bench_trace();
    let suite = bench_suite();
    all_models(c, "fig8_null_sink", |kind| {
        let mut sink = NullSink;
        run_model_with_telemetry(bench_config(), &trace, kind, &suite, &mut sink)
            .stats
            .flits_delivered
    });
}

/// Enabled telemetry: what full per-epoch capture costs.
fn fig8_timeline_sink(c: &mut Criterion) {
    let trace = bench_trace();
    let suite = bench_suite();
    all_models(c, "fig8_timeline_sink", |kind| {
        let mut sink = TimelineSink::new();
        let flits = run_model_with_telemetry(bench_config(), &trace, kind, &suite, &mut sink)
            .stats
            .flits_delivered;
        black_box(sink.epochs.len());
        flits
    });
}

criterion_group!(benches, fig8_plain, fig8_null_sink, fig8_timeline_sink);
criterion_main!(benches);
