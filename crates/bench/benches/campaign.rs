//! Campaign-engine benches: matrix throughput through the cell
//! scheduler and the content-addressed run cache.
//!
//! Four configurations of the same (benchmark × model) matrix:
//!
//! * `cold/jobs1` — sequential simulation, no cache (the old engine's
//!   lower bound).
//! * `cold/jobsN` — the work-stealing scheduler on every available
//!   core; the cold N-worker vs. 1-worker ratio is the scheduler's
//!   speedup on this machine.
//! * `warm/jobs1` and `warm/jobsN` — every cell replays from a
//!   pre-filled run cache; no simulation happens at all, so these
//!   measure pure cache-replay overhead.
//!
//! CI uploads the group as `BENCH_campaign.json` for trend-watching
//! (shared runners are noisy; the artifact is not gating).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::path::PathBuf;

use dozznoc_bench::{bench_suite, BENCH_TRACE_NS};
use dozznoc_core::{schedule, Campaign, EngineOptions, RunCache};
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

/// A per-process scratch cache directory (removed on drop).
struct ScratchCache {
    dir: PathBuf,
    cache: RunCache,
}

impl ScratchCache {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dozznoc-bench-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchCache {
            cache: RunCache::open(&dir),
            dir,
        }
    }
}

impl Drop for ScratchCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn campaign_matrix(c: &mut Criterion) {
    let topo = Topology::mesh8x8();
    let suite = bench_suite();
    let campaign = Campaign::new(topo).with_duration_ns(BENCH_TRACE_NS);
    let one = NonZeroUsize::MIN;
    let many = schedule::default_jobs();

    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);

    for (label, jobs) in [("cold/jobs1", one), ("cold/jobsN", many)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cells = campaign.run_cells(
                    &TEST_BENCHMARKS,
                    &suite,
                    &EngineOptions {
                        jobs: Some(jobs),
                        shards: 0,
                        cache: None,
                        sanitize: false,
                        measure: false,
                    },
                );
                black_box(cells.len())
            })
        });
    }

    // Warm replays: fill the cache once, then every iteration is pure
    // cache-hit traffic.
    let scratch = ScratchCache::new("campaign");
    let warmed = campaign.run_cells(
        &TEST_BENCHMARKS,
        &suite,
        &EngineOptions {
            jobs: Some(many),
            shards: 0,
            cache: Some(&scratch.cache),
            sanitize: false,
            measure: false,
        },
    );
    assert!(warmed.iter().all(|cell| !cell.cache_hit));

    for (label, jobs) in [("warm/jobs1", one), ("warm/jobsN", many)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cells = campaign.run_cells(
                    &TEST_BENCHMARKS,
                    &suite,
                    &EngineOptions {
                        jobs: Some(jobs),
                        shards: 0,
                        cache: Some(&scratch.cache),
                        sanitize: false,
                        measure: false,
                    },
                );
                assert!(cells.iter().all(|cell| cell.cache_hit));
                black_box(cells.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, campaign_matrix);
criterion_main!(benches);
