//! ML benches: ridge training (the Fig. 9 kernel), prediction (the
//! per-epoch label generation the routers pay for) and dataset plumbing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dozznoc_ml::ridge::DEFAULT_LAMBDA_GRID;
use dozznoc_ml::{Dataset, FeatureSet, RidgeRegression, TrainedModel};

/// Deterministic synthetic dataset shaped like real collection output.
fn synthetic_dataset(n: usize, dim: usize) -> Dataset {
    let mut ds = Dataset::new(dim);
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..n {
        let mut x = vec![1.0];
        for _ in 1..dim {
            x.push(next());
        }
        // Label correlated with the last feature (IBU-like).
        let y = 0.7 * x[dim - 1] + 0.05 * next();
        ds.push(&x, y);
    }
    ds
}

/// Full-41 ridge fit with λ sweep (one training pipeline invocation).
fn ridge_train_full41(c: &mut Criterion) {
    let train = synthetic_dataset(4_000, 41);
    let val = synthetic_dataset(1_000, 41);
    c.bench_function("ml/ridge_train_full41", |b| {
        b.iter(|| {
            black_box(RidgeRegression::fit_with_validation(
                &train,
                &val,
                &DEFAULT_LAMBDA_GRID,
            ))
        })
    });
}

/// Fig. 9 kernel: a bias+single-feature fit.
fn fig9_single_feature_fit(c: &mut Criterion) {
    let train = synthetic_dataset(4_000, 41).project(&[0, 40]);
    let val = synthetic_dataset(1_000, 41).project(&[0, 40]);
    c.bench_function("ml/fig9_single_feature_fit", |b| {
        b.iter(|| {
            black_box(RidgeRegression::fit_with_validation(
                &train,
                &val,
                &DEFAULT_LAMBDA_GRID,
            ))
        })
    });
}

/// The per-router, per-epoch label prediction (what the hardware unit
/// does in 3–4 cycles).
fn predict_label(c: &mut Criterion) {
    let model = TrainedModel::new(
        FeatureSet::Reduced5,
        vec![0.01, 0.02, 0.01, -0.03, 0.8],
        500,
        0.1,
        0.0,
    );
    let x = [1.0, 0.02, 0.03, 0.4, 0.12];
    c.bench_function("ml/predict_label", |b| {
        b.iter(|| black_box(model.predict(&x)))
    });
}

/// Dataset projection (Full-41 → Reduced-5), used by every study.
fn dataset_project(c: &mut Criterion) {
    let ds = synthetic_dataset(4_000, 41);
    let cols = FeatureSet::Reduced5.columns_in_full41();
    c.bench_function("ml/dataset_project", |b| {
        b.iter_batched(
            || ds.clone(),
            |d| black_box(d.project(&cols)),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    ridge_train_full41,
    fig9_single_feature_fit,
    predict_label,
    dataset_project
);
criterion_main!(benches);
