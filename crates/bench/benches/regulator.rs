//! Regulator-model benches: the kernels behind Tables I–III and
//! Figs. 5–6.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dozznoc_power::regulator::delay::RegState;
use dozznoc_power::regulator::waveform::{fig5a_wakeup, fig5b_switch};
use dozznoc_power::{EfficiencyCurve, SimoRegulator, SwitchDelayTable, VfTable};
use dozznoc_types::ACTIVE_MODES;

/// Table I: rail selection + dropout over the whole mode range.
fn table1_dropout(c: &mut Criterion) {
    let simo = SimoRegulator::default();
    c.bench_function("regulator/table1_dropout", |b| {
        b.iter(|| black_box(simo.max_dropout_over_range()))
    });
}

/// Table II: full 6×6 latency-matrix lookup sweep.
fn table2_switch_matrix(c: &mut Criterion) {
    let t = SwitchDelayTable::paper();
    c.bench_function("regulator/table2_switch_matrix", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for from in RegState::all() {
                for to in RegState::all() {
                    acc += t.latency_ns(black_box(from), black_box(to));
                }
            }
            black_box(acc)
        })
    });
}

/// Table III: cycle-cost table conversion to ticks for every mode.
fn table3_cycle_costs(c: &mut Criterion) {
    let t = VfTable::paper();
    c.bench_function("regulator/table3_cycle_costs", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for m in ACTIVE_MODES {
                let r = t.timings(black_box(m));
                acc += r.t_switch().ticks() + r.t_wakeup().ticks() + r.t_breakeven().ticks();
            }
            black_box(acc)
        })
    });
}

/// Fig. 5: generating both transient waveforms at plot resolution.
fn fig5_waveform(c: &mut Criterion) {
    c.bench_function("regulator/fig5_waveform", |b| {
        b.iter(|| {
            let a = fig5a_wakeup().series(20.0, 400);
            let s = fig5b_switch().series(20.0, 400);
            black_box((a, s))
        })
    });
}

/// Fig. 6: sampling the efficiency comparison curve.
fn fig6_efficiency(c: &mut Criterion) {
    c.bench_function("regulator/fig6_efficiency", |b| {
        b.iter(|| black_box(EfficiencyCurve::sample(40)))
    });
}

criterion_group!(
    benches,
    table1_dropout,
    table2_switch_matrix,
    table3_cycle_costs,
    fig5_waveform,
    fig6_efficiency
);
criterion_main!(benches);
