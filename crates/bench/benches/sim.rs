//! Simulation benches: the Fig. 7/Fig. 8/epoch-sweep kernels on
//! bench-sized traces, plus the raw simulator throughput the whole
//! reproduction rests on.
//!
//! Criterion sample sizes are reduced: each iteration is a full
//! network simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dozznoc_bench::{bench_config, bench_suite, bench_trace};
use dozznoc_core::{run_model, ModelKind};
use dozznoc_noc::{AlwaysMode, Network};
use dozznoc_types::Mode;

/// Raw simulator speed: one baseline run (every flit of the trace).
fn baseline_run(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("baseline_run", |b| {
        b.iter(|| {
            let report = Network::new(bench_config())
                .run(&trace, &mut AlwaysMode::new(Mode::M7))
                .expect("bench run completes");
            black_box(report.stats.flits_delivered)
        })
    });
    g.finish();
}

/// Fig. 7 kernel: a DozzNoC run producing the mode distribution.
fn fig7_mode_distribution(c: &mut Criterion) {
    let trace = bench_trace();
    let suite = bench_suite();
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("fig7_mode_distribution", |b| {
        b.iter(|| {
            let report = run_model(bench_config(), &trace, ModelKind::DozzNoc, &suite);
            black_box(report.stats.mode_distribution())
        })
    });
    g.finish();
}

/// Fig. 8 kernel: all five models over one benchmark trace.
fn fig8_models(c: &mut Criterion) {
    let trace = bench_trace();
    let suite = bench_suite();
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("fig8_models", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for kind in dozznoc_core::model::ALL_MODELS {
                let report = run_model(bench_config(), &trace, kind, &suite);
                total += report.stats.flits_delivered;
            }
            black_box(total)
        })
    });
    g.finish();
}

/// Epoch-sweep kernel: the same model at two epoch granularities.
fn epoch_sweep(c: &mut Criterion) {
    let trace = bench_trace();
    let suite = bench_suite();
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    for epoch in [100u64, 500] {
        g.bench_function(format!("epoch_sweep/{epoch}"), |b| {
            b.iter(|| {
                let cfg = bench_config()
                    .try_with_epoch_cycles(epoch)
                    .expect("bench epochs are valid");
                let report = run_model(cfg, &trace, ModelKind::DozzNoc, &suite);
                black_box(report.stats.epochs)
            })
        });
    }
    g.finish();
}

/// Headline kernel: gated vs. ungated static energy on one trace.
fn headline_gating(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("headline_gating", |b| {
        b.iter(|| {
            let gated = Network::new(bench_config())
                .run(&trace, &mut AlwaysMode::new(Mode::M7).with_gating())
                .expect("bench run completes");
            black_box(gated.energy.static_j)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    baseline_run,
    fig7_mode_distribution,
    fig8_models,
    epoch_sweep,
    headline_gating
);
criterion_main!(benches);
