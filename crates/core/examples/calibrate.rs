use dozznoc_core::*;
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

fn main() {
    let dur: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let num: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let den: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let topo = Topology::mesh8x8();
    let t0 = std::time::Instant::now();
    let trainer = Trainer::new(topo).with_duration_ns(dur);
    let suite = ModelSuite::train(&trainer, FeatureSet::Reduced5);
    eprintln!("training took {:?}", t0.elapsed());
    eprintln!("dozznoc weights: {:?}", suite.dozznoc.weights);
    let t1 = std::time::Instant::now();
    let campaign = Campaign::new(topo)
        .with_duration_ns(dur)
        .try_with_load_scale(num, den)
        .expect("load scale arguments must be non-zero");
    let results = campaign.run(&TEST_BENCHMARKS, &suite);
    eprintln!("campaign took {:?}", t1.elapsed());
    for s in experiment::summarize(&results) {
        println!(
            "{:<22} static-save {:6.1}%  dyn-save {:6.1}%  tput-loss {:6.1}%  lat-incr {:6.1}%",
            s.model.label(),
            s.static_savings_pct(),
            s.dynamic_savings_pct(),
            s.throughput_loss_pct(),
            s.latency_increase_pct()
        );
    }
    for r in &results {
        eprintln!(
            "{:<12} {:<22} e2e {:8.1} ns  net {:7.1} ns  tput {:.3} f/ns  fin {:.1} us",
            r.benchmark,
            r.report.policy,
            r.report.stats.avg_latency_ns(),
            r.report.stats.avg_net_latency_ns(),
            r.report.stats.throughput_flits_per_ns(),
            r.report.finished_at.as_ns() / 1000.0
        );
    }
    // off fractions per model on first benchmark
    for r in results.iter().filter(|r| r.benchmark == "x264") {
        eprintln!(
            "x264 {:<22} off-frac {:.3} wakeups {} gate-offs {} be-viol {} modes {:?}",
            r.model.label(),
            r.report.energy.off_fraction(),
            r.report.energy.wakeups,
            r.report.energy.gate_offs,
            r.report.energy.breakeven_violations,
            r.report
                .stats
                .mode_distribution()
                .map(|v| (v * 100.0).round())
        );
    }
}
