//! The baseline model (§III-B): all routers permanently active at the
//! highest voltage level. Highest throughput, lowest latency, zero
//! savings.

use dozznoc_noc::{EpochObservation, PowerPolicy};
use dozznoc_types::{Mode, RouterId};

/// Always-on, always-M7, no gating, no ML.
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline;

impl PowerPolicy for Baseline {
    fn select_mode(&mut self, _router: RouterId, _obs: &EpochObservation) -> Mode {
        Mode::M7
    }

    fn name(&self) -> &str {
        "baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_never_gates_and_always_m7() {
        let mut b = Baseline;
        let obs = EpochObservation {
            cycles: 500,
            ibu: 0.0,
            ..Default::default()
        };
        assert_eq!(b.select_mode(RouterId(0), &obs), Mode::M7);
        let busy = EpochObservation {
            cycles: 500,
            ibu: 0.9,
            ibu_peak: 0.9,
            ..Default::default()
        };
        assert_eq!(b.select_mode(RouterId(1), &busy), Mode::M7);
        assert!(!b.gating_enabled());
        assert_eq!(b.ml_features(), None);
        assert_eq!(b.name(), "baseline");
    }
}
