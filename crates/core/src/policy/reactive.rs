//! Reactive DVFS variants (§III-D, §IV-A): select the next epoch's mode
//! from the *current* epoch's measured input-buffer utilization.
//!
//! The paper builds these solely to generate training data: "we must
//! first design reactive versions of each machine learning model which
//! rely on current buffer utilization to select voltage levels". They
//! are also the natural non-ML DVFS baseline for ablations (how much
//! does proactivity buy over staleness?).

use dozznoc_ml::mode_of_utilization;
use dozznoc_noc::{EpochObservation, PowerPolicy};
use dozznoc_types::{Mode, RouterId};

/// Threshold DVFS on the current epoch's IBU, with or without gating.
#[derive(Debug, Clone)]
pub struct Reactive {
    gating: bool,
    name: &'static str,
}

impl Reactive {
    /// Reactive variant of DOZZNOC (gating + DVFS).
    pub fn dozznoc() -> Self {
        Reactive {
            gating: true,
            name: "reactive-dozznoc",
        }
    }

    /// Reactive variant of LEAD-τ (DVFS only).
    pub fn lead() -> Self {
        Reactive {
            gating: false,
            name: "reactive-lead",
        }
    }
}

impl PowerPolicy for Reactive {
    fn select_mode(&mut self, _router: RouterId, obs: &EpochObservation) -> Mode {
        mode_of_utilization(obs.ibu)
    }

    fn gating_enabled(&self) -> bool {
        self.gating
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ibu: f64) -> EpochObservation {
        EpochObservation {
            cycles: 500,
            ibu,
            ibu_peak: ibu,
            ..Default::default()
        }
    }

    #[test]
    fn tracks_current_utilization() {
        let mut p = Reactive::dozznoc();
        assert_eq!(p.select_mode(RouterId(0), &obs(0.01)), Mode::M3);
        assert_eq!(p.select_mode(RouterId(0), &obs(0.07)), Mode::M4);
        assert_eq!(p.select_mode(RouterId(0), &obs(0.15)), Mode::M5);
        assert_eq!(p.select_mode(RouterId(0), &obs(0.22)), Mode::M6);
        assert_eq!(p.select_mode(RouterId(0), &obs(0.60)), Mode::M7);
    }

    #[test]
    fn variants_differ_only_in_gating() {
        let mut d = Reactive::dozznoc();
        let mut l = Reactive::lead();
        assert!(d.gating_enabled());
        assert!(!l.gating_enabled());
        let o = obs(0.15);
        assert_eq!(
            d.select_mode(RouterId(1), &o),
            l.select_mode(RouterId(1), &o)
        );
        assert_eq!(d.ml_features(), None);
        assert_eq!(l.ml_features(), None);
    }
}
