//! Built-in [`PolicyFactory`] implementations: the five paper models
//! plus the two online-learning extensions, registered in presentation
//! order by [`crate::registry::PolicyRegistry::builtin`].
//!
//! Canonical names and aliases here are the single source of truth for
//! CLI parsing — [`crate::ModelKind::parse`] delegates to the registry,
//! so adding an alias to a factory makes every command accept it.

use dozznoc_noc::PowerPolicy;

use crate::policy::{adaptive, rl_buffer};
use crate::policy::{Adaptive, Baseline, PowerGated, Proactive, RlBuffer};
use crate::registry::{PolicyContext, PolicyError, PolicyFactory, PolicySpec};

/// Every built-in factory, in presentation order (paper models in the
/// Fig. 8 bar order, then the extensions).
pub(crate) fn builtin_factories() -> Vec<Box<dyn PolicyFactory>> {
    vec![
        Box::new(BaselineFactory),
        Box::new(PowerGatedFactory),
        Box::new(LeadFactory),
        Box::new(DozzNocFactory),
        Box::new(TurboFactory),
        Box::new(OnlineRidgeFactory),
        Box::new(RlBufferFactory),
    ]
}

/// Reject parameters no factory knows, so a typo'd key fails loudly
/// instead of silently falling back to the default value.
fn check_params(spec: &PolicySpec, allowed: &[&str]) -> Result<(), PolicyError> {
    for (key, value) in spec.params() {
        if !allowed.contains(&key.as_str()) {
            return Err(PolicyError::BadParam {
                policy: spec.name().to_string(),
                key: key.clone(),
                value: value.clone(),
                expected: if allowed.is_empty() {
                    "no parameters".to_string()
                } else {
                    format!("one of: {}", allowed.join(", "))
                },
            });
        }
    }
    Ok(())
}

fn bad(spec: &PolicySpec, key: &str, value: f64, expected: &str) -> PolicyError {
    PolicyError::BadParam {
        policy: spec.name().to_string(),
        key: key.to_string(),
        value: value.to_string(),
        expected: expected.to_string(),
    }
}

struct BaselineFactory;

impl PolicyFactory for BaselineFactory {
    fn name(&self) -> &'static str {
        "baseline"
    }
    fn label(&self) -> &'static str {
        "Baseline"
    }
    fn description(&self) -> &'static str {
        "always-on M7, no gating, no DVFS"
    }
    fn build(
        &self,
        spec: &PolicySpec,
        _ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        check_params(spec, &[])?;
        Ok(Box::new(Baseline))
    }
}

struct PowerGatedFactory;

impl PolicyFactory for PowerGatedFactory {
    fn name(&self) -> &'static str {
        "pg"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["powergated", "power-gated"]
    }
    fn label(&self) -> &'static str {
        "PG"
    }
    fn description(&self) -> &'static str {
        "Power Punch-style gating, M7-only active state"
    }
    fn build(
        &self,
        spec: &PolicySpec,
        _ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        check_params(spec, &[])?;
        Ok(Box::new(PowerGated))
    }
}

struct LeadFactory;

impl PolicyFactory for LeadFactory {
    fn name(&self) -> &'static str {
        "lead"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["lead-tau", "dvfs"]
    }
    fn label(&self) -> &'static str {
        "ML+DVFS (LEAD-tau)"
    }
    fn description(&self) -> &'static str {
        "LEAD-tau: offline-ridge proactive DVFS, never gated"
    }
    fn uses_ml(&self) -> bool {
        true
    }
    fn build(
        &self,
        spec: &PolicySpec,
        ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        check_params(spec, &[])?;
        Ok(Box::new(Proactive::lead(ctx.suite.lead.clone())))
    }
}

struct DozzNocFactory;

impl PolicyFactory for DozzNocFactory {
    fn name(&self) -> &'static str {
        "dozznoc"
    }
    fn label(&self) -> &'static str {
        "DOZZNOC (ML+DVFS+PG)"
    }
    fn description(&self) -> &'static str {
        "the proposed model: offline-ridge DVFS plus gating"
    }
    fn uses_ml(&self) -> bool {
        true
    }
    fn build(
        &self,
        spec: &PolicySpec,
        ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        check_params(spec, &[])?;
        Ok(Box::new(Proactive::dozznoc(ctx.suite.dozznoc.clone())))
    }
}

struct TurboFactory;

impl PolicyFactory for TurboFactory {
    fn name(&self) -> &'static str {
        "turbo"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["ml-turbo"]
    }
    fn label(&self) -> &'static str {
        "ML+TURBO"
    }
    fn description(&self) -> &'static str {
        "DOZZNOC with every third intermediate prediction forced to M7"
    }
    fn uses_ml(&self) -> bool {
        true
    }
    fn build(
        &self,
        spec: &PolicySpec,
        ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        check_params(spec, &[])?;
        Ok(Box::new(Proactive::turbo(ctx.suite.turbo.clone())))
    }
}

struct OnlineRidgeFactory;

impl PolicyFactory for OnlineRidgeFactory {
    fn name(&self) -> &'static str {
        "online-ridge"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["adaptive", "adaptive-online"]
    }
    fn label(&self) -> &'static str {
        "Online-RLS (DVFS+PG)"
    }
    fn description(&self) -> &'static str {
        "recursive-ridge DVFS that keeps learning during the run \
         (forgetting, delta, warm, gating)"
    }
    fn uses_ml(&self) -> bool {
        true
    }
    fn build(
        &self,
        spec: &PolicySpec,
        ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        check_params(spec, &["forgetting", "delta", "warm", "gating"])?;
        let forgetting = spec.param_f64("forgetting", adaptive::DEFAULT_FORGETTING)?;
        if !(forgetting > 0.0 && forgetting <= 1.0) {
            return Err(bad(spec, "forgetting", forgetting, "a factor in (0, 1]"));
        }
        let delta = spec.param_f64("delta", adaptive::DEFAULT_DELTA)?;
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(bad(spec, "delta", delta, "a positive covariance scale"));
        }
        let warm = spec.param_bool("warm", true)?;
        let gating = spec.param_bool("gating", true)?;
        Ok(Box::new(Adaptive::online_ridge(
            &ctx.suite.dozznoc,
            forgetting,
            delta,
            warm,
            gating,
        )))
    }
}

struct RlBufferFactory;

impl PolicyFactory for RlBufferFactory {
    fn name(&self) -> &'static str {
        "rl-buffer"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["rl", "race"]
    }
    fn label(&self) -> &'static str {
        "RL-Buffer (Q-learning)"
    }
    fn description(&self) -> &'static str {
        "RACE-style tabular Q-learning over discretized buffer/injection \
         state (alpha, gamma, epsilon, seed, gating)"
    }
    fn shardable(&self) -> bool {
        // The Q-table is shared across routers (every router's
        // experience trains one controller); per-shard instances would
        // each learn from a subset and diverge from the sequential run.
        false
    }
    fn build(
        &self,
        spec: &PolicySpec,
        _ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        check_params(spec, &["alpha", "gamma", "epsilon", "seed", "gating"])?;
        let alpha = spec.param_f64("alpha", rl_buffer::DEFAULT_ALPHA)?;
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(bad(spec, "alpha", alpha, "a learning rate in (0, 1]"));
        }
        let gamma = spec.param_f64("gamma", rl_buffer::DEFAULT_GAMMA)?;
        if !(0.0..1.0).contains(&gamma) {
            return Err(bad(spec, "gamma", gamma, "a discount factor in [0, 1)"));
        }
        let epsilon = spec.param_f64("epsilon", rl_buffer::DEFAULT_EPSILON)?;
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(bad(
                spec,
                "epsilon",
                epsilon,
                "an exploration rate in [0, 1]",
            ));
        }
        let seed = spec.param_u64("seed", rl_buffer::DEFAULT_SEED)?;
        let gating = spec.param_bool("gating", true)?;
        Ok(Box::new(RlBuffer::new(alpha, gamma, epsilon, seed, gating)))
    }
}
