//! The power-gated comparison model (§III-B, Fig. 2(a)).
//!
//! Modelled after Power Punch (Chen et al., HPCA'15) the way the paper
//! models it: partially non-blocking power gating with look-ahead wake of
//! downstream routers (the mechanics live in the simulator), and an
//! active state fixed at the highest mode — "if a router is active, then
//! it will operate at the highest mode of operation, mode 7".

use dozznoc_noc::{EpochObservation, PowerPolicy};
use dozznoc_types::{Mode, RouterId};

/// Power gating at T-Idle with M7-only active operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerGated;

impl PowerPolicy for PowerGated {
    fn select_mode(&mut self, _router: RouterId, _obs: &EpochObservation) -> Mode {
        Mode::M7
    }

    fn gating_enabled(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "power-gated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_but_never_scales() {
        let mut p = PowerGated;
        let obs = EpochObservation {
            cycles: 500,
            ..Default::default()
        };
        assert_eq!(p.select_mode(RouterId(3), &obs), Mode::M7);
        assert!(p.gating_enabled());
        assert_eq!(p.ml_features(), None);
        assert_eq!(p.name(), "power-gated");
    }
}
