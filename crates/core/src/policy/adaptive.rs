//! Online-adaptive proactive DVFS (extension).
//!
//! The paper freezes its ridge weights at deployment. This policy
//! warm-starts from those offline weights and keeps refining them with
//! recursive least squares as real labels stream in: at every epoch
//! boundary the *previous* epoch's feature vector gets labelled by the
//! *current* epoch's measured IBU (exactly the offline label definition)
//! and absorbed into the estimator. Each router keeps its own estimator,
//! preserving the paper's no-global-coordination property.
//!
//! This is the "what if the workload drifts away from the training set?"
//! answer the paper leaves to future work; `dozz-repro ablation-online`
//! measures it by deploying on traces generated with a different seed
//! than the training traces.

use dozznoc_ml::online::RecursiveLeastSquares;
use dozznoc_ml::{mode_of_utilization, FeatureSet, TrainedModel};
use dozznoc_noc::{EpochObservation, PowerPolicy};
use dozznoc_types::{Mode, RouterId};

use crate::features::extract_features;

/// Default RLS forgetting factor: mild exponential forgetting so the
/// estimator tracks phase-scale drift without thrashing on noise.
pub const DEFAULT_FORGETTING: f64 = 0.995;
/// Default initial-covariance scale.
pub const DEFAULT_DELTA: f64 = 100.0;

/// Proactive DVFS whose predictor keeps learning online.
#[derive(Debug, Clone)]
pub struct Adaptive {
    feature_set: FeatureSet,
    /// Fresh-router blueprint: per-router estimators clone from it on
    /// first contact, so the policy works on any topology without
    /// knowing the router count at construction.
    template: RecursiveLeastSquares,
    estimators: Vec<RecursiveLeastSquares>,
    pending: Vec<Option<Vec<f64>>>,
    gating: bool,
    name: &'static str,
}

impl Adaptive {
    #[must_use]
    fn with_template(
        feature_set: FeatureSet,
        template: RecursiveLeastSquares,
        num_routers: usize,
        gating: bool,
        name: &'static str,
    ) -> Self {
        Adaptive {
            feature_set,
            estimators: vec![template.clone(); num_routers],
            template,
            pending: vec![None; num_routers],
            gating,
            name,
        }
    }

    /// Warm-start one estimator per router from an offline model.
    pub fn from_offline(model: &TrainedModel, num_routers: usize, gating: bool) -> Self {
        let template = RecursiveLeastSquares::warm_start(
            model.weights.clone(),
            DEFAULT_FORGETTING,
            DEFAULT_DELTA,
        );
        Self::with_template(
            model.feature_set,
            template,
            num_routers,
            gating,
            "adaptive-online",
        )
    }

    /// Start from zero weights (pure online learning, no offline stage).
    pub fn cold(feature_set: FeatureSet, num_routers: usize, gating: bool) -> Self {
        let template =
            RecursiveLeastSquares::new(feature_set.len(), DEFAULT_FORGETTING, DEFAULT_DELTA);
        Self::with_template(
            feature_set,
            template,
            num_routers,
            gating,
            "adaptive-online",
        )
    }

    /// The registry-facing variant (policy name `online-ridge`): full
    /// hyper-parameter control, per-router state grown on demand. With
    /// `warm` the estimators start from `model`'s offline weights;
    /// otherwise they learn from zero. Callers validate `forgetting` ∈
    /// (0, 1] and `delta` > 0 — the factory rejects bad values with a
    /// `PolicyError` before this constructor runs.
    pub fn online_ridge(
        model: &TrainedModel,
        forgetting: f64,
        delta: f64,
        warm: bool,
        gating: bool,
    ) -> Self {
        let template = if warm {
            RecursiveLeastSquares::warm_start(model.weights.clone(), forgetting, delta)
        } else {
            RecursiveLeastSquares::new(model.feature_set.len(), forgetting, delta)
        };
        Self::with_template(model.feature_set, template, 0, gating, "online-ridge")
    }

    /// Grow per-router state up to router index `i`.
    fn ensure(&mut self, i: usize) {
        while self.estimators.len() <= i {
            self.estimators.push(self.template.clone());
            self.pending.push(None);
        }
    }

    /// Total online updates absorbed across routers.
    pub fn total_updates(&self) -> u64 {
        self.estimators
            .iter()
            .map(RecursiveLeastSquares::updates)
            .sum()
    }

    /// One router's current weights (inspection/tests).
    pub fn weights_of(&self, router: RouterId) -> &[f64] {
        self.estimators[router.idx()].weights()
    }
}

impl PowerPolicy for Adaptive {
    fn select_mode(&mut self, router: RouterId, obs: &EpochObservation) -> Mode {
        let i = router.idx();
        self.ensure(i);
        let x = extract_features(obs, self.feature_set);
        // The current IBU labels the previous epoch's features.
        if let Some(prev_x) = self.pending[i].take() {
            self.estimators[i].update(&prev_x, obs.ibu);
        }
        let predicted = self.estimators[i].predict(&x);
        self.pending[i] = Some(x);
        mode_of_utilization(predicted)
    }

    fn gating_enabled(&self) -> bool {
        self.gating
    }

    fn ml_features(&self) -> Option<usize> {
        // Online updates cost extra multiply-accumulates; bill the label
        // *generation* like the offline models (the update itself would
        // add ~2 more dot products — see the overhead discussion in
        // EXPERIMENTS.md).
        Some(self.feature_set.len())
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offline_model() -> TrainedModel {
        TrainedModel::new(
            FeatureSet::Reduced5,
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
            500,
            0.0,
            0.0,
        )
    }

    fn obs(router: RouterId, epoch: u64, ibu: f64) -> EpochObservation {
        EpochObservation {
            router,
            epoch,
            cycles: 500,
            ibu,
            ibu_peak: ibu,
            ..Default::default()
        }
    }

    #[test]
    fn warm_start_behaves_like_offline_at_first() {
        let mut a = Adaptive::from_offline(&offline_model(), 4, true);
        // First decision: no label has arrived yet, prediction = offline.
        assert_eq!(
            a.select_mode(RouterId(0), &obs(RouterId(0), 0, 0.15)),
            Mode::M5
        );
        assert_eq!(a.total_updates(), 0);
    }

    #[test]
    fn updates_flow_once_labels_arrive() {
        let mut a = Adaptive::from_offline(&offline_model(), 2, false);
        a.select_mode(RouterId(0), &obs(RouterId(0), 0, 0.1));
        a.select_mode(RouterId(0), &obs(RouterId(0), 1, 0.2));
        a.select_mode(RouterId(1), &obs(RouterId(1), 0, 0.1));
        assert_eq!(a.total_updates(), 1); // router 0 got one label
        a.select_mode(RouterId(1), &obs(RouterId(1), 1, 0.2));
        assert_eq!(a.total_updates(), 2);
    }

    #[test]
    fn adapts_to_a_biased_environment() {
        // Environment: next IBU is always current + 0.1 (a persistent
        // up-drift the offline identity model under-predicts). After
        // enough epochs the online estimator corrects upward.
        let mut a = Adaptive::from_offline(&offline_model(), 1, false);
        let r = RouterId(0);
        let mut ibu = 0.05;
        for e in 0..200 {
            a.select_mode(r, &obs(r, e, ibu));
            ibu = (ibu + 0.1).clamp(0.05, 0.4);
            if ibu >= 0.4 {
                ibu = 0.05; // sawtooth
            }
        }
        // Now at IBU 0.05 the offline model would predict 0.05 → M4
        // boundary; the adapted model has learned the +0.1 drift and
        // predicts higher.
        let mode = a.select_mode(r, &obs(r, 200, 0.05));
        assert!(mode >= Mode::M4, "adapted model still predicts {mode:?}");
        assert!(a.total_updates() > 100);
    }

    #[test]
    fn online_ridge_variant_grows_on_demand() {
        let mut a = Adaptive::online_ridge(&offline_model(), 0.99, 50.0, true, true);
        assert_eq!(a.name(), "online-ridge");
        assert!(a.gating_enabled());
        // No router count was given: state materializes on first contact,
        // at any index, warm-started from the offline weights.
        assert_eq!(
            a.select_mode(RouterId(5), &obs(RouterId(5), 0, 0.15)),
            Mode::M5
        );
        a.select_mode(RouterId(5), &obs(RouterId(5), 1, 0.2));
        assert_eq!(a.total_updates(), 1);
        // The cold variant starts from zero weights: predicts 0 → M3.
        let mut c = Adaptive::online_ridge(&offline_model(), 0.995, 100.0, false, false);
        assert_eq!(
            c.select_mode(RouterId(0), &obs(RouterId(0), 0, 0.15)),
            Mode::M3
        );
    }

    #[test]
    fn cold_start_learns_from_scratch() {
        let mut a = Adaptive::cold(FeatureSet::Reduced5, 1, true);
        let r = RouterId(0);
        // Constant environment at IBU 0.3 → after updates, prediction
        // should select M7.
        for e in 0..50 {
            a.select_mode(r, &obs(r, e, 0.3));
        }
        assert_eq!(a.select_mode(r, &obs(r, 50, 0.3)), Mode::M7);
        assert!(a.gating_enabled());
        assert_eq!(a.ml_features(), Some(5));
        assert_eq!(a.name(), "adaptive-online");
    }
}
