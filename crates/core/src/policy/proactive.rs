//! Proactive ML-driven mode selection: the Label Generate + Model Select
//! units of Fig. 1(c).
//!
//! Every epoch the trained ridge model predicts the router's *future*
//! input-buffer utilization from local features; the prediction drives
//! the Fig. 3(b) threshold logic. Three paper models share this policy:
//!
//! * **LEAD-τ (DVFS+ML)** — gating disabled;
//! * **DOZZNOC (ML+PG+DVFS)** — gating enabled;
//! * **ML+TURBO** — gating enabled plus the turbo rule: every third
//!   prediction of an intermediate mode (M4–M6) is overridden to M7.

use dozznoc_ml::{mode_of_utilization, FeatureSet, TrainedModel};
use dozznoc_noc::{DecisionTrace, EpochObservation, PowerPolicy};
use dozznoc_types::{Mode, RouterId};

use crate::features::extract_features;

/// Proactive threshold DVFS over a trained future-IBU predictor.
#[derive(Debug, Clone)]
pub struct Proactive {
    model: TrainedModel,
    gating: bool,
    turbo: Option<Vec<u32>>, // per-router intermediate-mode counters
    name: &'static str,
    last_decision: Option<DecisionTrace>,
}

impl Proactive {
    /// The full DOZZNOC model (ML + PG + DVFS).
    pub fn dozznoc(model: TrainedModel) -> Self {
        Proactive {
            model,
            gating: true,
            turbo: None,
            name: "dozznoc",
            last_decision: None,
        }
    }

    /// The LEAD-τ comparison model (ML + DVFS, no gating).
    pub fn lead(model: TrainedModel) -> Self {
        Proactive {
            model,
            gating: false,
            turbo: None,
            name: "lead-tau",
            last_decision: None,
        }
    }

    /// The ML+TURBO experimental model. Per-router turbo counters grow
    /// on demand, so the constructor needs no topology.
    pub fn turbo(model: TrainedModel) -> Self {
        Proactive {
            model,
            gating: true,
            turbo: Some(Vec::new()),
            name: "ml-turbo",
            last_decision: None,
        }
    }

    /// The trained model in use.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Feature set the model consumes.
    pub fn feature_set(&self) -> FeatureSet {
        self.model.feature_set
    }
}

impl PowerPolicy for Proactive {
    fn select_mode(&mut self, router: RouterId, obs: &EpochObservation) -> Mode {
        let x = extract_features(obs, self.model.feature_set);
        let predicted_ibu = self.model.predict(&x);
        self.last_decision = Some(DecisionTrace {
            features: x,
            predicted_ibu,
        });
        let mut mode = mode_of_utilization(predicted_ibu);
        if let Some(counters) = self.turbo.as_mut() {
            // Turbo rule: every third intermediate-mode prediction is
            // forced to the highest mode (§III-B ML+TURBO).
            if mode != Mode::M3 && mode != Mode::M7 {
                if counters.len() <= router.idx() {
                    counters.resize(router.idx() + 1, 0);
                }
                let c = &mut counters[router.idx()];
                *c += 1;
                if *c % 3 == 0 {
                    mode = Mode::M7;
                }
            }
        }
        mode
    }

    fn gating_enabled(&self) -> bool {
        self.gating
    }

    fn ml_features(&self) -> Option<usize> {
        Some(self.model.feature_set.len())
    }

    fn decision_trace(&self) -> Option<&DecisionTrace> {
        self.last_decision.as_ref()
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that predicts exactly the current IBU (weight 1 on
    /// CurrentIbu, 0 elsewhere): turns the proactive policy into a
    /// transparent oracle for testing.
    fn identity_model() -> TrainedModel {
        TrainedModel::new(
            FeatureSet::Reduced5,
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
            500,
            0.0,
            0.0,
        )
    }

    fn obs(ibu: f64) -> EpochObservation {
        EpochObservation {
            cycles: 500,
            ibu,
            ibu_peak: ibu,
            ..Default::default()
        }
    }

    #[test]
    fn prediction_drives_thresholds() {
        let mut p = Proactive::dozznoc(identity_model());
        assert_eq!(p.select_mode(RouterId(0), &obs(0.02)), Mode::M3);
        assert_eq!(p.select_mode(RouterId(0), &obs(0.30)), Mode::M7);
        assert!(p.gating_enabled());
        assert_eq!(p.ml_features(), Some(5));
    }

    #[test]
    fn lead_disables_gating_only() {
        let mut l = Proactive::lead(identity_model());
        assert!(!l.gating_enabled());
        assert_eq!(l.select_mode(RouterId(0), &obs(0.15)), Mode::M5);
        assert_eq!(l.name(), "lead-tau");
    }

    #[test]
    fn turbo_overrides_every_third_intermediate() {
        let mut t = Proactive::turbo(identity_model());
        // IBU 0.15 → M5 (intermediate). Predictions 1, 2 keep M5; the
        // 3rd is forced to M7; then 4, 5 keep M5; 6th forced…
        let got: Vec<Mode> = (0..6)
            .map(|_| t.select_mode(RouterId(1), &obs(0.15)))
            .collect();
        assert_eq!(
            got,
            vec![Mode::M5, Mode::M5, Mode::M7, Mode::M5, Mode::M5, Mode::M7]
        );
    }

    #[test]
    fn turbo_never_overrides_extremes() {
        let mut t = Proactive::turbo(identity_model());
        for _ in 0..10 {
            assert_eq!(t.select_mode(RouterId(0), &obs(0.01)), Mode::M3);
            assert_eq!(t.select_mode(RouterId(0), &obs(0.9)), Mode::M7);
        }
    }

    #[test]
    fn turbo_counters_are_per_router() {
        let mut t = Proactive::turbo(identity_model());
        // Two intermediate predictions on router 0, then one on router 1:
        // router 1's counter is independent, so no override yet.
        t.select_mode(RouterId(0), &obs(0.15));
        t.select_mode(RouterId(0), &obs(0.15));
        assert_eq!(t.select_mode(RouterId(1), &obs(0.15)), Mode::M5);
        // Router 0's third intermediate triggers.
        assert_eq!(t.select_mode(RouterId(0), &obs(0.15)), Mode::M7);
    }

    #[test]
    fn decision_trace_records_last_prediction() {
        let mut p = Proactive::dozznoc(identity_model());
        assert!(
            p.decision_trace().is_none(),
            "no decision before the first epoch"
        );
        p.select_mode(RouterId(0), &obs(0.30));
        let d = p.decision_trace().expect("trace after select_mode");
        assert_eq!(d.features.len(), 5);
        assert!((d.predicted_ibu - 0.30).abs() < 1e-12);
    }

    #[test]
    fn negative_predictions_clamp_to_lowest_mode() {
        // A linear model can predict below zero at idle; the threshold
        // logic must clamp, not panic.
        let model = TrainedModel::new(
            FeatureSet::Reduced5,
            vec![-0.1, 0.0, 0.0, 0.0, 1.0],
            500,
            0.0,
            0.0,
        );
        let mut p = Proactive::dozznoc(model);
        assert_eq!(p.select_mode(RouterId(0), &obs(0.0)), Mode::M3);
    }
}
