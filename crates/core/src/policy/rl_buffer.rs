//! RACE-style tabular Q-learning DVFS/gating controller (extension).
//!
//! Where the paper's controller predicts next-epoch buffer utilization
//! and thresholds it into a mode, this policy learns the mode decision
//! *directly* by reinforcement: the state is a discretized
//! (buffer-occupancy, injection-rate) pair, the actions are the five
//! active modes M3–M7, and the reward trades the chosen mode's
//! power proxy (`V²·f`, normalized to M7) against a congestion penalty
//! from the observed stall fractions. A single Q-table is shared across
//! routers — every router's experience trains the same controller, which
//! converges far faster than 64 independent tables — while exploration
//! state stays per-router so decision sequences are independent of how
//! many routers exist.
//!
//! ## Determinism
//!
//! Exploration is epsilon-greedy over a seeded [`XorShift64`] stream per
//! router (seed mixed from the spec's `seed` parameter and the router
//! index), argmax ties break low, and the simulator calls
//! [`PowerPolicy::select_mode`] in a deterministic router order — so a
//! run is a pure function of (spec, trace), which the workspace
//! determinism suite verifies bit-for-bit across job counts and cache
//! states.

use dozznoc_ml::rl::{QTable, XorShift64};
use dozznoc_noc::{EpochObservation, PowerPolicy};
use dozznoc_types::{Mode, RouterId};

/// Occupancy buckets: the [`dozznoc_ml::metrics::MODE_THRESHOLDS`]
/// boundaries, so the state space aligns with the supervised
/// controller's decision regions.
const OCC_EDGES: [f64; 4] = [0.05, 0.10, 0.20, 0.25];
/// Injection-rate buckets (flits per local cycle): idle, light, heavy.
const INJ_EDGES: [f64; 2] = [1e-9, 0.10];
/// Number of discrete states.
const STATES: usize = (OCC_EDGES.len() + 1) * (INJ_EDGES.len() + 1);
/// One action per active mode (M3–M7, by rank).
const ACTIONS: usize = 5;
/// Power proxy of the fastest mode, the reward normalizer.
const MAX_POWER_PROXY: f64 = 1.2 * 1.2 * 2.25;
/// Weight of the congestion penalty against the normalized power term.
const PERF_WEIGHT: f64 = 2.0;

/// Default learning rate.
pub const DEFAULT_ALPHA: f64 = 0.1;
/// Default discount factor.
pub const DEFAULT_GAMMA: f64 = 0.8;
/// Default exploration rate.
pub const DEFAULT_EPSILON: f64 = 0.05;
/// Default exploration seed.
pub const DEFAULT_SEED: u64 = 1;

/// Tabular Q-learning DVFS (+ optional gating) policy.
#[derive(Debug, Clone)]
pub struct RlBuffer {
    table: QTable,
    epsilon: f64,
    seed: u64,
    gating: bool,
    rngs: Vec<XorShift64>,
    prev: Vec<Option<(usize, usize)>>,
}

impl RlBuffer {
    /// A controller with explicit hyper-parameters. Callers validate
    /// ranges (`alpha` ∈ (0, 1], `gamma` ∈ [0, 1), `epsilon` ∈ [0, 1]) —
    /// the registry factory rejects bad values with a `PolicyError`
    /// before this constructor runs.
    pub fn new(alpha: f64, gamma: f64, epsilon: f64, seed: u64, gating: bool) -> Self {
        RlBuffer {
            table: QTable::new(STATES, ACTIONS, alpha, gamma),
            epsilon,
            seed,
            gating,
            rngs: Vec::new(),
            prev: Vec::new(),
        }
    }

    /// A controller at the defaults.
    #[must_use]
    pub fn with_defaults(gating: bool) -> Self {
        RlBuffer::new(
            DEFAULT_ALPHA,
            DEFAULT_GAMMA,
            DEFAULT_EPSILON,
            DEFAULT_SEED,
            gating,
        )
    }

    /// Q-learning backups absorbed so far (inspection/tests).
    pub fn total_updates(&self) -> u64 {
        self.table.updates()
    }

    /// Discretize an observation into a state index.
    fn state(obs: &EpochObservation) -> usize {
        let occ = OCC_EDGES.iter().take_while(|&&e| obs.ibu >= e).count();
        let inj_rate = if obs.cycles > 0 {
            obs.flits_injected / obs.cycles as f64
        } else {
            0.0
        };
        let inj = INJ_EDGES.iter().take_while(|&&e| inj_rate >= e).count();
        occ * (INJ_EDGES.len() + 1) + inj
    }

    /// Reward for having spent the epoch in `mode`: negative normalized
    /// power (`V²·f` — static leakage tracks V², dynamic tracks V²·f)
    /// minus a congestion penalty when flits stalled waiting on the
    /// too-slow router.
    fn reward(mode: Mode, obs: &EpochObservation) -> f64 {
        let power = mode.voltage() * mode.voltage() * mode.freq_ghz() / MAX_POWER_PROXY;
        let congestion = obs.stall_fraction + obs.credit_stall_fraction;
        -(power + PERF_WEIGHT * congestion)
    }

    /// Per-router state grows on demand, so the policy needs no router
    /// count at construction (any topology works with one spec).
    fn ensure(&mut self, i: usize) {
        while self.rngs.len() <= i {
            // SplitMix64-style mixing keeps nearby router indices from
            // yielding correlated xorshift streams.
            let mixed = (self.seed ^ (self.rngs.len() as u64 + 1))
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(31);
            self.rngs.push(XorShift64::new(mixed));
            self.prev.push(None);
        }
    }
}

impl PowerPolicy for RlBuffer {
    fn select_mode(&mut self, router: RouterId, obs: &EpochObservation) -> Mode {
        let i = router.idx();
        self.ensure(i);
        let state = Self::state(obs);
        // Close out the previous decision: the epoch just observed was
        // spent under it, so its reward is now known.
        if let Some((prev_state, prev_action)) = self.prev[i] {
            let prev_mode = Mode::from_rank(prev_action).unwrap_or(Mode::M7);
            self.table
                .update(prev_state, prev_action, Self::reward(prev_mode, obs), state);
        }
        let action = self.table.select(state, self.epsilon, &mut self.rngs[i]);
        self.prev[i] = Some((state, action));
        Mode::from_rank(action).unwrap_or(Mode::M7)
    }

    fn gating_enabled(&self) -> bool {
        self.gating
    }

    fn ml_features(&self) -> Option<usize> {
        // A decision costs one table row scan over two discretized
        // features — bill it like a 2-feature label (§III-D accounting).
        Some(2)
    }

    fn name(&self) -> &str {
        "rl-buffer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ibu: f64, injected: u64, stall: f64) -> EpochObservation {
        EpochObservation {
            cycles: 500,
            ibu,
            ibu_peak: ibu,
            flits_injected: injected as f64,
            stall_fraction: stall,
            ..Default::default()
        }
    }

    #[test]
    fn state_buckets_cover_the_grid() {
        assert_eq!(RlBuffer::state(&obs(0.0, 0, 0.0)), 0);
        assert_eq!(RlBuffer::state(&obs(0.30, 500, 0.0)), STATES - 1);
        let mid = RlBuffer::state(&obs(0.12, 10, 0.0));
        assert!(mid > 0 && mid < STATES - 1, "{mid}");
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Mode> {
            let mut p = RlBuffer::new(0.1, 0.8, 0.3, seed, true);
            (0..40)
                .map(|e| p.select_mode(RouterId(0), &obs(0.1 + 0.002 * e as f64, e, 0.0)))
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(1234),
            "different seeds should explore differently"
        );
    }

    #[test]
    fn learns_to_slow_down_an_idle_router() {
        // Greedy (ε = 0) controller on a permanently idle router: the
        // only reward signal is the power proxy, so Q-learning must
        // settle on the slowest mode.
        let mut p = RlBuffer::new(0.3, 0.5, 0.0, 1, true);
        let idle = obs(0.0, 0, 0.0);
        let mut last = Mode::M7;
        for _ in 0..200 {
            last = p.select_mode(RouterId(0), &idle);
        }
        assert_eq!(last, Mode::M3, "idle router should settle at M3");
        assert!(p.total_updates() > 100);
    }

    #[test]
    fn congestion_pushes_the_mode_up() {
        // Same state, but staying slow hurts: heavy stalls while in low
        // modes flip the preference toward fast modes.
        let mut p = RlBuffer::new(0.4, 0.3, 0.0, 1, true);
        let mut stall = 0.0;
        let mut settled = Mode::M7;
        for _ in 0..300 {
            settled = p.select_mode(RouterId(0), &obs(0.3, 400, stall));
            // Feedback: slow modes see stalls next epoch, fast run clean.
            stall = if settled < Mode::M6 { 0.8 } else { 0.0 };
        }
        assert!(
            settled >= Mode::M6,
            "congested router settled at {settled:?}"
        );
    }

    #[test]
    fn routers_grow_on_demand() {
        let mut p = RlBuffer::with_defaults(false);
        p.select_mode(RouterId(63), &obs(0.1, 5, 0.0));
        p.select_mode(RouterId(2), &obs(0.1, 5, 0.0));
        assert_eq!(p.rngs.len(), 64);
        assert!(!p.gating_enabled());
        assert_eq!(p.ml_features(), Some(2));
        assert_eq!(p.name(), "rl-buffer");
    }
}
