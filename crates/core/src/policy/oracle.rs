//! An oracle mode selector: the upper bound proactive prediction aims
//! at.
//!
//! The ridge model predicts the next epoch's IBU; the *oracle* simply
//! knows it. It is built in two passes: a recording run (under the
//! reactive policy of the same gating family) captures every router's
//! actual per-epoch IBU trajectory, then the oracle run replays the mode
//! each epoch's *true* utilization would select — one epoch ahead of any
//! reactive scheme, with zero prediction error relative to the recorded
//! trajectory.
//!
//! Because mode choices feed back into utilization, a recorded
//! trajectory is an approximation of the oracle run's own future (the
//! fixed point is not computable in one pass); this is the standard
//! construction and it bounds what any one-epoch-ahead predictor of the
//! recorded dynamics can do. The `ablation-proactive` experiment uses it
//! to report how much of the reactive→oracle gap the paper's ridge
//! model closes.

use dozznoc_ml::mode_of_utilization;
use dozznoc_noc::{EpochObservation, Network, NocConfig, PowerPolicy};
use dozznoc_traffic::Trace;
use dozznoc_types::{Mode, RouterId};

use super::reactive::Reactive;

/// Records per-router IBU trajectories during a run.
struct IbuRecorder {
    inner: Reactive,
    ibu: Vec<Vec<f64>>,
}

impl PowerPolicy for IbuRecorder {
    fn select_mode(&mut self, router: RouterId, obs: &EpochObservation) -> Mode {
        let track = &mut self.ibu[router.idx()];
        debug_assert_eq!(track.len() as u64, obs.epoch, "epochs must arrive in order");
        track.push(obs.ibu);
        self.inner.select_mode(router, obs)
    }

    fn gating_enabled(&self) -> bool {
        self.inner.gating_enabled()
    }

    fn name(&self) -> &str {
        "ibu-recorder"
    }
}

/// Replay-perfect one-epoch-ahead mode selection.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// `ibu[router][epoch]` — recorded mean IBU of that epoch.
    ibu: Vec<Vec<f64>>,
    gating: bool,
}

impl Oracle {
    /// Build an oracle by recording `trace` under the reactive policy of
    /// the same gating family on a fresh network.
    pub fn record(cfg: NocConfig, trace: &Trace, gating: bool) -> Oracle {
        let inner = if gating {
            Reactive::dozznoc()
        } else {
            Reactive::lead()
        };
        let mut recorder = IbuRecorder {
            inner,
            ibu: vec![Vec::new(); cfg.topology.num_routers()],
        };
        Network::new(cfg)
            .run(trace, &mut recorder)
            .expect("oracle recording run completes");
        Oracle {
            ibu: recorder.ibu,
            gating,
        }
    }

    /// Epochs recorded for a router.
    pub fn recorded_epochs(&self, router: RouterId) -> usize {
        self.ibu[router.idx()].len()
    }
}

impl PowerPolicy for Oracle {
    fn select_mode(&mut self, router: RouterId, obs: &EpochObservation) -> Mode {
        // The decision at the end of epoch `e` governs epoch `e+1`; the
        // oracle looks that epoch's recorded IBU up directly. Beyond the
        // recorded horizon (the oracle run drains on a slightly
        // different schedule) fall back to the current IBU — by then the
        // network is draining and reactive ≈ oracle.
        let track = &self.ibu[router.idx()];
        let future = track
            .get(obs.epoch as usize + 1)
            .copied()
            .unwrap_or(obs.ibu);
        mode_of_utilization(future)
    }

    fn gating_enabled(&self) -> bool {
        self.gating
    }

    fn name(&self) -> &str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dozznoc_topology::Topology;
    use dozznoc_traffic::{Benchmark, TraceGenerator};

    fn fixture() -> (NocConfig, Trace) {
        let topo = Topology::mesh8x8();
        let trace = TraceGenerator::new(topo)
            .with_duration_ns(3_000)
            .generate(Benchmark::Fft);
        (NocConfig::paper(topo), trace)
    }

    #[test]
    fn oracle_records_and_replays() {
        let (cfg, trace) = fixture();
        let mut oracle = Oracle::record(cfg, &trace, true);
        assert!(oracle.recorded_epochs(RouterId(0)) > 2);
        assert!(oracle.gating_enabled());
        // Replaying the same trace works and delivers everything.
        let r = Network::new(cfg)
            .run(&trace, &mut oracle)
            .expect("oracle run");
        assert_eq!(r.stats.packets_delivered, trace.len() as u64);
    }

    #[test]
    fn oracle_selection_matches_future_recorded_ibu() {
        let (cfg, trace) = fixture();
        let oracle = Oracle::record(cfg, &trace, false);
        let mut replay = oracle.clone();
        // For an observation at epoch e, the oracle must select by the
        // recorded IBU of epoch e+1.
        let router = RouterId(27);
        let track = oracle.ibu[router.idx()].clone();
        for e in 0..track.len().saturating_sub(1) {
            let obs = EpochObservation {
                router,
                epoch: e as u64,
                cycles: 500,
                ibu: 0.99, // deliberately misleading current value
                ibu_peak: 0.99,
                ..Default::default()
            };
            assert_eq!(
                replay.select_mode(router, &obs),
                mode_of_utilization(track[e + 1]),
                "epoch {e}"
            );
        }
    }

    #[test]
    fn beyond_horizon_falls_back_to_current() {
        let (cfg, trace) = fixture();
        let mut oracle = Oracle::record(cfg, &trace, true);
        let router = RouterId(5);
        let far = oracle.recorded_epochs(router) as u64 + 10;
        let obs = EpochObservation {
            router,
            epoch: far,
            cycles: 500,
            ibu: 0.3,
            ibu_peak: 0.3,
            ..Default::default()
        };
        assert_eq!(oracle.select_mode(router, &obs), mode_of_utilization(0.3));
    }

    #[test]
    fn oracle_beats_or_matches_reactive_on_latency() {
        // With perfect one-epoch lookahead the oracle should not be
        // slower than the reactive scheme it was recorded from (allowing
        // a small tolerance for feedback effects).
        let (cfg, trace) = fixture();
        let mut reactive = Reactive::lead();
        let r_reactive = Network::new(cfg).run(&trace, &mut reactive).unwrap();
        let mut oracle = Oracle::record(cfg, &trace, false);
        let r_oracle = Network::new(cfg).run(&trace, &mut oracle).unwrap();
        assert!(
            r_oracle.stats.avg_net_latency_ns() <= r_reactive.stats.avg_net_latency_ns() * 1.10,
            "oracle {} ns vs reactive {} ns",
            r_oracle.stats.avg_net_latency_ns(),
            r_reactive.stats.avg_net_latency_ns()
        );
    }
}
