//! The five evaluation models, the reactive training variants, and the
//! online-learning extensions — all constructible through the
//! [`crate::registry::PolicyRegistry`] plug-in API.

pub(crate) mod adaptive;
mod baseline;
mod factories;
mod oracle;
mod power_gate;
mod proactive;
mod reactive;
pub(crate) mod rl_buffer;

pub use adaptive::Adaptive;
pub use baseline::Baseline;
pub use oracle::Oracle;
pub use power_gate::PowerGated;
pub use proactive::Proactive;
pub use reactive::Reactive;
pub use rl_buffer::RlBuffer;

pub(crate) use factories::builtin_factories;
