//! The five evaluation models plus the reactive training variants.

mod adaptive;
mod baseline;
mod oracle;
mod power_gate;
mod proactive;
mod reactive;

pub use adaptive::Adaptive;
pub use baseline::Baseline;
pub use oracle::Oracle;
pub use power_gate::PowerGated;
pub use proactive::Proactive;
pub use reactive::Reactive;
