//! The open policy plug-in API: registry-backed [`PowerPolicy`]
//! construction.
//!
//! The paper compares a closed set of five schemes, and until this
//! module existed the code mirrored that closure: [`ModelKind`] was an
//! enum and every experiment matched on it, so adding a policy meant
//! editing ~10 files. The registry inverts that dependency:
//!
//! * a [`PolicyFactory`] names one policy (canonical slug + aliases),
//!   documents it, and builds instances from a [`PolicySpec`];
//! * a [`PolicyRegistry`] owns a set of factories, resolves names,
//!   parses CLI-style spec strings, and constructs policies;
//! * a [`PolicySpec`] is the serializable currency of the system — a
//!   policy name plus sorted key/value parameters — and its
//!   [`PolicySpec::slug`] doubles as the run-cache key, so distinct
//!   parameterizations of one policy never collide in the
//!   content-addressed cache.
//!
//! [`ModelKind`] survives as a thin compatibility shim over
//! [`PolicyRegistry::global`]: its `parse`/`slug`/`build` delegate here,
//! which keeps existing CSV schemas, CLI aliases, determinism goldens
//! and cache fingerprints byte-stable while the rest of the system talks
//! specs. Third-party policies register into a registry (global built-in
//! or a caller-owned instance) without touching `ModelKind` at all.
//!
//! ## Determinism contract for stochastic policies
//!
//! Policies may keep internal state and may explore randomly, but a
//! built instance must be a *pure function of its spec and build
//! context*: same spec + same suite ⇒ bit-identical decisions. Seeds
//! therefore live in the spec (see the `rl-buffer` `seed` parameter),
//! never in ambient entropy, which is what lets the work-stealing engine
//! replay any cell from the run cache and `tests/determinism.rs` assert
//! jobs=1 / jobs=8 / warm-cache bit-identity for every registered
//! policy.

use dozz_sync::OnceLock;

use serde::{Deserialize, Serialize};

use dozznoc_noc::PowerPolicy;

use crate::training::ModelSuite;

/// Why a policy lookup or construction failed. [`core::fmt::Display`]
/// output is CLI-grade: the `Unknown` variant lists every registered
/// name and alias so a typo is self-correcting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// No registered factory answers to this name.
    Unknown {
        /// The name that failed to resolve.
        name: String,
        /// All registered names and aliases, comma-joined.
        known: String,
    },
    /// A spec parameter failed to parse or is out of range.
    BadParam {
        /// The policy the parameter was destined for.
        policy: String,
        /// The offending key.
        key: String,
        /// The offending value.
        value: String,
        /// What the factory expected.
        expected: String,
    },
    /// A spec string was syntactically malformed.
    BadSpec {
        /// The input that failed to parse.
        input: String,
        /// What went wrong.
        reason: String,
    },
    /// `register` would shadow an existing name or alias.
    Duplicate {
        /// The colliding name.
        name: String,
    },
}

impl core::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolicyError::Unknown { name, known } => {
                write!(f, "unknown policy '{name}'; known: {known}")
            }
            PolicyError::BadParam {
                policy,
                key,
                value,
                expected,
            } => write!(
                f,
                "policy '{policy}': parameter {key}={value} is invalid (expected {expected})"
            ),
            PolicyError::BadSpec { input, reason } => {
                write!(f, "malformed policy spec '{input}': {reason}")
            }
            PolicyError::Duplicate { name } => {
                write!(f, "policy name or alias '{name}' is already registered")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// A serializable policy configuration: canonical name plus sorted
/// key/value parameters. This is what campaigns schedule, what the run
/// cache keys on, and what `--model` parses into.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PolicySpec {
    name: String,
    /// Sorted by key; [`PolicySpec::with_param`] maintains the
    /// invariant, so two specs with the same logical parameters are
    /// structurally (and fingerprint-) equal.
    params: Vec<(String, String)>,
}

impl PolicySpec {
    /// A parameterless spec for `name` (the policy's defaults).
    pub fn new(name: impl Into<String>) -> Self {
        PolicySpec {
            name: name.into(),
            params: Vec::new(),
        }
    }

    /// Add (or replace) one parameter, keeping keys sorted so parameter
    /// order never leaks into equality or cache fingerprints.
    #[must_use = "the updated spec is returned, not applied in place"]
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        let key = key.into();
        let value = value.into();
        match self.params.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.params[i].1 = value,
            Err(i) => self.params.insert(i, (key, value)),
        }
        self
    }

    /// The canonical policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted parameter list.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// Look up one parameter's raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.params[i].1.as_str())
    }

    /// A parameter parsed as `f64`, or `default` when absent.
    pub fn param_f64(&self, key: &str, default: f64) -> Result<f64, PolicyError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| self.bad_param(key, "a number")),
        }
    }

    /// A parameter parsed as `u64`, or `default` when absent.
    pub fn param_u64(&self, key: &str, default: u64) -> Result<u64, PolicyError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| self.bad_param(key, "a non-negative integer")),
        }
    }

    /// A parameter parsed as `bool` (`true`/`false`/`1`/`0`), or
    /// `default` when absent.
    pub fn param_bool(&self, key: &str, default: bool) -> Result<bool, PolicyError> {
        match self.get(key) {
            None => Ok(default),
            Some("true") | Some("1") => Ok(true),
            Some("false") | Some("0") => Ok(false),
            Some(_) => Err(self.bad_param(key, "true/false/1/0")),
        }
    }

    fn bad_param(&self, key: &str, expected: &str) -> PolicyError {
        PolicyError::BadParam {
            policy: self.name.clone(),
            key: key.to_string(),
            value: self.get(key).unwrap_or_default().to_string(),
            expected: expected.to_string(),
        }
    }

    /// The spec's stable identity string: the bare name when there are
    /// no parameters (byte-identical to the old `ModelKind::slug`, which
    /// keeps warm run caches and file names valid), or
    /// `name?k=v&k2=v2` with keys in sorted order otherwise. Round-trips
    /// through [`PolicySpec::parse_str`] and is the cell's run-cache key
    /// component, so distinct parameterizations never collide.
    pub fn slug(&self) -> String {
        if self.params.is_empty() {
            return self.name.clone();
        }
        let mut s = self.name.clone();
        for (i, (k, v)) in self.params.iter().enumerate() {
            s.push(if i == 0 { '?' } else { '&' });
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }

    /// Parse a `name` / `name?k=v&k2=v2` spec string *without* resolving
    /// aliases — [`PolicyRegistry::parse`] is the boundary that also
    /// canonicalizes the name.
    pub fn parse_str(input: &str) -> Result<PolicySpec, PolicyError> {
        let bad = |reason: &str| PolicyError::BadSpec {
            input: input.to_string(),
            reason: reason.to_string(),
        };
        let (name, rest) = match input.split_once('?') {
            None => (input, None),
            Some((n, r)) => (n, Some(r)),
        };
        if name.is_empty() {
            return Err(bad("empty policy name"));
        }
        let mut spec = PolicySpec::new(name);
        if let Some(rest) = rest {
            for pair in rest.split('&') {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(bad("parameters must be key=value pairs joined by '&'"));
                };
                if k.is_empty() {
                    return Err(bad("empty parameter key"));
                }
                spec = spec.with_param(k, v);
            }
        }
        Ok(spec)
    }
}

impl core::fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.slug())
    }
}

/// Everything a factory may consult while building: today the trained
/// [`ModelSuite`] (only the ML factories read it). Additional fields can
/// grow here without touching any factory signature.
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext<'a> {
    /// The campaign's trained models.
    pub suite: &'a ModelSuite,
}

/// One registrable policy: identity, documentation, and construction.
///
/// Implementations must be stateless (`Send + Sync`, shared by every
/// worker of a scheduled campaign); per-run state belongs to the built
/// [`PowerPolicy`]. `build` is called once per campaign cell.
pub trait PolicyFactory: Send + Sync {
    /// Canonical lowercase slug (stable: file names, CSV rows and cache
    /// keys embed it).
    fn name(&self) -> &'static str;

    /// Alternate CLI spellings. Must not collide with any other
    /// registered name or alias.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Display name for reports and figure legends.
    fn label(&self) -> &'static str {
        self.name()
    }

    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;

    /// Whether built policies consult the trained suite (callers may
    /// skip training when nothing in a campaign needs it).
    fn uses_ml(&self) -> bool {
        false
    }

    /// Whether built policies may run on the spatially-sharded
    /// intra-run engine ([`dozznoc_noc::shard`]), which gives each
    /// shard its *own* policy instance seeing only its routers'
    /// observations. True (the default) requires every learned or
    /// derived quantity to be per-router, so N instances decide
    /// identically to one. Policies with cross-router shared state
    /// (e.g. a shared Q-table) must return false; the engine then
    /// falls back to the sequential path.
    fn shardable(&self) -> bool {
        true
    }

    /// Construct one policy instance for `spec`. Rejects unknown or
    /// out-of-range parameters with a [`PolicyError`] instead of
    /// panicking — factories run inside campaign workers.
    fn build(
        &self,
        spec: &PolicySpec,
        ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError>;
}

/// An open, ordered set of [`PolicyFactory`]s. Registration order is
/// presentation order (tournaments print in it).
pub struct PolicyRegistry {
    factories: Vec<Box<dyn PolicyFactory>>,
}

impl PolicyRegistry {
    /// An empty registry (for fully custom policy sets).
    pub fn empty() -> Self {
        PolicyRegistry {
            factories: Vec::new(),
        }
    }

    /// A registry pre-loaded with every built-in policy: the five paper
    /// models in Fig. 8 bar order, then the online-learning extensions
    /// (`online-ridge`, `rl-buffer`).
    pub fn builtin() -> Self {
        let mut r = PolicyRegistry::empty();
        for f in crate::policy::builtin_factories() {
            r.register(f)
                .expect("built-in factory names are distinct by construction");
        }
        r
    }

    /// The shared built-in registry the `ModelKind` compatibility shim
    /// and the CLI resolve against.
    pub fn global() -> &'static PolicyRegistry {
        static GLOBAL: OnceLock<PolicyRegistry> = OnceLock::new();
        GLOBAL.get_or_init(PolicyRegistry::builtin)
    }

    /// Add a factory. Fails (registry unchanged) when its name or any
    /// alias — compared case-insensitively — is already taken.
    pub fn register(&mut self, factory: Box<dyn PolicyFactory>) -> Result<(), PolicyError> {
        let mut candidates = vec![factory.name()];
        candidates.extend_from_slice(factory.aliases());
        for cand in candidates {
            if self.resolve(cand).is_ok() {
                return Err(PolicyError::Duplicate {
                    name: cand.to_string(),
                });
            }
        }
        self.factories.push(factory);
        Ok(())
    }

    /// Registered factories in registration order.
    pub fn factories(&self) -> impl Iterator<Item = &dyn PolicyFactory> {
        self.factories.iter().map(Box::as_ref)
    }

    /// Canonical names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.factories.iter().map(|f| f.name()).collect()
    }

    /// One defaults-only spec per registered policy, in registration
    /// order — the tournament's contestant list.
    pub fn default_specs(&self) -> Vec<PolicySpec> {
        self.factories
            .iter()
            .map(|f| PolicySpec::new(f.name()))
            .collect()
    }

    /// Every accepted spelling, `name (alias, alias)`-formatted — the
    /// "known:" list of [`PolicyError::Unknown`].
    pub fn known_names(&self) -> String {
        let mut parts = Vec::with_capacity(self.factories.len());
        for f in &self.factories {
            if f.aliases().is_empty() {
                parts.push(f.name().to_string());
            } else {
                parts.push(format!("{} ({})", f.name(), f.aliases().join(", ")));
            }
        }
        parts.join(", ")
    }

    /// Find the factory answering to `name` (canonical or alias,
    /// case-insensitive).
    pub fn resolve(&self, name: &str) -> Result<&dyn PolicyFactory, PolicyError> {
        let wanted = name.to_ascii_lowercase();
        self.factories
            .iter()
            .find(|f| {
                f.name() == wanted || f.aliases().iter().any(|a| a.eq_ignore_ascii_case(&wanted))
            })
            .map(Box::as_ref)
            .ok_or_else(|| PolicyError::Unknown {
                name: name.to_string(),
                known: self.known_names(),
            })
    }

    /// Parse a CLI-style spec string (`name` or `name?k=v&k2=v2`,
    /// aliases accepted) into a canonical [`PolicySpec`].
    pub fn parse(&self, input: &str) -> Result<PolicySpec, PolicyError> {
        let raw = PolicySpec::parse_str(input)?;
        let factory = self.resolve(raw.name())?;
        Ok(PolicySpec {
            name: factory.name().to_string(),
            params: raw.params,
        })
    }

    /// Build a policy for `spec` against `ctx`.
    pub fn build(
        &self,
        spec: &PolicySpec,
        ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        self.resolve(spec.name())?.build(spec, ctx)
    }

    /// Whether `spec`'s policy may run on the sharded intra-run engine
    /// (see [`PolicyFactory::shardable`]).
    pub fn shardable(&self, spec: &PolicySpec) -> Result<bool, PolicyError> {
        Ok(self.resolve(spec.name())?.shardable())
    }
}

impl core::fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Trainer;
    use dozznoc_ml::FeatureSet;
    use dozznoc_topology::Topology;

    fn suite() -> ModelSuite {
        ModelSuite::train(
            &Trainer::new(Topology::mesh8x8()).with_duration_ns(2_000),
            FeatureSet::Reduced5,
        )
    }

    #[test]
    fn spec_params_stay_sorted_and_replace() {
        let s = PolicySpec::new("online-ridge")
            .with_param("forgetting", "0.9")
            .with_param("delta", "10")
            .with_param("forgetting", "0.95");
        assert_eq!(s.get("forgetting"), Some("0.95"));
        assert_eq!(s.get("delta"), Some("10"));
        assert_eq!(s.slug(), "online-ridge?delta=10&forgetting=0.95");
        // Insertion order must not matter.
        let t = PolicySpec::new("online-ridge")
            .with_param("forgetting", "0.95")
            .with_param("delta", "10");
        assert_eq!(s, t);
    }

    #[test]
    fn parameterless_slug_is_the_bare_name() {
        assert_eq!(PolicySpec::new("dozznoc").slug(), "dozznoc");
    }

    #[test]
    fn spec_string_round_trips() {
        for slug in ["baseline", "rl-buffer?epsilon=0.2&seed=7"] {
            let spec = PolicySpec::parse_str(slug).expect("valid spec");
            assert_eq!(spec.slug(), slug);
        }
        assert!(PolicySpec::parse_str("").is_err());
        assert!(PolicySpec::parse_str("x?noequals").is_err());
        assert!(PolicySpec::parse_str("x?=v").is_err());
    }

    #[test]
    fn unknown_policy_error_lists_the_field() {
        let err = PolicyRegistry::global().parse("nonsense").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown policy 'nonsense'"), "{msg}");
        for name in [
            "baseline",
            "pg",
            "lead",
            "dozznoc",
            "turbo",
            "online-ridge",
            "rl-buffer",
        ] {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn aliases_resolve_to_canonical_names() {
        let r = PolicyRegistry::global();
        for (alias, canonical) in [
            ("powergated", "pg"),
            ("power-gated", "pg"),
            ("LEAD-TAU", "lead"),
            ("dvfs", "lead"),
            ("ml-turbo", "turbo"),
            ("adaptive", "online-ridge"),
            ("rl", "rl-buffer"),
        ] {
            assert_eq!(r.parse(alias).expect(alias).name(), canonical);
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        struct Dup;
        impl PolicyFactory for Dup {
            fn name(&self) -> &'static str {
                "baseline"
            }
            fn description(&self) -> &'static str {
                "shadow"
            }
            fn build(
                &self,
                _spec: &PolicySpec,
                _ctx: &PolicyContext<'_>,
            ) -> Result<Box<dyn PowerPolicy>, PolicyError> {
                Ok(Box::new(crate::policy::Baseline))
            }
        }
        let mut r = PolicyRegistry::builtin();
        let err = r.register(Box::new(Dup)).unwrap_err();
        assert_eq!(
            err,
            PolicyError::Duplicate {
                name: "baseline".into()
            }
        );
    }

    #[test]
    fn bad_params_are_errors_not_panics() {
        let s = suite();
        let ctx = PolicyContext { suite: &s };
        let r = PolicyRegistry::global();
        let spec = PolicySpec::new("online-ridge").with_param("forgetting", "fast");
        let err = r.build(&spec, &ctx).err().expect("bad param must error");
        assert!(matches!(err, PolicyError::BadParam { .. }), "{err}");
        let spec = PolicySpec::new("rl-buffer").with_param("epsilon", "-3");
        assert!(r.build(&spec, &ctx).is_err());
    }

    #[test]
    fn every_builtin_builds_from_its_default_spec() {
        let s = suite();
        let ctx = PolicyContext { suite: &s };
        let r = PolicyRegistry::global();
        assert!(r.names().len() >= 7);
        for spec in r.default_specs() {
            let policy = r.build(&spec, &ctx).expect("default spec builds");
            // Legacy policies keep their frozen display names (e.g. slug
            // "pg" builds a policy named "power-gated"), but every such
            // name must resolve back to the same factory via an alias.
            let canonical = r
                .resolve(policy.name())
                .expect("policy name resolves")
                .name();
            assert_eq!(
                canonical,
                spec.name(),
                "policy {} round-trips",
                policy.name()
            );
        }
    }
}
