//! Content-addressed run cache: every simulation is a pure function of
//! its inputs, so its [`RunReport`] can be keyed by a fingerprint of
//! those inputs and replayed from disk instead of re-simulated.
//!
//! ## Key derivation
//!
//! A cell's [`Fingerprint`] is a stable 64-bit FNV-1a hash over
//! everything the report depends on:
//!
//! 1. [`REPORT_FORMAT_VERSION`] — bumped on schema *or* intentional
//!    behavior changes (the same events that re-bless the determinism
//!    goldens),
//! 2. this crate's version (belt and braces for refactors that forget
//!    the stamp),
//! 3. the serialized [`NocConfig`] (topology, VCs, epoch, T-Idle,
//!    pipeline depth, routing order, wake punching, tick limit),
//! 4. the serialized weights of all three trained models in the
//!    [`ModelSuite`] (λ, validation MSE and epoch size included),
//! 5. the [`dozznoc_traffic::Trace::digest`] of the exact (benchmark,
//!    seed, duration, load-scale) trace content, and
//! 6. the policy slug ([`crate::registry::PolicySpec::slug`]; for the
//!    paper models this equals `ModelKind::slug`, so fingerprints and
//!    warm caches survive the registry redesign byte-for-byte —
//!    parameterized specs render their sorted key/value pairs into the
//!    slug, so distinct parameterizations never collide).
//!
//! Items 1–4 are shared by every cell of a campaign, so the engine
//! hashes them once into a [`Fnv64`] base state and forks it per cell
//! (5–6). Anything *not* in the key must not influence reports: jobs
//! count, telemetry sinks and the sanitizer are all observational.
//!
//! ## Store format and invalidation
//!
//! Entries live as `<fingerprint>.json` under the store directory
//! (`results/.runcache/` for `dozz-repro`), each a [`CachedRun`]
//! envelope: the fingerprint and human-readable key fields are stored
//! alongside the report, and [`RunCache::get`] re-validates them on
//! every hit so a 64-bit collision (or a hand-copied file) degrades to
//! a miss instead of a wrong report. Unparseable entries are treated as
//! misses and rewritten. The store is append-only — invalidation is
//! purely by key change — so `rm -r results/.runcache` is the only
//! cleanup operation, and it is always safe.
//!
//! Reports round-trip bit-identically: floats serialize as their
//! shortest round-tripping decimal and parse back exactly, which the
//! warm-cache case of `tests/determinism.rs` asserts byte-for-byte.

use std::fs;
use std::path::{Path, PathBuf};

use dozz_sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use dozznoc_noc::{NocConfig, RunReport, REPORT_FORMAT_VERSION};

use crate::training::ModelSuite;

/// Incremental FNV-1a hasher with a stable, platform-independent
/// output. `Copy`, so a partially-fed state can be forked: the engine
/// feeds the campaign-wide inputs once and branches per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 {
            state: Self::OFFSET,
        }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Feed a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed a string, length-prefixed so adjacent fields cannot alias
    /// (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A cell's content address. Formats as 16 lowercase hex digits — the
/// on-disk file stem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

impl core::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Hash the campaign-wide fingerprint inputs (format version, crate
/// version, simulator config, trained weights) into a forkable base
/// state. Per-cell inputs are added by [`cell_fingerprint`].
pub fn campaign_base(cfg: &NocConfig, suite: &ModelSuite) -> Fnv64 {
    let mut h = Fnv64::new();
    h.write_u64(u64::from(REPORT_FORMAT_VERSION));
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_str(&serde_json::to_string(cfg).expect("NocConfig always serializes"));
    h.write_str(&suite.dozznoc.to_json());
    h.write_str(&suite.lead.to_json());
    h.write_str(&suite.turbo.to_json());
    h
}

/// Fork a campaign base with one cell's trace digest and policy slug
/// (a `ModelKind::slug` or a `PolicySpec::slug` — for the paper models
/// the two are byte-identical).
pub fn cell_fingerprint(base: Fnv64, trace_digest: u64, policy: &str) -> Fingerprint {
    let mut h = base;
    h.write_u64(trace_digest);
    h.write_str(policy);
    Fingerprint(h.finish())
}

/// Hit/miss/store counters of one [`RunCache`], cheap to copy out for
/// logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that fell through to simulation.
    pub misses: u64,
    /// Reports written (persist failures are not counted — the cache is
    /// strictly best-effort).
    pub stores: u64,
}

/// On-disk envelope of one cached report. The key fields double as the
/// collision check and as human-readable provenance for anyone poking
/// at the store with `jq`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CachedRun {
    /// [`REPORT_FORMAT_VERSION`] at store time.
    format: u32,
    /// The full fingerprint, re-checked against the file's key on load.
    fingerprint: String,
    /// Policy slug of the cached cell (field name `model` is frozen:
    /// it is the on-disk envelope schema).
    model: String,
    /// Trace name of the cached cell.
    trace: String,
    /// The report itself.
    report: RunReport,
}

/// A content-addressed store of [`RunReport`]s in one directory.
///
/// All methods take `&self` and the counters are atomic: one cache is
/// shared by every worker of a scheduled campaign, and distinct
/// fingerprints map to distinct files so concurrent writers never
/// contend on an entry. Same-fingerprint races (two processes warming
/// the same cell) are harmless: both write identical bytes via a
/// temp-file rename.
#[derive(Debug)]
pub struct RunCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl RunCache {
    /// A cache over `dir`. The directory is created lazily on the first
    /// store, so opening a cache that will only ever miss touches
    /// nothing.
    pub fn open(dir: impl Into<PathBuf>) -> RunCache {
        RunCache {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // xtask-analyze: allow(atomic-ordering) — monotonic telemetry counter;
            hits: self.hits.load(Ordering::Relaxed),
            // xtask-analyze: allow(atomic-ordering) — a stale read only skews the
            misses: self.misses.load(Ordering::Relaxed),
            // xtask-analyze: allow(atomic-ordering) — reported hit-rate, never control flow.
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{fp}.json"))
    }

    /// Look up a cell. A hit must match the fingerprint, format
    /// version, policy slug and trace name recorded in the envelope;
    /// anything else — missing file, parse failure, collision — is a
    /// miss.
    pub fn get(&self, fp: Fingerprint, policy: &str, trace_name: &str) -> Option<RunReport> {
        let hit = self.load(fp, policy, trace_name);
        match hit {
            // xtask-analyze: allow(atomic-ordering) — counters order nothing; the
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            // xtask-analyze: allow(atomic-ordering) — cache payload is synchronized by the filesystem.
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn load(&self, fp: Fingerprint, policy: &str, trace_name: &str) -> Option<RunReport> {
        let raw = fs::read_to_string(self.entry_path(fp)).ok()?;
        let entry: CachedRun = serde_json::from_str(&raw).ok()?;
        let valid = entry.format == REPORT_FORMAT_VERSION
            && entry.fingerprint == fp.to_string()
            && entry.model == policy
            && entry.trace == trace_name;
        valid.then_some(entry.report)
    }

    /// Persist a freshly simulated cell. Best-effort: any I/O failure
    /// leaves the cache cold for this cell and the campaign result
    /// untouched.
    pub fn put(&self, fp: Fingerprint, policy: &str, report: &RunReport) {
        let entry = CachedRun {
            format: REPORT_FORMAT_VERSION,
            fingerprint: fp.to_string(),
            model: policy.to_string(),
            trace: report.trace.clone(),
            report: report.clone(),
        };
        let Ok(json) = serde_json::to_string_pretty(&entry) else {
            return;
        };
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        // Write-then-rename so a concurrent reader never sees a torn
        // entry (it would shrug it off as a miss, but why make it). The
        // temp name must be unique per *call*, not just per process:
        // two threads warming the same fingerprint would otherwise
        // share one temp file, and the first rename could publish the
        // second writer's half-written bytes (tests/stress_schedule.rs
        // reproduces exactly that).
        static TMP_SALT: AtomicU64 = AtomicU64::new(0);
        // xtask-analyze: allow(atomic-ordering) — the counter only feeds a unique file name; no data is published through it
        let salt = TMP_SALT.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{fp}.{}.{salt}.tmp", std::process::id()));
        if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, self.entry_path(fp)).is_ok() {
            // xtask-analyze: allow(atomic-ordering) — store counter is telemetry only.
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::training::Trainer;
    use dozznoc_ml::FeatureSet;
    use dozznoc_topology::Topology;
    use dozznoc_traffic::{Benchmark, Trace, TraceGenerator};

    fn tiny_suite(topo: Topology) -> ModelSuite {
        ModelSuite::train(
            &Trainer::new(topo).with_duration_ns(2_000),
            FeatureSet::Reduced5,
        )
    }

    fn tiny_trace(topo: Topology) -> Trace {
        TraceGenerator::new(topo)
            .with_duration_ns(2_000)
            .generate(Benchmark::Fft)
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dozznoc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_is_stable_and_prefix_safe() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(
            a.finish(),
            b.finish(),
            "length prefix must prevent aliasing"
        );
        // Known-answer: FNV-1a of "a" (offset ^ 'a') * prime, after the
        // 8-byte length prefix — just assert determinism across calls.
        let mut c = Fnv64::new();
        c.write_str("ab");
        c.write_str("c");
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn fingerprint_formats_as_16_hex_digits() {
        assert_eq!(Fingerprint(0xdead_beef).to_string(), "00000000deadbeef");
        assert_eq!(Fingerprint(u64::MAX).to_string(), "ffffffffffffffff");
    }

    #[test]
    fn fingerprints_separate_every_key_field() {
        let topo = Topology::mesh8x8();
        let suite = tiny_suite(topo);
        let cfg = NocConfig::paper(topo);
        let trace = tiny_trace(topo);
        let base = campaign_base(&cfg, &suite);

        let fp = cell_fingerprint(base, trace.digest(), "dozznoc");
        // Same inputs → same fingerprint.
        assert_eq!(
            fp,
            cell_fingerprint(campaign_base(&cfg, &suite), trace.digest(), "dozznoc")
        );
        // Policy, trace, and config all separate.
        assert_ne!(fp, cell_fingerprint(base, trace.digest(), "baseline"));
        // Parameterized specs of one policy separate from the defaults.
        assert_ne!(
            fp,
            cell_fingerprint(base, trace.digest(), "dozznoc?epoch=250")
        );
        assert_ne!(
            fp,
            cell_fingerprint(base, trace.compress(2).digest(), "dozznoc")
        );
        let other_cfg = cfg.with_t_idle(16);
        assert_ne!(
            fp,
            cell_fingerprint(campaign_base(&other_cfg, &suite), trace.digest(), "dozznoc")
        );
    }

    #[test]
    fn round_trips_a_report_and_counts() {
        let topo = Topology::mesh8x8();
        let suite = tiny_suite(topo);
        let trace = tiny_trace(topo);
        let report = crate::experiment::run_model(
            NocConfig::paper(topo),
            &trace,
            ModelKind::Baseline,
            &suite,
        );

        let dir = temp_store("roundtrip");
        let cache = RunCache::open(&dir);
        let fp = cell_fingerprint(
            campaign_base(&NocConfig::paper(topo), &suite),
            trace.digest(),
            ModelKind::Baseline.slug(),
        );
        assert!(cache.get(fp, "baseline", &trace.name).is_none());
        cache.put(fp, "baseline", &report);
        let back = cache
            .get(fp, "baseline", &trace.name)
            .expect("stored entry hits");
        // Byte-identical round trip, floats included.
        assert_eq!(
            serde_json::to_string(&back).expect("report serializes"),
            serde_json::to_string(&report).expect("report serializes"),
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stores: 1
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_envelope_is_a_miss() {
        let topo = Topology::mesh8x8();
        let suite = tiny_suite(topo);
        let trace = tiny_trace(topo);
        let report = crate::experiment::run_model(
            NocConfig::paper(topo),
            &trace,
            ModelKind::Baseline,
            &suite,
        );
        let dir = temp_store("mismatch");
        let cache = RunCache::open(&dir);
        let fp = Fingerprint(42);
        cache.put(fp, "baseline", &report);
        // Wrong policy or wrong trace name → miss, not a wrong report.
        assert!(cache.get(fp, "dozznoc", &trace.name).is_none());
        assert!(cache.get(fp, "baseline", "not-fft").is_none());
        // A parameterized slug of the same policy is a different key.
        assert!(cache.get(fp, "baseline?x=1", &trace.name).is_none());
        // Corrupt entry → miss.
        fs::write(cache.entry_path(fp), "{torn").expect("test write");
        assert!(cache.get(fp, "baseline", &trace.name).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
