//! Cell-granular work-stealing scheduler for the experiment engine.
//!
//! A campaign is a matrix of independent (benchmark, model) cells, each
//! a pure function of its inputs. The engine turns that matrix into a
//! flat task list and drains it with a pool of scoped workers:
//!
//! * **Shared injector** — a single atomic cursor over the task list.
//!   Workers steal the next unclaimed index; there is no per-worker
//!   queue to balance, so a slow cell (the compressed x264 run) never
//!   idles the other workers the way the old one-thread-per-benchmark
//!   fan-out did.
//! * **Indexed slots** — every task writes its result into the
//!   pre-sized slot for its index. Output order is structural (the task
//!   list order), not reconstructed by sorting after a mutex-guarded
//!   push, so scheduling order can never leak into results.
//! * **`jobs = 1` runs inline** — no thread is spawned at all, making
//!   the single-job configuration literally the sequential engine that
//!   parallel runs are compared against in `tests/determinism.rs`.
//!
//! All synchronization goes through the `dozz_sync` facade (`cargo
//! xtask analyze`'s `sync-facade` pass denies raw `std::sync` /
//! `std::thread` outside `crates/sync`), which is what lets
//! `cargo xtask model-check` drive this scheduler — cursor claims and
//! scope joins included — through every interleaving.

use std::num::NonZeroUsize;

use dozz_sync::atomic::{AtomicUsize, Ordering};

/// A shared injector over `count` tasks: workers steal ascending
/// indices until the list is drained. Claiming is a single
/// `fetch_add`, so contention is one atomic per cell regardless of
/// worker count.
#[derive(Debug)]
pub struct Injector {
    next: AtomicUsize,
    count: usize,
}

impl Injector {
    /// An injector over `count` tasks, none yet claimed.
    pub fn new(count: usize) -> Self {
        Injector {
            next: AtomicUsize::new(0),
            count,
        }
    }

    /// Claim the next unclaimed task index, or `None` when drained.
    pub fn steal(&self) -> Option<usize> {
        // Relaxed is enough: the index handoff itself is the only
        // synchronization needed for claiming, and result visibility is
        // ordered by the scope join (and `OnceLock::set`), not by this
        // counter.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.count).then_some(i)
    }

    /// Total tasks the injector was created with.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Worker count to use when the caller does not specify one: the
/// machine's available parallelism (1 if that cannot be determined).
pub fn default_jobs() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Run `count` independent tasks on up to `jobs` workers and return
/// their results in index order.
///
/// `task(i)` must be a pure function of `i` for the index-ordered
/// output to be deterministic; the scheduler guarantees each index is
/// claimed exactly once and its result lands in slot `i`. With
/// `jobs = 1` the tasks run inline on the caller's thread in ascending
/// order. A panicking task aborts the whole schedule (the scope join
/// propagates the panic), matching the previous fan-out's behavior.
pub fn run_indexed<T, F>(jobs: NonZeroUsize, count: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = jobs.get().min(count);
    if workers == 1 {
        return (0..count).map(task).collect();
    }

    let injector = Injector::new(count);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    dozz_sync::thread::scope(|scope| {
        // Workers return their (index, result) batches through their
        // join handles; the claiming injector guarantees the index sets
        // are disjoint, so the merge below is plain indexed writes into
        // the pre-sized slots — no locks, no sort.
        let workers: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut batch = Vec::new();
                    while let Some(i) = injector.steal() {
                        batch.push((i, task(i)));
                    }
                    batch
                })
            })
            .collect();
        for worker in workers {
            let batch = worker
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            for (i, value) in batch {
                let slot = slots.get_mut(i).expect("slots are pre-sized to count");
                debug_assert!(slot.is_none(), "cell {i} scheduled twice");
                *slot = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        // xtask-analyze: allow(panic-reachability) — scheduler invariant: every slot is filled exactly once
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} was never executed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    use dozz_sync::Mutex;

    fn jobs(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).expect("test job counts are positive")
    }

    #[test]
    fn injector_hands_out_each_index_once() {
        let inj = Injector::new(3);
        assert_eq!(inj.count(), 3);
        assert_eq!(inj.steal(), Some(0));
        assert_eq!(inj.steal(), Some(1));
        assert_eq!(inj.steal(), Some(2));
        assert_eq!(inj.steal(), None);
        assert_eq!(inj.steal(), None);
    }

    #[test]
    fn results_are_in_index_order_regardless_of_jobs() {
        for j in [1, 2, 4, 16] {
            let out = run_indexed(jobs(j), 33, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>(), "jobs={j}");
        }
    }

    #[test]
    fn empty_schedule_is_empty() {
        let out: Vec<u32> = run_indexed(jobs(8), 0, |_| unreachable!("no tasks to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        run_indexed(jobs(7), 100, |i| {
            seen.lock().expect("test mutex").push(i);
        });
        let seen = seen.into_inner().expect("test mutex");
        assert_eq!(seen.len(), 100);
        assert_eq!(seen.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn single_job_runs_inline_in_ascending_order() {
        let order = Mutex::new(Vec::new());
        let main_thread = std::thread::current().id();
        run_indexed(jobs(1), 5, |i| {
            assert_eq!(
                std::thread::current().id(),
                main_thread,
                "jobs=1 must not spawn"
            );
            order.lock().expect("test mutex").push(i);
        });
        assert_eq!(order.into_inner().expect("test mutex"), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        let out = run_indexed(jobs(64), 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
