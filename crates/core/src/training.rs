//! The offline training pipeline (§III-D, §IV-A).
//!
//! 1. Run the *reactive* variant of each ML model on the six training
//!    traces and three validation traces, collecting Full-41
//!    (features, future-IBU) examples per router per epoch.
//! 2. Project the examples to the target feature set.
//! 3. Fit ridge regression, sweeping λ on the validation examples.
//! 4. Export a [`TrainedModel`] for the network simulator.
//!
//! Each ML model (DOZZNOC, LEAD-τ, ML+TURBO) trains on *its own* data —
//! "each model will use unique training/validation data" — because the
//! gating behaviour of the collecting policy changes the feature
//! distribution (a gated router's off-time features are only non-zero
//! when collection runs under gating). Each epoch size likewise gets its
//! own model.

use dozznoc_ml::ridge::DEFAULT_LAMBDA_GRID;
use dozznoc_ml::{Dataset, FeatureSet, RidgeRegression, TrainedModel};
use dozznoc_noc::{Network, NocConfig};
use dozznoc_topology::Topology;
use dozznoc_traffic::{Benchmark, Trace, TraceGenerator, TRAIN_BENCHMARKS, VALIDATION_BENCHMARKS};
use dozznoc_types::ConfigError;

use crate::collect::Collector;
use crate::policy::Reactive;

/// Which reactive collector gathers a model's training data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactiveKind {
    /// Gating + DVFS (trains DOZZNOC and ML+TURBO).
    Gated,
    /// DVFS only (trains LEAD-τ).
    DvfsOnly,
}

impl ReactiveKind {
    fn policy(&self) -> Reactive {
        match self {
            ReactiveKind::Gated => Reactive::dozznoc(),
            ReactiveKind::DvfsOnly => Reactive::lead(),
        }
    }
}

/// Training orchestrator: owns the trace generator and simulator config.
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    topology: Topology,
    epoch_cycles: u64,
    duration_ns: u64,
    seed: u64,
    load_scale: (u64, u64),
}

impl Trainer {
    /// A trainer at the paper's defaults (epoch 500, uncompressed).
    pub fn new(topology: Topology) -> Self {
        Trainer {
            topology,
            epoch_cycles: 500,
            duration_ns: TraceGenerator::DEFAULT_DURATION_NS,
            seed: 0,
            load_scale: (1, 1),
        }
    }

    /// Train at a different epoch size (the §IV-B sweep). Rejects
    /// epochs shorter than [`dozznoc_types::MIN_EPOCH_CYCLES`].
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_epoch_cycles(mut self, epoch_cycles: u64) -> Result<Self, ConfigError> {
        if epoch_cycles < dozznoc_types::MIN_EPOCH_CYCLES {
            return Err(ConfigError::DegenerateEpoch { epoch_cycles });
        }
        self.epoch_cycles = epoch_cycles;
        Ok(self)
    }

    /// Shorter traces (tests / CI).
    #[must_use]
    pub fn with_duration_ns(mut self, duration_ns: u64) -> Self {
        self.duration_ns = duration_ns;
        self
    }

    /// Alternate seed for the trace generator.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Collect (and train on) time-compressed traces.
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_compression(mut self, factor: u64) -> Result<Self, ConfigError> {
        if factor == 0 {
            return Err(ConfigError::ZeroCompression);
        }
        self.load_scale = (1, factor);
        Ok(self)
    }

    /// Fractional load scaling (see `Campaign::try_with_load_scale`).
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_load_scale(mut self, num: u64, den: u64) -> Result<Self, ConfigError> {
        if num == 0 || den == 0 {
            return Err(ConfigError::ZeroLoadScale { num, den });
        }
        self.load_scale = (num, den);
        Ok(self)
    }

    /// The simulator configuration training runs use.
    pub fn config(&self) -> NocConfig {
        NocConfig::paper(self.topology)
            .try_with_epoch_cycles(self.epoch_cycles)
            .expect("trainer epoch validated at construction")
    }

    fn trace(&self, bench: Benchmark) -> Trace {
        let t = TraceGenerator::new(self.topology)
            .with_duration_ns(self.duration_ns)
            .with_seed(self.seed)
            .generate(bench);
        let (num, den) = self.load_scale;
        t.rescale(num, den)
    }

    /// Run the reactive collector over `benches` and return the pooled
    /// Full-41 dataset.
    pub fn collect(&self, kind: ReactiveKind, benches: &[Benchmark]) -> Dataset {
        let mut pooled = Dataset::new(FeatureSet::Full41.len());
        for &bench in benches {
            let trace = self.trace(bench);
            let mut collector = Collector::new(kind.policy(), self.topology.num_routers());
            Network::new(self.config())
                .run(&trace, &mut collector)
                // xtask-analyze: allow(panic-reachability) — driver-level escalation; a failed training run has no recovery
                .unwrap_or_else(|e| panic!("training run on {bench} failed: {e}"));
            let (ds, _) = collector.into_dataset();
            pooled.extend(&ds);
        }
        pooled
    }

    /// Full pipeline for one model: collect → project → fit → export.
    pub fn train(&self, kind: ReactiveKind, feature_set: FeatureSet) -> TrainedModel {
        let train41 = self.collect(kind, &TRAIN_BENCHMARKS);
        let val41 = self.collect(kind, &VALIDATION_BENCHMARKS);
        self.train_from_datasets(&train41, &val41, feature_set)
    }

    /// Fit from pre-collected Full-41 datasets (lets callers reuse one
    /// collection pass across feature sets — e.g. the Fig. 9 study).
    pub fn train_from_datasets(
        &self,
        train41: &Dataset,
        val41: &Dataset,
        feature_set: FeatureSet,
    ) -> TrainedModel {
        let cols = feature_set.columns_in_full41();
        let train = train41.project(&cols);
        let val = val41.project(&cols);
        let report = RidgeRegression::fit_with_validation(&train, &val, &DEFAULT_LAMBDA_GRID);
        TrainedModel::new(
            feature_set,
            report.weights,
            self.epoch_cycles,
            report.lambda,
            report.validation_mse,
        )
    }

    /// Fit a single-feature model (bias + one Full-41 column), the
    /// Fig. 9 trade-off study. Returns the weights as a 2-vector.
    pub fn train_single_feature(
        &self,
        train41: &Dataset,
        val41: &Dataset,
        column: usize,
    ) -> Vec<f64> {
        let cols = [0, column]; // Full-41 column 0 is the bias
        let train = train41.project(&cols);
        let val = val41.project(&cols);
        RidgeRegression::fit_with_validation(&train, &val, &DEFAULT_LAMBDA_GRID).weights
    }
}

/// The three trained models one evaluation campaign needs.
#[derive(Debug, Clone)]
pub struct ModelSuite {
    /// Drives DOZZNOC.
    pub dozznoc: TrainedModel,
    /// Drives LEAD-τ.
    pub lead: TrainedModel,
    /// Drives ML+TURBO (trained on gated data like DOZZNOC).
    pub turbo: TrainedModel,
}

impl ModelSuite {
    /// Train all three models (paper §IV-A: "This is repeated for all
    /// three ML models").
    pub fn train(trainer: &Trainer, feature_set: FeatureSet) -> ModelSuite {
        // DOZZNOC and ML+TURBO share the gated reactive collector (the
        // turbo rule only changes test-time selection, not the label
        // definition); LEAD-τ trains on ungated data.
        let gated_train = trainer.collect(ReactiveKind::Gated, &TRAIN_BENCHMARKS);
        let gated_val = trainer.collect(ReactiveKind::Gated, &VALIDATION_BENCHMARKS);
        let dozznoc = trainer.train_from_datasets(&gated_train, &gated_val, feature_set);
        let turbo = dozznoc.clone();
        let lead = trainer.train(ReactiveKind::DvfsOnly, feature_set);
        ModelSuite {
            dozznoc,
            lead,
            turbo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dozznoc_ml::{mode_selection_accuracy, RidgeRegression};
    use dozznoc_traffic::TEST_BENCHMARKS;

    /// A small trainer: short traces keep the test fast while still
    /// crossing dozens of epoch boundaries per router.
    fn tiny() -> Trainer {
        Trainer::new(Topology::mesh8x8()).with_duration_ns(4_000)
    }

    #[test]
    fn collection_yields_examples() {
        let ds = tiny().collect(ReactiveKind::Gated, &[Benchmark::Canneal]);
        // 64 routers × (epochs − 1) examples; must be substantial.
        assert!(ds.len() > 200, "only {} examples", ds.len());
        assert_eq!(ds.dim(), 41);
    }

    #[test]
    fn trained_model_beats_the_mean_predictor_on_held_out_data() {
        let trainer = tiny();
        let model = trainer.train(ReactiveKind::Gated, FeatureSet::Reduced5);
        assert_eq!(model.weights.len(), 5);
        // Evaluate on a held-out test benchmark.
        let test41 = trainer.collect(ReactiveKind::Gated, &[TEST_BENCHMARKS[0]]);
        let test = test41.project(&FeatureSet::Reduced5.columns_in_full41());
        let pred = RidgeRegression::predict(&model.weights, &test);
        let acc = mode_selection_accuracy(&pred, test.labels());
        // The paper's single-feature IBU model already reaches ~80%;
        // the 5-feature model must clear a conservative bar.
        assert!(acc > 0.5, "mode-selection accuracy {acc}");
    }

    #[test]
    fn suite_trains_three_models() {
        let suite = ModelSuite::train(&tiny(), FeatureSet::Reduced5);
        assert_eq!(suite.dozznoc.feature_set, FeatureSet::Reduced5);
        assert_eq!(suite.lead.feature_set, FeatureSet::Reduced5);
        // Turbo shares DOZZNOC's weights; LEAD trains on different data.
        assert_eq!(suite.turbo.weights, suite.dozznoc.weights);
        assert_ne!(suite.lead.weights, suite.dozznoc.weights);
    }

    #[test]
    fn single_feature_training_works() {
        let trainer = tiny();
        let train41 = trainer.collect(ReactiveKind::Gated, &[Benchmark::Ferret]);
        let val41 = trainer.collect(ReactiveKind::Gated, &[Benchmark::Vips]);
        let ibu_col = FeatureSet::Reduced5.columns_in_full41()[4];
        let w = trainer.train_single_feature(&train41, &val41, ibu_col);
        assert_eq!(w.len(), 2);
        // IBU is strongly autocorrelated: its weight must be positive.
        assert!(w[1] > 0.0, "IBU weight {w:?}");
    }
}
