//! High-level experiment API: train once, run any model on any trace,
//! or fan a whole campaign across benchmarks.
//!
//! Campaign execution goes through one engine ([`Campaign::run_cells`]):
//! the (benchmark, model) matrix flattens into independent cells drained
//! by the work-stealing scheduler ([`crate::schedule`]), traces are
//! generated once per benchmark and shared across cells, results land in
//! pre-sized indexed slots, and an optional content-addressed run cache
//! ([`crate::cache`]) replays previously simulated cells from disk.
//! Every configuration — any `jobs` count, warm or cold cache — produces
//! bit-identical results (see `tests/determinism.rs`).

use std::num::NonZeroUsize;

use dozz_sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use dozznoc_noc::{
    Network, NocConfig, NullSink, PowerPolicy, RunReport, SanitizerReport, SimSanitizer, Telemetry,
};
use dozznoc_topology::Topology;
use dozznoc_traffic::{Benchmark, Trace, TraceGenerator};
use dozznoc_types::ConfigError;

use crate::cache::{self, RunCache};
use crate::measure::{CellMeasure, CellStopwatch};
use crate::model::{ModelKind, ALL_MODELS};
use crate::registry::{PolicyContext, PolicyError, PolicyRegistry, PolicySpec};
use crate::schedule;
use crate::training::ModelSuite;

/// Run one model on one trace and report.
pub fn run_model(cfg: NocConfig, trace: &Trace, kind: ModelKind, suite: &ModelSuite) -> RunReport {
    run_model_with_telemetry(cfg, trace, kind, suite, &mut NullSink)
}

/// Run one model on one trace, streaming per-epoch telemetry into `tel`.
pub fn run_model_with_telemetry(
    cfg: NocConfig,
    trace: &Trace,
    kind: ModelKind,
    suite: &ModelSuite,
    tel: &mut dyn Telemetry,
) -> RunReport {
    let mut policy = kind.build(suite);
    Network::new(cfg)
        .run_with_telemetry(trace, policy.as_mut(), tel)
        // xtask-analyze: allow(panic-reachability) — driver-level escalation; a failed run invalidates the whole campaign
        .unwrap_or_else(|e| panic!("{kind} on {} failed: {e}", trace.name))
}

/// Run one model on one trace under a runtime invariant sanitizer (see
/// [`dozznoc_noc::sanitizer`]): every event tick is swept for
/// flow-control, conservation and scheduling violations, collected in
/// `san` for [`SimSanitizer::report`]. The returned report is
/// bit-identical to [`run_model`]'s — the sanitizer only observes.
pub fn run_model_sanitized(
    cfg: NocConfig,
    trace: &Trace,
    kind: ModelKind,
    suite: &ModelSuite,
    tel: &mut dyn Telemetry,
    san: &mut SimSanitizer,
) -> RunReport {
    let mut policy = kind.build(suite);
    Network::new(cfg)
        .run_sanitized(trace, policy.as_mut(), tel, san)
        // xtask-analyze: allow(panic-reachability) — driver-level escalation; a failed run invalidates the whole campaign
        .unwrap_or_else(|e| panic!("{kind} on {} failed: {e}", trace.name))
}

/// Run one registered policy (any [`PolicySpec`], paper model or
/// plug-in) on one trace, streaming telemetry into `tel`. Errors on
/// unknown names or invalid parameters instead of panicking — this is
/// the CLI-boundary entry point.
pub fn run_policy_with_telemetry(
    cfg: NocConfig,
    trace: &Trace,
    spec: &PolicySpec,
    registry: &PolicyRegistry,
    suite: &ModelSuite,
    tel: &mut dyn Telemetry,
) -> Result<RunReport, PolicyError> {
    let mut policy = registry.build(spec, &PolicyContext { suite })?;
    Ok(Network::new(cfg)
        .run_with_telemetry(trace, policy.as_mut(), tel)
        // xtask-analyze: allow(panic-reachability) — driver-level escalation; a failed run invalidates the whole campaign
        .unwrap_or_else(|e| panic!("{spec} on {} failed: {e}", trace.name)))
}

/// Simulate one already-built policy, optionally under the invariant
/// sanitizer: the sequential-engine funnel. Cells eligible for the
/// sharded engine ([`EngineOptions::shards`] > 1) dispatch to
/// [`dozznoc_noc::run_sharded`] instead, which is bit-identical.
fn simulate(
    cfg: NocConfig,
    trace: &Trace,
    policy: &mut dyn PowerPolicy,
    sanitize: bool,
) -> (RunReport, Option<SanitizerReport>) {
    if sanitize {
        let mut san = SimSanitizer::default();
        let report = Network::new(cfg)
            .run_sanitized(trace, policy, &mut NullSink, &mut san)
            // xtask-analyze: allow(panic-reachability) — driver-level escalation; a failed run invalidates the whole campaign
            .unwrap_or_else(|e| panic!("policy on {} failed: {e}", trace.name));
        (report, Some(san.report()))
    } else {
        let report = Network::new(cfg)
            .run_with_telemetry(trace, policy, &mut NullSink)
            // xtask-analyze: allow(panic-reachability) — driver-level escalation; a failed run invalidates the whole campaign
            .unwrap_or_else(|e| panic!("policy on {} failed: {e}", trace.name));
        (report, None)
    }
}

/// One cell of a campaign: a model evaluated on a benchmark.
///
/// Frozen schema: this struct is serialized into determinism goldens
/// and CSV artifacts, so it keeps the closed [`ModelKind`] — campaigns
/// over arbitrary registered policies produce [`PolicyResult`]s instead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The benchmark run.
    pub benchmark: String,
    /// The model run.
    pub model: ModelKind,
    /// The run's report.
    pub report: RunReport,
}

/// One cell of a policy campaign: a [`PolicySpec`] evaluated on a
/// benchmark — the open-registry counterpart of [`CampaignResult`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyResult {
    /// The benchmark run.
    pub benchmark: String,
    /// The policy spec run.
    pub policy: PolicySpec,
    /// The run's report.
    pub report: RunReport,
}

/// One executed (or replayed) policy-campaign cell.
#[derive(Debug, Clone)]
pub struct PolicyCellRun {
    /// The cell's result, exactly as a cache-less sequential run would
    /// produce it.
    pub result: PolicyResult,
    /// True when the report was replayed from the run cache.
    pub cache_hit: bool,
    /// The sanitizer's findings, when the cell was simulated under
    /// [`EngineOptions::sanitize`].
    pub sanitizer: Option<SanitizerReport>,
    /// Wall/CPU/RSS readings for the cell, when the cell ran under
    /// [`EngineOptions::measure`].
    pub measure: Option<CellMeasure>,
}

/// A full evaluation campaign: all five models over a set of benchmarks,
/// at a given compression factor.
#[derive(Debug, Clone)]
pub struct Campaign {
    topology: Topology,
    epoch_cycles: u64,
    duration_ns: u64,
    seed: u64,
    load_scale: (u64, u64),
    models: Vec<ModelKind>,
}

impl Campaign {
    /// A campaign at the paper's defaults over all five models.
    pub fn new(topology: Topology) -> Self {
        Campaign {
            topology,
            epoch_cycles: 500,
            duration_ns: TraceGenerator::DEFAULT_DURATION_NS,
            seed: 0,
            load_scale: (1, 1),
            models: ALL_MODELS.to_vec(),
        }
    }

    /// Epoch size override. Rejects degenerate epochs (see
    /// [`dozznoc_types::MIN_EPOCH_CYCLES`]).
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_epoch_cycles(mut self, epoch_cycles: u64) -> Result<Self, ConfigError> {
        if epoch_cycles < dozznoc_types::MIN_EPOCH_CYCLES {
            return Err(ConfigError::DegenerateEpoch { epoch_cycles });
        }
        self.epoch_cycles = epoch_cycles;
        Ok(self)
    }

    /// Trace horizon override.
    #[must_use]
    pub fn with_duration_ns(mut self, duration_ns: u64) -> Self {
        self.duration_ns = duration_ns;
        self
    }

    /// Seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run on time-compressed traces (Fig. 8(a,b)). A factor of 1 is
    /// uncompressed; 0 is rejected.
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_compression(mut self, factor: u64) -> Result<Self, ConfigError> {
        if factor == 0 {
            return Err(ConfigError::ZeroCompression);
        }
        self.load_scale = (1, factor);
        Ok(self)
    }

    /// Fractional compression: injection times scaled by `num/den`
    /// (load changes by `den/num`). The Fig. 8 "compressed" runs use
    /// 2/3 — 1.5× load, near but not past saturation. Zero terms are
    /// rejected.
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_load_scale(mut self, num: u64, den: u64) -> Result<Self, ConfigError> {
        if num == 0 || den == 0 {
            return Err(ConfigError::ZeroLoadScale { num, den });
        }
        self.load_scale = (num, den);
        Ok(self)
    }

    /// Restrict the model set. An empty set is rejected.
    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn try_with_models(mut self, models: &[ModelKind]) -> Result<Self, ConfigError> {
        if models.is_empty() {
            return Err(ConfigError::EmptyModelSet);
        }
        self.models = models.to_vec();
        Ok(self)
    }

    /// Simulator configuration the campaign uses.
    pub fn config(&self) -> NocConfig {
        NocConfig::paper(self.topology)
            .try_with_epoch_cycles(self.epoch_cycles)
            .expect("campaign epoch validated at construction")
    }

    /// Generate (and optionally compress) one benchmark's trace.
    pub fn trace(&self, bench: Benchmark) -> Trace {
        let t = TraceGenerator::new(self.topology)
            .with_duration_ns(self.duration_ns)
            .with_seed(self.seed)
            .generate(bench);
        let (num, den) = self.load_scale;
        t.rescale(num, den)
    }

    /// The campaign's flat cell list: benchmark-major, model-minor —
    /// the presentation order every figure prints in. Cell `i` of any
    /// engine run corresponds to entry `i` here, which is what makes
    /// result ordering structural instead of sorted.
    fn cells(&self, benches: &[Benchmark]) -> Vec<(usize, Benchmark, ModelKind)> {
        let mut cells = Vec::with_capacity(benches.len() * self.models.len());
        for (bi, &bench) in benches.iter().enumerate() {
            for &model in &self.models {
                cells.push((bi, bench, model));
            }
        }
        cells
    }

    /// Run every model over every benchmark with the default engine
    /// (all available cores, no cache).
    pub fn run(&self, benches: &[Benchmark], suite: &ModelSuite) -> Vec<CampaignResult> {
        self.run_cells(benches, suite, &EngineOptions::default())
            .into_iter()
            .map(|cell| cell.result)
            .collect()
    }

    /// Run the campaign matrix through the cell engine.
    ///
    /// Each (benchmark, model) cell is an independent task drained from
    /// a shared injector by `opts.jobs` workers (default: all available
    /// cores). Traces are generated once per benchmark — by whichever
    /// worker gets there first — and shared by reference-counted handle
    /// with every cell of that benchmark. With `opts.cache` set, cells
    /// whose fingerprint is already stored replay from disk without
    /// simulating; fresh simulations are stored on completion. With
    /// `opts.sanitize`, simulated cells run under a fresh
    /// [`SimSanitizer`] whose report rides along (cache hits skip
    /// simulation and so carry no sanitizer report).
    ///
    /// Results arrive in cell order (benchmark-major, model-minor),
    /// bit-identical for every `jobs` count and cache state.
    pub fn run_cells(
        &self,
        benches: &[Benchmark],
        suite: &ModelSuite,
        opts: &EngineOptions<'_>,
    ) -> Vec<CellRun> {
        // The ModelKind matrix is a special case of the spec engine:
        // every kind maps to its defaults-only spec (identical slug, so
        // identical cache fingerprints), runs through the same cells,
        // and is mapped back to the frozen CampaignResult schema.
        let specs: Vec<PolicySpec> = self.models.iter().map(ModelKind::spec).collect();
        let runs = self
            .run_policy_cells(benches, &specs, suite, PolicyRegistry::global(), opts)
            .expect("paper-model default specs always build");
        runs.into_iter()
            .enumerate()
            .map(|(i, run)| CellRun {
                result: CampaignResult {
                    benchmark: run.result.benchmark,
                    // Cell order is benchmark-major, model-minor, so the
                    // model cycles with period `models.len()`.
                    model: self.models[i % self.models.len()],
                    report: run.result.report,
                },
                cache_hit: run.cache_hit,
                sanitizer: run.sanitizer,
                measure: run.measure,
            })
            .collect()
    }

    /// Run an arbitrary set of registered policies over the benchmark
    /// matrix — the open-registry engine behind [`Campaign::run_cells`].
    ///
    /// Each (benchmark, spec) cell is an independent task drained by
    /// `opts.jobs` workers; the policy is built fresh per cell from its
    /// spec (stateful policies must not leak state across cells), and
    /// the run cache keys on [`PolicySpec::slug`] so parameterizations
    /// of one policy never collide. Every spec is resolved and built
    /// once up front: unknown names and invalid parameters surface as a
    /// [`PolicyError`] before any cell simulates.
    ///
    /// Results arrive in cell order (benchmark-major, spec-minor),
    /// bit-identical for every `jobs` count and cache state.
    pub fn run_policy_cells(
        &self,
        benches: &[Benchmark],
        specs: &[PolicySpec],
        suite: &ModelSuite,
        registry: &PolicyRegistry,
        opts: &EngineOptions<'_>,
    ) -> Result<Vec<PolicyCellRun>, PolicyError> {
        let labels: Vec<String> = benches.iter().map(|b| b.name().to_string()).collect();
        self.run_spec_cells(
            &labels,
            &|bi| self.trace(benches[bi]),
            specs,
            suite,
            registry,
            opts,
        )
    }

    /// Run registered policies over *pre-built traces* instead of the
    /// benchmark generator — the entry point the `cargo xtask bench`
    /// regime harness drives with synthetic load-regime traces. Every
    /// engine property of [`Campaign::run_policy_cells`] holds: cells
    /// are (trace, spec) pairs in trace-major order, drained by
    /// `opts.jobs` workers, cached by trace digest × spec slug.
    ///
    /// The campaign's own trace knobs (duration, seed, compression) are
    /// ignored here — the caller owns trace construction — but its
    /// topology and epoch settings still shape the simulator config, so
    /// traces must target the campaign's topology.
    pub fn run_trace_cells(
        &self,
        traces: &[Trace],
        specs: &[PolicySpec],
        suite: &ModelSuite,
        registry: &PolicyRegistry,
        opts: &EngineOptions<'_>,
    ) -> Result<Vec<PolicyCellRun>, PolicyError> {
        let labels: Vec<String> = traces.iter().map(|t| t.name.clone()).collect();
        self.run_spec_cells(
            &labels,
            &|ti| traces[ti].clone(),
            specs,
            suite,
            registry,
            opts,
        )
    }

    /// The one spec-matrix engine behind [`Campaign::run_policy_cells`]
    /// and [`Campaign::run_trace_cells`]: one trace source per `labels`
    /// entry (materialized lazily, at most once, by `trace_of`) ×
    /// `specs`, scheduled, cached and measured identically for both
    /// entries. `labels[si]` becomes the result's `benchmark` field.
    fn run_spec_cells(
        &self,
        labels: &[String],
        trace_of: &(dyn Fn(usize) -> Trace + Sync),
        specs: &[PolicySpec],
        suite: &ModelSuite,
        registry: &PolicyRegistry,
        opts: &EngineOptions<'_>,
    ) -> Result<Vec<PolicyCellRun>, PolicyError> {
        let ctx = PolicyContext { suite };
        for spec in specs {
            drop(registry.build(spec, &ctx)?);
        }
        let cfg = self.config();
        let mut cells = Vec::with_capacity(labels.len() * specs.len());
        for si in 0..labels.len() {
            for spec in specs {
                cells.push((si, spec));
            }
        }
        let base = opts.cache.map(|_| cache::campaign_base(&cfg, suite));
        // One lazily generated (trace, digest) per source, shared by
        // all of its cells.
        let traces: Vec<OnceLock<(Arc<Trace>, u64)>> =
            labels.iter().map(|_| OnceLock::new()).collect();

        let jobs = opts.jobs.unwrap_or_else(schedule::default_jobs);
        Ok(schedule::run_indexed(jobs, cells.len(), |i| {
            let stopwatch = opts.measure.then(CellStopwatch::start);
            let (si, spec) = cells[i];
            let slug = spec.slug();
            let (trace, digest) = traces[si].get_or_init(|| {
                let trace = trace_of(si);
                let digest = trace.digest();
                (Arc::new(trace), digest)
            });
            let trace = Arc::clone(trace);
            let result = |report| PolicyResult {
                benchmark: labels[si].clone(),
                policy: spec.clone(),
                report,
            };

            let fp = base.map(|b| cache::cell_fingerprint(b, *digest, &slug));
            if let (Some(cache), Some(fp)) = (opts.cache, fp) {
                if let Some(report) = cache.get(fp, &slug, &trace.name) {
                    return PolicyCellRun {
                        result: result(report),
                        cache_hit: true,
                        sanitizer: None,
                        measure: stopwatch.map(CellStopwatch::stop),
                    };
                }
            }

            // Engine selection: the sharded engine takes eligible cells
            // (it produces bit-identical reports, so the cache and the
            // goldens never see the difference); the sanitizer hooks
            // the sequential loop, and policies with cross-router
            // shared state must see every router from one instance.
            let sharded = opts.shards > 1
                && !opts.sanitize
                && registry
                    .shardable(spec)
                    .expect("specs validated before scheduling");
            let (report, sanitizer) = if sharded {
                let report = dozznoc_noc::run_sharded(cfg, &trace, opts.shards, &|_shard| {
                    registry
                        .build(spec, &ctx)
                        .expect("specs validated before scheduling")
                })
                // xtask-analyze: allow(panic-reachability) — driver-level escalation; a failed run invalidates the whole campaign
                .unwrap_or_else(|e| panic!("policy on {} failed: {e}", trace.name));
                (report, None)
            } else {
                let mut policy = registry
                    .build(spec, &ctx)
                    .expect("specs validated before scheduling");
                simulate(cfg, &trace, policy.as_mut(), opts.sanitize)
            };
            if let (Some(cache), Some(fp)) = (opts.cache, fp) {
                cache.put(fp, &slug, &report);
            }
            PolicyCellRun {
                result: result(report),
                cache_hit: false,
                sanitizer,
                measure: stopwatch.map(CellStopwatch::stop),
            }
        }))
    }

    /// Run every model over every benchmark, giving each
    /// (benchmark, model) cell its own telemetry sink built by
    /// `make_sink`. Workers own their sinks for the duration of the
    /// cell's run; sinks return with their results in cell order
    /// (benchmark, then model). Telemetry observes simulations, so this
    /// path never consults the run cache.
    pub fn run_with_telemetry<T, F>(
        &self,
        benches: &[Benchmark],
        suite: &ModelSuite,
        make_sink: F,
    ) -> Vec<(CampaignResult, T)>
    where
        T: Telemetry + Send,
        F: Fn(Benchmark, ModelKind) -> T + Sync,
    {
        let cfg = self.config();
        let cells = self.cells(benches);
        let traces: Vec<OnceLock<Arc<Trace>>> = benches.iter().map(|_| OnceLock::new()).collect();
        schedule::run_indexed(schedule::default_jobs(), cells.len(), |i| {
            let (bi, bench, model) = cells[i];
            let trace = Arc::clone(traces[bi].get_or_init(|| Arc::new(self.trace(bench))));
            let mut sink = make_sink(bench, model);
            let report = run_model_with_telemetry(cfg, &trace, model, suite, &mut sink);
            (
                CampaignResult {
                    benchmark: bench.name().to_string(),
                    model,
                    report,
                },
                sink,
            )
        })
    }
}

/// How [`Campaign::run_cells`] executes the matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOptions<'a> {
    /// Worker threads draining the cell injector. `None` uses
    /// [`schedule::default_jobs`] (the machine's available
    /// parallelism); `jobs = 1` runs inline with no threads at all.
    pub jobs: Option<NonZeroUsize>,
    /// Spatial shards *within* each simulated cell: `0` or `1` (the
    /// default) runs the sequential engine; larger values run eligible
    /// cells on [`dozznoc_noc::run_sharded`] with one worker thread per
    /// shard, bit-identical to the sequential engine. Cells that need
    /// the sanitizer or a non-shardable policy fall back to one shard.
    /// Orthogonal to `jobs` — cell-level and intra-cell parallelism
    /// multiply, so drive `shards` up only when the cell count is small
    /// (a lone saturation run), not across a wide campaign matrix.
    pub shards: usize,
    /// Content-addressed run cache to consult and fill. `None` always
    /// simulates.
    pub cache: Option<&'a RunCache>,
    /// Run simulated cells under a runtime invariant sanitizer and
    /// attach its per-cell report.
    pub sanitize: bool,
    /// Measure each cell's wall-clock, worker-thread CPU time and the
    /// process peak RSS (see [`crate::measure`]) and attach the
    /// readings. Observational only: results stay bit-identical.
    pub measure: bool,
}

/// One executed (or replayed) campaign cell.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The cell's result, exactly as a cache-less sequential run would
    /// produce it.
    pub result: CampaignResult,
    /// True when the report was replayed from the run cache (no
    /// simulation happened).
    pub cache_hit: bool,
    /// The sanitizer's findings, when the cell was simulated under
    /// [`EngineOptions::sanitize`].
    pub sanitizer: Option<SanitizerReport>,
    /// Wall/CPU/RSS readings for the cell, when the cell ran under
    /// [`EngineOptions::measure`].
    pub measure: Option<CellMeasure>,
}

/// Aggregate a campaign into per-model means relative to the baseline
/// (the §IV-B headline numbers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelSummary {
    /// The model summarized.
    pub model: ModelKind,
    /// Mean static-energy ratio vs. baseline (1.0 = no savings).
    pub static_ratio: f64,
    /// Mean dynamic-energy ratio vs. baseline.
    pub dynamic_ratio: f64,
    /// Mean throughput ratio vs. baseline.
    pub throughput_ratio: f64,
    /// Mean latency ratio vs. baseline.
    pub latency_ratio: f64,
    /// Mean energy-delay-product ratio vs. baseline (total energy ×
    /// mean packet latency; the paper reports "no impact on … EDP" for
    /// the 41→5 feature reduction).
    pub edp_ratio: f64,
}

impl ModelSummary {
    /// Static power savings as the paper quotes them (percent).
    pub fn static_savings_pct(&self) -> f64 {
        (1.0 - self.static_ratio) * 100.0
    }

    /// Dynamic energy savings (percent).
    pub fn dynamic_savings_pct(&self) -> f64 {
        (1.0 - self.dynamic_ratio) * 100.0
    }

    /// Throughput loss (percent).
    pub fn throughput_loss_pct(&self) -> f64 {
        (1.0 - self.throughput_ratio) * 100.0
    }

    /// Latency increase (percent).
    pub fn latency_increase_pct(&self) -> f64 {
        (self.latency_ratio - 1.0) * 100.0
    }

    /// EDP change (percent; negative = better than baseline).
    pub fn edp_change_pct(&self) -> f64 {
        (self.edp_ratio - 1.0) * 100.0
    }
}

/// Energy-delay product of one run: total NoC energy × mean network
/// latency.
pub fn edp(report: &RunReport) -> f64 {
    let energy = report.energy.static_j + report.energy.dynamic_with_ml_j();
    energy * report.stats.avg_net_latency_ns()
}

/// Summarize campaign results per model against the baseline rows.
/// Ratios are averaged per benchmark (each benchmark normalized to its
/// own baseline, then averaged — the paper's "average savings").
pub fn summarize(results: &[CampaignResult]) -> Vec<ModelSummary> {
    let mut models: Vec<ModelKind> = Vec::new();
    for r in results {
        if !models.contains(&r.model) {
            models.push(r.model);
        }
    }
    let baselines: Vec<&CampaignResult> = results
        .iter()
        .filter(|r| r.model == ModelKind::Baseline)
        .collect();
    models
        .iter()
        .map(|&model| {
            let mut n = 0.0;
            let (mut s, mut d, mut t, mut l, mut e) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for r in results.iter().filter(|r| r.model == model) {
                let Some(base) = baselines.iter().find(|b| b.benchmark == r.benchmark) else {
                    continue;
                };
                s += r.report.static_energy_vs(&base.report);
                d += r.report.dynamic_energy_vs(&base.report);
                t += r.report.throughput_vs(&base.report);
                l += r.report.latency_vs(&base.report);
                e += edp(&r.report) / edp(&base.report).max(f64::MIN_POSITIVE);
                n += 1.0;
            }
            let n: f64 = if n > 0.0 { n } else { 1.0 };
            ModelSummary {
                model,
                static_ratio: s / n,
                dynamic_ratio: d / n,
                throughput_ratio: t / n,
                latency_ratio: l / n,
                edp_ratio: e / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Trainer;
    use dozznoc_ml::FeatureSet;

    fn quick_suite(topo: Topology) -> ModelSuite {
        ModelSuite::train(
            &Trainer::new(topo).with_duration_ns(2_000),
            FeatureSet::Reduced5,
        )
    }

    #[test]
    fn campaign_runs_all_cells() {
        let topo = Topology::mesh8x8();
        let suite = quick_suite(topo);
        let campaign = Campaign::new(topo).with_duration_ns(2_000);
        let results = campaign.run(&[Benchmark::Fft, Benchmark::Lu], &suite);
        assert_eq!(results.len(), 2 * 5);
        // Every model delivered every packet.
        for r in &results {
            assert!(r.report.stats.packets_delivered > 0, "{:?}", r.model);
        }
        // Deterministic ordering: fft block first.
        assert_eq!(results[0].benchmark, "fft");
        assert_eq!(results[0].model, ModelKind::Baseline);
    }

    #[test]
    fn summaries_show_the_paper_ordering() {
        let topo = Topology::mesh8x8();
        let suite = quick_suite(topo);
        let campaign = Campaign::new(topo).with_duration_ns(4_000);
        let results = campaign.run(&[Benchmark::X264], &suite);
        let summaries = summarize(&results);
        let get = |m: ModelKind| summaries.iter().find(|s| s.model == m).copied().unwrap();
        // Baseline compared to itself: all ratios 1.
        let base = get(ModelKind::Baseline);
        assert!((base.static_ratio - 1.0).abs() < 1e-9);
        assert!((base.throughput_ratio - 1.0).abs() < 1e-9);
        // Every power-managed model saves static energy vs. baseline.
        for m in [
            ModelKind::PowerGated,
            ModelKind::DozzNoc,
            ModelKind::MlTurbo,
        ] {
            assert!(
                get(m).static_ratio < 0.95,
                "{m}: static ratio {}",
                get(m).static_ratio
            );
        }
        // DVFS models save dynamic energy.
        for m in [ModelKind::LeadDvfs, ModelKind::DozzNoc] {
            assert!(
                get(m).dynamic_ratio < 1.0,
                "{m}: dynamic ratio {}",
                get(m).dynamic_ratio
            );
        }
    }

    #[test]
    fn degenerate_epoch_is_rejected() {
        let err = Campaign::new(Topology::mesh8x8())
            .try_with_epoch_cycles(5)
            .unwrap_err();
        assert_eq!(err, ConfigError::DegenerateEpoch { epoch_cycles: 5 });
        assert!(Campaign::new(Topology::mesh8x8())
            .try_with_epoch_cycles(dozznoc_types::MIN_EPOCH_CYCLES)
            .is_ok());
    }

    #[test]
    fn zero_compression_is_rejected() {
        let err = Campaign::new(Topology::mesh8x8())
            .try_with_compression(0)
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroCompression);
        assert!(Campaign::new(Topology::mesh8x8())
            .try_with_compression(1)
            .is_ok());
    }

    #[test]
    fn zero_load_scale_is_rejected() {
        let err = Campaign::new(Topology::mesh8x8())
            .try_with_load_scale(0, 3)
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroLoadScale { num: 0, den: 3 });
        let err = Campaign::new(Topology::mesh8x8())
            .try_with_load_scale(2, 0)
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroLoadScale { num: 2, den: 0 });
        assert!(Campaign::new(Topology::mesh8x8())
            .try_with_load_scale(2, 3)
            .is_ok());
    }

    #[test]
    fn empty_model_set_is_rejected() {
        let err = Campaign::new(Topology::mesh8x8())
            .try_with_models(&[])
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyModelSet);
        assert!(Campaign::new(Topology::mesh8x8())
            .try_with_models(&[ModelKind::Baseline])
            .is_ok());
    }

    #[test]
    fn policy_cells_surface_bad_specs_before_running() {
        let topo = Topology::mesh8x8();
        let suite = quick_suite(topo);
        let campaign = Campaign::new(topo).with_duration_ns(2_000);
        let err = campaign
            .run_policy_cells(
                &[Benchmark::Fft],
                &[PolicySpec::new("no-such-policy")],
                &suite,
                PolicyRegistry::global(),
                &EngineOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, PolicyError::Unknown { .. }), "{err}");
        let err = campaign
            .run_policy_cells(
                &[Benchmark::Fft],
                &[PolicySpec::new("rl-buffer").with_param("gamma", "1.5")],
                &suite,
                PolicyRegistry::global(),
                &EngineOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, PolicyError::BadParam { .. }), "{err}");
    }

    #[test]
    fn policy_cells_run_the_extension_policies() {
        let topo = Topology::mesh8x8();
        let suite = quick_suite(topo);
        let campaign = Campaign::new(topo).with_duration_ns(2_000);
        let specs = [
            PolicySpec::new("online-ridge"),
            PolicySpec::new("rl-buffer").with_param("seed", "3"),
        ];
        let runs = campaign
            .run_policy_cells(
                &[Benchmark::Fft],
                &specs,
                &suite,
                PolicyRegistry::global(),
                &EngineOptions::default(),
            )
            .expect("valid specs");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].result.report.policy, "online-ridge");
        assert_eq!(runs[1].result.report.policy, "rl-buffer");
        assert_eq!(runs[1].result.policy.slug(), "rl-buffer?seed=3");
        for run in &runs {
            assert!(run.result.report.stats.packets_delivered > 0);
        }
    }

    #[test]
    fn campaign_telemetry_gives_each_cell_its_own_sink() {
        use dozznoc_noc::TimelineSink;
        let topo = Topology::mesh8x8();
        let suite = quick_suite(topo);
        let campaign = Campaign::new(topo)
            .with_duration_ns(2_000)
            .try_with_models(&[ModelKind::Baseline, ModelKind::DozzNoc])
            .expect("non-empty model set");
        let cells =
            campaign.run_with_telemetry(&[Benchmark::Fft, Benchmark::Lu], &suite, |_, _| {
                TimelineSink::new()
            });
        assert_eq!(cells.len(), 2 * 2);
        for (result, sink) in &cells {
            assert!(!sink.epochs.is_empty(), "{}: no epochs", result.model);
            let total: f64 = sink.total_energy_j();
            let reported = result.report.energy.static_j + result.report.energy.dynamic_with_ml_j();
            assert!(
                (total - reported).abs() <= 1e-9 * reported.max(1.0),
                "{}: sink energy {total} vs report {reported}",
                result.model
            );
            let end = sink.report.as_ref().expect("report captured at run end");
            assert_eq!(
                end.stats.packets_delivered,
                result.report.stats.packets_delivered
            );
        }
        // Sinks merged in deterministic (benchmark, model) order.
        assert_eq!(cells[0].0.benchmark, "fft");
        assert_eq!(cells[1].0.model, ModelKind::DozzNoc);
    }

    #[test]
    fn summary_percent_helpers() {
        let s = ModelSummary {
            model: ModelKind::DozzNoc,
            static_ratio: 0.47,
            dynamic_ratio: 0.75,
            throughput_ratio: 0.93,
            latency_ratio: 1.03,
            edp_ratio: 0.68,
        };
        assert!((s.static_savings_pct() - 53.0).abs() < 1e-9);
        assert!((s.dynamic_savings_pct() - 25.0).abs() < 1e-9);
        assert!((s.throughput_loss_pct() - 7.0).abs() < 1e-9);
        assert!((s.latency_increase_pct() - 3.0).abs() < 1e-9);
        assert!((s.edp_change_pct() + 32.0).abs() < 1e-9);
    }

    #[test]
    fn edp_combines_energy_and_latency() {
        let topo = Topology::mesh8x8();
        let suite = quick_suite(topo);
        let trace = Campaign::new(topo)
            .with_duration_ns(3_000)
            .trace(Benchmark::Fft);
        let base = run_model(NocConfig::paper(topo), &trace, ModelKind::Baseline, &suite);
        let e = edp(&base);
        assert!(e > 0.0);
        assert!(
            (e - (base.energy.static_j + base.energy.dynamic_with_ml_j())
                * base.stats.avg_net_latency_ns())
            .abs()
                < 1e-12
        );
    }
}
