//! Per-cell resource measurement for the campaign engine.
//!
//! The `cargo xtask bench` regime harness needs decision-grade numbers
//! per engine cell: wall-clock, CPU time actually burned by the worker
//! thread, and the process's peak resident set. Wall-clock comes from
//! [`std::time::Instant`]; the other two are read from Linux `/proc`
//! (there is no libc dependency in this workspace, and `std` exposes
//! neither thread CPU clocks nor rusage). On non-Linux hosts the
//! readers degrade to zero rather than failing: the engine still runs,
//! the harness just reports what it can measure.
//!
//! Granularity caveats, so nobody over-reads the numbers:
//!
//! * **Thread CPU** (`/proc/thread-self/stat` utime+stime) ticks at
//!   `USER_HZ` (100 Hz on every mainstream Linux), so per-cell CPU is
//!   quantized to 10 ms. Sum it across the cells of a bench run before
//!   drawing conclusions; single short cells round to zero.
//! * **Peak RSS** (`VmHWM` in `/proc/self/status`) is a *process-wide*
//!   high-water mark, not a per-cell delta. A cell's reading is "the
//!   largest the process had been by the time this cell finished". The
//!   bench harness resets the high-water mark (`/proc/self/clear_refs`)
//!   after setup so the peak reflects the measured phase.

use std::time::Instant;

/// Clock ticks per second for `/proc/*/stat` CPU fields. `USER_HZ` is
/// fixed at 100 on Linux regardless of the kernel's scheduler tick; the
/// kernel scales utime/stime to this unit for /proc.
const PROC_CLK_TCK: u64 = 100;

/// Resource usage of one executed engine cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellMeasure {
    /// Wall-clock time for the cell body (cache probe + simulation),
    /// nanoseconds.
    pub wall_ns: u64,
    /// CPU time the worker thread burned on the cell, nanoseconds.
    /// Quantized to 10 ms on Linux; 0 where unreadable.
    pub cpu_ns: u64,
    /// Process peak resident set (`VmHWM`) when the cell completed,
    /// bytes. 0 where unreadable.
    pub max_rss_bytes: u64,
}

/// A started per-cell measurement; [`CellStopwatch::stop`] yields the
/// [`CellMeasure`].
#[derive(Debug)]
pub struct CellStopwatch {
    wall: Instant,
    cpu_start_ns: u64,
}

impl CellStopwatch {
    /// Start measuring the current thread.
    pub fn start() -> CellStopwatch {
        CellStopwatch {
            wall: Instant::now(),
            cpu_start_ns: thread_cpu_ns(),
        }
    }

    /// Finish: wall/CPU deltas plus the current peak-RSS reading.
    pub fn stop(self) -> CellMeasure {
        CellMeasure {
            wall_ns: u64::try_from(self.wall.elapsed().as_nanos()).unwrap_or(u64::MAX),
            cpu_ns: thread_cpu_ns().saturating_sub(self.cpu_start_ns),
            max_rss_bytes: max_rss_bytes(),
        }
    }
}

/// CPU time (user + system) consumed by the *calling thread*,
/// nanoseconds since thread start. 0 where `/proc` is unavailable.
pub fn thread_cpu_ns() -> u64 {
    stat_cpu_ticks("/proc/thread-self/stat")
        .map(|t| t.saturating_mul(1_000_000_000 / PROC_CLK_TCK))
        .unwrap_or(0)
}

/// CPU time (user + system) consumed by the whole process, nanoseconds
/// since process start. 0 where `/proc` is unavailable.
pub fn process_cpu_ns() -> u64 {
    stat_cpu_ticks("/proc/self/stat")
        .map(|t| t.saturating_mul(1_000_000_000 / PROC_CLK_TCK))
        .unwrap_or(0)
}

/// The process's peak resident set size in bytes (`VmHWM`), or 0 where
/// unreadable.
pub fn max_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb.saturating_mul(1024);
        }
    }
    0
}

/// Reset the process's RSS high-water mark so a later
/// [`max_rss_bytes`] reflects only allocation past this point.
/// Linux-only (`/proc/self/clear_refs`); silently a no-op elsewhere.
pub fn reset_max_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Sum of utime+stime clock ticks from a `/proc/*/stat` file, or `None`
/// when the file is unreadable or malformed.
fn stat_cpu_ticks(path: &str) -> Option<u64> {
    let stat = std::fs::read_to_string(path).ok()?;
    parse_stat_cpu_ticks(&stat)
}

/// Parse utime (field 14) + stime (field 15) from stat-file contents.
/// The comm field (2) may itself contain spaces and parentheses, so
/// fields are counted from after the *last* closing paren.
fn parse_stat_cpu_ticks(stat: &str) -> Option<u64> {
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let mut fields = after_comm.split_ascii_whitespace();
    // after_comm starts at field 3 (state); utime/stime are fields 14/15.
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(utime.saturating_add(stime))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_parser_handles_spaced_comm() {
        // comm with spaces and a nested paren, as real kernels emit.
        let stat = "1234 (tokio (worker) 1) R 1 1 1 0 -1 4194304 100 0 0 0 \
                    42 7 0 0 20 0 1 0 100 1000000 50 18446744073709551615";
        assert_eq!(parse_stat_cpu_ticks(stat), Some(49));
    }

    #[test]
    fn stat_parser_rejects_garbage() {
        assert_eq!(parse_stat_cpu_ticks("no parens here"), None);
        assert_eq!(parse_stat_cpu_ticks("1 (x) R 2 3"), None);
    }

    #[test]
    fn stopwatch_measures_something() {
        let sw = CellStopwatch::start();
        // Burn a little CPU so wall definitely advances.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(2654435761));
        }
        assert!(acc != 1, "keep the loop alive");
        let m = sw.stop();
        assert!(m.wall_ns > 0);
        // cpu_ns/max_rss are 0 off-Linux; on Linux rss must be nonzero.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(m.max_rss_bytes > 0);
        }
    }

    #[test]
    fn process_cpu_is_monotonic() {
        let a = process_cpu_ns();
        let b = process_cpu_ns();
        assert!(b >= a);
    }
}
