//! The five paper models as a closed enum — now a thin compatibility
//! shim over the open [`PolicyRegistry`](crate::registry::PolicyRegistry).
//!
//! `ModelKind` predates the policy plug-in API and is serialized into
//! campaign results, determinism goldens, CSV schemas and cache
//! envelopes, so the enum and its serde form are frozen. Construction,
//! name parsing (including every legacy CLI alias) and display labels
//! all delegate to the registry; the only thing still owned here is the
//! slug table, which the corresponding factories adopt as their
//! canonical names. New policies should *not* be added here — register
//! a [`PolicyFactory`](crate::registry::PolicyFactory) instead and work
//! with [`PolicySpec`](crate::registry::PolicySpec)s.

use serde::{Deserialize, Serialize};

use dozznoc_noc::PowerPolicy;

use crate::registry::{PolicyContext, PolicyRegistry, PolicySpec};
use crate::training::ModelSuite;

/// The five models compared throughout §IV (Figs. 7–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// No power management at all.
    Baseline,
    /// Power Punch-style gating, M7-only active state.
    PowerGated,
    /// LEAD-τ: ML-driven DVFS, never gated.
    LeadDvfs,
    /// The proposed model: ML + gating + DVFS.
    DozzNoc,
    /// The turbo experiment: DOZZNOC with every third intermediate
    /// prediction forced to M7.
    MlTurbo,
}

/// All five in presentation order (the Fig. 8 bar order).
pub const ALL_MODELS: [ModelKind; 5] = [
    ModelKind::Baseline,
    ModelKind::PowerGated,
    ModelKind::LeadDvfs,
    ModelKind::DozzNoc,
    ModelKind::MlTurbo,
];

impl ModelKind {
    /// Instantiate the policy via the registry. The trained `suite` is
    /// only consulted by the ML models.
    pub fn build(&self, suite: &ModelSuite) -> Box<dyn PowerPolicy> {
        PolicyRegistry::global()
            .build(&self.spec(), &PolicyContext { suite })
            .expect("every paper-model default spec builds by construction")
    }

    /// The defaults-only [`PolicySpec`] equivalent of this kind — the
    /// bridge from the closed enum into the open policy API. Its slug
    /// equals [`ModelKind::slug`], so cache fingerprints agree between
    /// the two paths.
    pub fn spec(&self) -> PolicySpec {
        PolicySpec::new(self.slug())
    }

    /// Parse a CLI-style model name (as printed by `dozz-repro --help`).
    /// Delegates to the registry, so every factory alias is accepted;
    /// returns `None` both for unknown names and for registered policies
    /// that are not paper models (use
    /// [`PolicyRegistry::parse`](crate::registry::PolicyRegistry::parse)
    /// to accept those too, with a listing error on failure).
    pub fn parse(name: &str) -> Option<ModelKind> {
        let canonical = PolicyRegistry::global().resolve(name).ok()?.name();
        ALL_MODELS.into_iter().find(|k| k.slug() == canonical)
    }

    /// Whether this model needs trained weights.
    pub fn uses_ml(&self) -> bool {
        match PolicyRegistry::global().resolve(self.slug()) {
            Ok(factory) => factory.uses_ml(),
            Err(_) => false, // unreachable: every slug is registered
        }
    }

    /// Short lowercase name, stable for filenames and CLI round-trips
    /// (each is accepted by [`ModelKind::parse`]).
    pub fn slug(&self) -> &'static str {
        match self {
            ModelKind::Baseline => "baseline",
            ModelKind::PowerGated => "pg",
            ModelKind::LeadDvfs => "lead",
            ModelKind::DozzNoc => "dozznoc",
            ModelKind::MlTurbo => "turbo",
        }
    }

    /// Display name matching the paper's figure legends (owned by the
    /// corresponding registry factory).
    pub fn label(&self) -> &'static str {
        match PolicyRegistry::global().resolve(self.slug()) {
            Ok(factory) => factory.label(),
            Err(_) => self.slug(), // unreachable: every slug is registered
        }
    }
}

impl core::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Trainer;
    use dozznoc_ml::FeatureSet;
    use dozznoc_topology::Topology;

    #[test]
    fn labels_and_ml_flags() {
        assert!(!ModelKind::Baseline.uses_ml());
        assert!(!ModelKind::PowerGated.uses_ml());
        assert!(ModelKind::LeadDvfs.uses_ml());
        assert!(ModelKind::DozzNoc.uses_ml());
        assert!(ModelKind::MlTurbo.uses_ml());
        assert_eq!(ModelKind::DozzNoc.label(), "DOZZNOC (ML+DVFS+PG)");
        assert_eq!(ALL_MODELS.len(), 5);
    }

    #[test]
    fn policies_instantiate_with_expected_gating() {
        let topo = Topology::mesh8x8();
        let suite = ModelSuite::train(
            &Trainer::new(topo).with_duration_ns(2_000),
            FeatureSet::Reduced5,
        );
        for kind in ALL_MODELS {
            let p = kind.build(&suite);
            let expect_gating = matches!(
                kind,
                ModelKind::PowerGated | ModelKind::DozzNoc | ModelKind::MlTurbo
            );
            assert_eq!(p.gating_enabled(), expect_gating, "{kind}");
            assert_eq!(p.ml_features().is_some(), kind.uses_ml(), "{kind}");
        }
    }

    #[test]
    fn parse_accepts_cli_names() {
        assert_eq!(ModelKind::parse("baseline"), Some(ModelKind::Baseline));
        assert_eq!(ModelKind::parse("pg"), Some(ModelKind::PowerGated));
        assert_eq!(ModelKind::parse("lead"), Some(ModelKind::LeadDvfs));
        assert_eq!(ModelKind::parse("DOZZNOC"), Some(ModelKind::DozzNoc));
        assert_eq!(ModelKind::parse("turbo"), Some(ModelKind::MlTurbo));
        assert_eq!(ModelKind::parse("nonsense"), None);
        // Aliases come from the registry factories now.
        assert_eq!(ModelKind::parse("power-gated"), Some(ModelKind::PowerGated));
        assert_eq!(ModelKind::parse("lead-tau"), Some(ModelKind::LeadDvfs));
        assert_eq!(ModelKind::parse("dvfs"), Some(ModelKind::LeadDvfs));
        assert_eq!(ModelKind::parse("ml-turbo"), Some(ModelKind::MlTurbo));
        // Registered non-paper policies are not ModelKinds.
        assert_eq!(ModelKind::parse("online-ridge"), None);
        assert_eq!(ModelKind::parse("rl-buffer"), None);
    }

    #[test]
    fn spec_bridge_preserves_slugs() {
        for kind in ALL_MODELS {
            assert_eq!(kind.spec().slug(), kind.slug());
            assert_eq!(kind.spec().to_string(), kind.slug());
        }
    }
}
