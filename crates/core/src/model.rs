//! The five evaluation models as a closed enum.

use serde::{Deserialize, Serialize};

use dozznoc_noc::PowerPolicy;

use crate::policy::{Baseline, PowerGated, Proactive};
use crate::training::ModelSuite;

/// The five models compared throughout §IV (Figs. 7–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// No power management at all.
    Baseline,
    /// Power Punch-style gating, M7-only active state.
    PowerGated,
    /// LEAD-τ: ML-driven DVFS, never gated.
    LeadDvfs,
    /// The proposed model: ML + gating + DVFS.
    DozzNoc,
    /// The turbo experiment: DOZZNOC with every third intermediate
    /// prediction forced to M7.
    MlTurbo,
}

/// All five in presentation order (the Fig. 8 bar order).
pub const ALL_MODELS: [ModelKind; 5] = [
    ModelKind::Baseline,
    ModelKind::PowerGated,
    ModelKind::LeadDvfs,
    ModelKind::DozzNoc,
    ModelKind::MlTurbo,
];

impl ModelKind {
    /// Instantiate the policy. The trained `suite` is only consulted by
    /// the ML models.
    pub fn build(&self, suite: &ModelSuite) -> Box<dyn PowerPolicy> {
        match self {
            ModelKind::Baseline => Box::new(Baseline),
            ModelKind::PowerGated => Box::new(PowerGated),
            ModelKind::LeadDvfs => Box::new(Proactive::lead(suite.lead.clone())),
            ModelKind::DozzNoc => Box::new(Proactive::dozznoc(suite.dozznoc.clone())),
            ModelKind::MlTurbo => Box::new(Proactive::turbo(suite.turbo.clone())),
        }
    }

    /// Parse a CLI-style model name (as printed by `dozz-repro --help`).
    pub fn parse(name: &str) -> Option<ModelKind> {
        match name.to_ascii_lowercase().as_str() {
            "baseline" => Some(ModelKind::Baseline),
            "pg" | "powergated" | "power-gated" => Some(ModelKind::PowerGated),
            "lead" | "lead-tau" | "dvfs" => Some(ModelKind::LeadDvfs),
            "dozznoc" => Some(ModelKind::DozzNoc),
            "turbo" | "ml-turbo" => Some(ModelKind::MlTurbo),
            _ => None,
        }
    }

    /// Whether this model needs trained weights.
    pub fn uses_ml(&self) -> bool {
        matches!(
            self,
            ModelKind::LeadDvfs | ModelKind::DozzNoc | ModelKind::MlTurbo
        )
    }

    /// Short lowercase name, stable for filenames and CLI round-trips
    /// (each is accepted by [`ModelKind::parse`]).
    pub fn slug(&self) -> &'static str {
        match self {
            ModelKind::Baseline => "baseline",
            ModelKind::PowerGated => "pg",
            ModelKind::LeadDvfs => "lead",
            ModelKind::DozzNoc => "dozznoc",
            ModelKind::MlTurbo => "turbo",
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Baseline => "Baseline",
            ModelKind::PowerGated => "PG",
            ModelKind::LeadDvfs => "ML+DVFS (LEAD-tau)",
            ModelKind::DozzNoc => "DOZZNOC (ML+DVFS+PG)",
            ModelKind::MlTurbo => "ML+TURBO",
        }
    }
}

impl core::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Trainer;
    use dozznoc_ml::FeatureSet;
    use dozznoc_topology::Topology;

    #[test]
    fn labels_and_ml_flags() {
        assert!(!ModelKind::Baseline.uses_ml());
        assert!(!ModelKind::PowerGated.uses_ml());
        assert!(ModelKind::LeadDvfs.uses_ml());
        assert!(ModelKind::DozzNoc.uses_ml());
        assert!(ModelKind::MlTurbo.uses_ml());
        assert_eq!(ModelKind::DozzNoc.label(), "DOZZNOC (ML+DVFS+PG)");
        assert_eq!(ALL_MODELS.len(), 5);
    }

    #[test]
    fn policies_instantiate_with_expected_gating() {
        let topo = Topology::mesh8x8();
        let suite = ModelSuite::train(
            &Trainer::new(topo).with_duration_ns(2_000),
            FeatureSet::Reduced5,
        );
        for kind in ALL_MODELS {
            let p = kind.build(&suite);
            let expect_gating = matches!(
                kind,
                ModelKind::PowerGated | ModelKind::DozzNoc | ModelKind::MlTurbo
            );
            assert_eq!(p.gating_enabled(), expect_gating, "{kind}");
            assert_eq!(p.ml_features().is_some(), kind.uses_ml(), "{kind}");
        }
    }

    #[test]
    fn parse_accepts_cli_names() {
        assert_eq!(ModelKind::parse("baseline"), Some(ModelKind::Baseline));
        assert_eq!(ModelKind::parse("pg"), Some(ModelKind::PowerGated));
        assert_eq!(ModelKind::parse("lead"), Some(ModelKind::LeadDvfs));
        assert_eq!(ModelKind::parse("DOZZNOC"), Some(ModelKind::DozzNoc));
        assert_eq!(ModelKind::parse("turbo"), Some(ModelKind::MlTurbo));
        assert_eq!(ModelKind::parse("nonsense"), None);
    }
}
