//! Training-data collection (§III-D "Label").
//!
//! The collector wraps any policy and, at every epoch boundary of every
//! router, records the Full-41 feature vector. When the *next* epoch's
//! observation arrives, the previous vector is labelled with that epoch's
//! measured IBU — "this value is tacked onto the feature set at the end
//! of the simulation since it is not actually known until the next
//! epoch" — and pushed into a [`Dataset`].
//!
//! Collecting at Full-41 and projecting down later lets one simulation
//! pass feed the Reduced-5 model, the 41-feature ablation and the Fig. 9
//! single-feature study alike.

use dozznoc_ml::{Dataset, FeatureSet};
use dozznoc_noc::{EpochObservation, PowerPolicy};
use dozznoc_types::{Mode, RouterId};

use crate::features::extract_features;

/// Policy wrapper that harvests (features, future-IBU) examples.
pub struct Collector<P> {
    inner: P,
    pending: Vec<Option<Vec<f64>>>,
    dataset: Dataset,
}

impl<P: PowerPolicy> Collector<P> {
    /// Wrap `inner`, collecting examples for `num_routers` routers.
    pub fn new(inner: P, num_routers: usize) -> Self {
        Collector {
            inner,
            pending: vec![None; num_routers],
            dataset: Dataset::new(FeatureSet::Full41.len()),
        }
    }

    /// Finish collection and return the labelled dataset (and the inner
    /// policy). Pending unlabelled vectors of the final epoch are
    /// discarded, exactly like the paper's end-of-simulation cut-off.
    pub fn into_dataset(self) -> (Dataset, P) {
        (self.dataset, self.inner)
    }

    /// Examples labelled so far.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// True when nothing has been labelled yet.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }
}

impl<P: PowerPolicy> PowerPolicy for Collector<P> {
    fn select_mode(&mut self, router: RouterId, obs: &EpochObservation) -> Mode {
        // The current observation's IBU labels the previous epoch's
        // features.
        if let Some(prev) = self.pending[router.idx()].take() {
            self.dataset.push(&prev, obs.ibu);
        }
        self.pending[router.idx()] = Some(extract_features(obs, FeatureSet::Full41));
        self.inner.select_mode(router, obs)
    }

    fn gating_enabled(&self) -> bool {
        self.inner.gating_enabled()
    }

    fn ml_features(&self) -> Option<usize> {
        self.inner.ml_features()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Reactive;

    fn obs(ibu: f64, epoch: u64) -> EpochObservation {
        EpochObservation {
            cycles: 500,
            ibu,
            ibu_peak: ibu,
            epoch,
            ..Default::default()
        }
    }

    #[test]
    fn labels_come_from_the_next_epoch() {
        let mut c = Collector::new(Reactive::lead(), 2);
        c.select_mode(RouterId(0), &obs(0.10, 0));
        assert!(c.is_empty(), "first epoch has no label yet");
        c.select_mode(RouterId(0), &obs(0.25, 1));
        assert_eq!(c.len(), 1);
        c.select_mode(RouterId(0), &obs(0.05, 2));
        assert_eq!(c.len(), 2);
        let (ds, _) = c.into_dataset();
        // Example 0: features of epoch 0 labelled with epoch 1's IBU.
        assert_eq!(ds.label(0), 0.25);
        assert_eq!(ds.label(1), 0.05);
        // CurrentIbu column of example 0 carries epoch 0's IBU.
        let ibu_col = FeatureSet::Reduced5.columns_in_full41()[4];
        assert_eq!(ds.example(0)[ibu_col], 0.10);
        assert_eq!(ds.example(1)[ibu_col], 0.25);
    }

    #[test]
    fn routers_are_tracked_independently() {
        let mut c = Collector::new(Reactive::lead(), 2);
        c.select_mode(RouterId(0), &obs(0.1, 0));
        c.select_mode(RouterId(1), &obs(0.3, 0));
        assert!(c.is_empty());
        c.select_mode(RouterId(1), &obs(0.4, 1));
        assert_eq!(c.len(), 1);
        let (ds, _) = c.into_dataset();
        // The labelled example is router 1's: label 0.4, IBU feature 0.3.
        let ibu_col = FeatureSet::Reduced5.columns_in_full41()[4];
        assert_eq!(ds.label(0), 0.4);
        assert_eq!(ds.example(0)[ibu_col], 0.3);
    }

    #[test]
    fn delegates_policy_behaviour() {
        let mut c = Collector::new(Reactive::dozznoc(), 1);
        assert!(c.gating_enabled());
        assert_eq!(c.name(), "reactive-dozznoc");
        // Mode selection is the inner reactive policy's.
        assert_eq!(c.select_mode(RouterId(0), &obs(0.22, 0)), Mode::M6);
    }
}
