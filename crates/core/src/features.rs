//! The Feature Extract unit: map an epoch observation to a feature
//! vector (paper Fig. 1(c), Table IV).
//!
//! Values are already normalized by the simulator (per-cycle rates,
//! fractions of capacity), so the weight magnitudes a ridge fit produces
//! are comparable across features without a separate standardization
//! pass — mirroring how the paper's hardware unit multiplies raw local
//! registers by trained weights.

use dozznoc_ml::features::{FeatureId, FeatureSet, PortClass};
use dozznoc_noc::EpochObservation;

/// Canonical index of a port class in `EpochObservation::port_classes`.
fn class_index(p: PortClass) -> usize {
    match p {
        PortClass::North => 0,
        PortClass::South => 1,
        PortClass::East => 2,
        PortClass::West => 3,
        PortClass::Local => 4,
    }
}

/// The value of one feature for one observation.
pub fn feature_value(obs: &EpochObservation, id: FeatureId) -> f64 {
    match id {
        FeatureId::Bias => 1.0,
        FeatureId::RequestsSentByLocalCores => obs.reqs_sent,
        FeatureId::RequestsReceivedByLocalCores => obs.reqs_recv,
        FeatureId::ResponsesSentByLocalCores => obs.resps_sent,
        FeatureId::ResponsesReceivedByLocalCores => obs.resps_recv,
        FeatureId::RouterTotalOffTime => obs.total_off_fraction,
        FeatureId::EpochOffTime => obs.epoch_off_fraction,
        FeatureId::WakeupCount => obs.wakeup_rate,
        FeatureId::GateOffCount => obs.gate_off_rate,
        FeatureId::SecuredCycles => obs.secured_fraction,
        FeatureId::IdleCycles => obs.idle_fraction,
        FeatureId::CurrentIbu => obs.ibu,
        FeatureId::IbuEwmaShort => obs.ibu_ewma_short,
        FeatureId::IbuEwmaLong => obs.ibu_ewma_long,
        FeatureId::PrevEpochIbu => obs.prev_ibu,
        FeatureId::PeakIbu => obs.ibu_peak,
        FeatureId::BufferOccupancy(p) => obs.port_classes[class_index(p)].occupancy,
        FeatureId::FlitsIn(p) => obs.port_classes[class_index(p)].flits_in,
        FeatureId::FlitsOut(p) => obs.port_classes[class_index(p)].flits_out,
        FeatureId::LinkUtilization(p) => obs.port_classes[class_index(p)].link_utilization,
        FeatureId::FlitsInjected => obs.flits_injected,
        FeatureId::FlitsEjected => obs.flits_ejected,
        FeatureId::HopsRouted => obs.hops_routed,
        FeatureId::StallCycles => obs.stall_fraction,
        FeatureId::CreditStalls => obs.credit_stall_fraction,
    }
}

/// The full feature vector for an observation, in the set's canonical
/// order.
pub fn extract_features(obs: &EpochObservation, set: FeatureSet) -> Vec<f64> {
    set.ids().iter().map(|&id| feature_value(obs, id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> EpochObservation {
        EpochObservation {
            cycles: 500,
            ibu: 0.12,
            ibu_peak: 0.4,
            prev_ibu: 0.08,
            ibu_ewma_short: 0.1,
            ibu_ewma_long: 0.05,
            reqs_sent: 0.02,
            reqs_recv: 0.03,
            total_off_fraction: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn reduced5_layout_matches_table_iv() {
        let x = extract_features(&obs(), FeatureSet::Reduced5);
        assert_eq!(x, vec![1.0, 0.02, 0.03, 0.5, 0.12]);
    }

    #[test]
    fn full41_has_41_finite_values() {
        let x = extract_features(&obs(), FeatureSet::Full41);
        assert_eq!(x.len(), 41);
        assert!(x.iter().all(|v| v.is_finite()));
        // Bias first.
        assert_eq!(x[0], 1.0);
    }

    #[test]
    fn reduced_is_a_projection_of_full() {
        let o = obs();
        let full = extract_features(&o, FeatureSet::Full41);
        let reduced = extract_features(&o, FeatureSet::Reduced5);
        for (i, &col) in FeatureSet::Reduced5.columns_in_full41().iter().enumerate() {
            assert_eq!(full[col], reduced[i]);
        }
    }

    #[test]
    fn every_feature_maps_to_a_distinct_field_family() {
        // Perturb one observation field and check only the expected
        // features move (spot-check the Table IV five).
        let base = extract_features(&obs(), FeatureSet::Reduced5);
        let mut o2 = obs();
        o2.reqs_sent = 0.9;
        let x2 = extract_features(&o2, FeatureSet::Reduced5);
        assert_ne!(base[1], x2[1]);
        assert_eq!(base[0], x2[0]);
        assert_eq!(base[2], x2[2]);
        assert_eq!(base[3], x2[3]);
        assert_eq!(base[4], x2[4]);
    }
}
