//! The DozzNoC contribution: adaptive power management combining
//! partially non-blocking power-gating, proactive ML-driven DVFS and the
//! SIMO/LDO regulator substrate.
//!
//! The five models of the paper's evaluation (§III-B):
//!
//! | model | gating | DVFS | ML | module |
//! |---|---|---|---|---|
//! | Baseline | – | – | – | [`policy::Baseline`] |
//! | PG (Power Punch-like) | ✓ | – | – | [`policy::PowerGated`] |
//! | DVFS+ML (LEAD-τ) | – | ✓ | ✓ | [`policy::Proactive`] |
//! | **DOZZNOC** | ✓ | ✓ | ✓ | [`policy::Proactive`] |
//! | ML+TURBO | ✓ | ✓ | ✓ (turbo rule) | [`policy::Proactive`] |
//!
//! plus the *reactive* variants ([`policy::Reactive`]) used only to
//! collect training data (§III-D: "we must first design reactive versions
//! of each machine learning model").
//!
//! [`training`] reproduces the offline pipeline: reactive runs over the
//! six training traces collect features and future-IBU labels, ridge
//! regression fits them with λ tuned on the three validation traces, and
//! the exported [`dozznoc_ml::TrainedModel`] drives proactive mode
//! selection on the five held-out test traces. [`experiment`] wraps the
//! whole thing behind a one-call API, executing campaign matrices on
//! the [`schedule`] work-stealing cell scheduler with an optional
//! content-addressed run [`cache`].

//! The policy layer is *open*: [`registry`] defines the plug-in API —
//! [`PolicyFactory`] implementations registered in a [`PolicyRegistry`]
//! build [`dozznoc_noc::PowerPolicy`] instances from serializable
//! [`PolicySpec`]s — and [`ModelKind`] survives only as a compatibility
//! shim over it. Third-party policies register without touching any
//! enum; see `DESIGN.md` § "Policy plug-in architecture".

pub mod cache;
pub mod collect;
pub mod experiment;
pub mod features;
pub mod measure;
pub mod model;
pub mod policy;
pub mod registry;
pub mod schedule;
pub mod training;

pub use cache::{CacheStats, Fingerprint, RunCache};
pub use collect::Collector;
pub use experiment::{
    run_model, run_model_sanitized, run_model_with_telemetry, run_policy_with_telemetry, Campaign,
    CampaignResult, CellRun, EngineOptions, PolicyCellRun, PolicyResult,
};
pub use features::{extract_features, feature_value};
pub use measure::CellMeasure;
pub use model::ModelKind;
pub use policy::{Adaptive, Baseline, Oracle, PowerGated, Proactive, Reactive, RlBuffer};
pub use registry::{PolicyContext, PolicyError, PolicyFactory, PolicyRegistry, PolicySpec};
pub use training::{ModelSuite, Trainer};
