//! The facade ↔ model-runtime ABI (`--cfg dozz_model` builds only).
//!
//! The facades in this crate stay mechanism-free: all scheduling,
//! memory-model and race-detection logic lives in `dozznoc-modelcheck`,
//! which implements [`ModelRt`] and [`install`]s itself for the
//! duration of an exploration. When no runtime is installed the facades
//! fall back to plain `std` behavior, so `dozz_model` binaries can
//! still run setup/reporting code outside an exploration.
//!
//! Object identity is the primitive's address (stable for its
//! lifetime); facade `Drop` impls call [`ModelRt::forget`] so an
//! address freed and re-used within one execution can never alias a
//! dead object's model state. `static` primitives are re-registered
//! lazily per execution from their construction-time value — the
//! runtime never writes the std cell backing a facade, so that value
//! is stable across executions. (Caveat, documented: a `static` mutated
//! through the *fallback* path and then used inside an exploration
//! would re-register with the mutated value; keep model harness state
//! inside the explored closure.)

use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock};

/// Panic payload the runtime uses to unwind every model thread of an
/// abandoned execution (after a finding, a deadlock, or a step-budget
/// truncation). The thread wrappers swallow it; user-level
/// `catch_unwind` wrappers must re-throw it (see
/// `dozznoc_modelcheck::catch_panic`).
pub struct AbortExecution;

/// Read-modify-write flavor of [`ModelRt::atomic_rmw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rmw {
    /// `fetch_add`
    Add,
    /// `fetch_sub`
    Sub,
    /// `fetch_and`
    And,
    /// `fetch_or`
    Or,
    /// `fetch_xor`
    Xor,
    /// `swap`
    Swap,
}

/// What the instrumented runtime must provide. All values travel as
/// `u64` (`AtomicBool` maps to 0/1, `AtomicUsize` widens losslessly);
/// `id` is the facade object's address, `init` its construction-time
/// value for lazy per-execution registration.
pub trait ModelRt: Send + Sync {
    /// An atomic load. `Relaxed` loads may be given a stale (but
    /// coherent) value; stronger loads read the newest store.
    fn atomic_load(&self, id: usize, init: u64, order: Ordering) -> u64;
    /// An atomic store.
    fn atomic_store(&self, id: usize, init: u64, val: u64, order: Ordering);
    /// An atomic read-modify-write; returns the previous value.
    fn atomic_rmw(&self, id: usize, init: u64, op: Rmw, arg: u64, order: Ordering) -> u64;
    /// `compare_exchange`; `Ok(previous)` on success, `Err(actual)`.
    fn atomic_cas(
        &self,
        id: usize,
        init: u64,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
    /// Block until the model mutex `id` is granted to the caller.
    fn mutex_lock(&self, id: usize);
    /// Release the model mutex `id`.
    fn mutex_unlock(&self, id: usize);
    /// Drop the model state of object `id` (facade `Drop`).
    fn forget(&self, id: usize);
    /// A scheduling yield: the caller is not re-enabled until another
    /// thread makes progress (this is what makes spin loops finite).
    fn yield_now(&self);
    /// Allocate the thread id for a thread about to be spawned.
    fn prepare_spawn(&self) -> usize;
    /// First call on the spawned OS thread: binds it to `tid` and
    /// blocks until the scheduler first picks it.
    fn thread_start(&self, tid: usize);
    /// Last call on a model thread. A `Some` message is an escaped
    /// (non-[`AbortExecution`]) panic and becomes a finding.
    fn thread_finish(&self, panic_msg: Option<String>);
    /// Block until thread `tid` has finished.
    fn join(&self, tid: usize);
    /// A panic is unwinding the current thread past live scoped
    /// children: record it as a finding and abort the execution so the
    /// children unwind too (otherwise the scope's implicit join would
    /// deadlock waiting on threads the scheduler will never run).
    fn thread_panicking(&self, msg: String);
    /// A non-atomic read of race-checked storage (`RaceCell`).
    fn race_read(&self, id: usize, what: &str);
    /// A non-atomic write of race-checked storage (`RaceCell`).
    fn race_write(&self, id: usize, what: &str);
}

static RT: RwLock<Option<Arc<dyn ModelRt>>> = RwLock::new(None);

/// Install `rt` as the process-wide model runtime. Explorations are
/// sequential by construction (one explorer drives one runtime), so a
/// plain slot suffices.
pub fn install(rt: Arc<dyn ModelRt>) {
    *RT.write().expect("model runtime slot poisoned") = Some(rt);
}

/// Remove the installed runtime; facades fall back to std behavior.
pub fn uninstall() {
    *RT.write().expect("model runtime slot poisoned") = None;
}

/// The installed runtime, if any.
pub fn rt() -> Option<Arc<dyn ModelRt>> {
    RT.read().expect("model runtime slot poisoned").clone()
}

/// Run `f` against the installed runtime; `false` (untouched) if none.
pub fn with_rt(f: impl FnOnce(&dyn ModelRt)) -> bool {
    match rt() {
        Some(rt) => {
            f(&*rt);
            true
        }
        None => false,
    }
}

/// Run `f` as model thread `tid` on the current OS thread: binds the
/// thread, waits for its first schedule, and converts its exit into a
/// [`ModelRt::thread_finish`]. [`AbortExecution`] unwinds are swallowed
/// (the execution is being abandoned); any other panic is reported as a
/// finding and the payload is preserved for `join`.
pub fn run_model_thread<T>(
    rt: &dyn ModelRt,
    tid: usize,
    f: impl FnOnce() -> T,
) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
    // thread_start is inside the catch: an abort while waiting for the
    // first schedule unwinds with AbortExecution like any other op.
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.thread_start(tid);
        f()
    }));
    let msg = match &out {
        Ok(_) => None,
        Err(p) if p.downcast_ref::<AbortExecution>().is_some() => None,
        Err(p) => Some(panic_message(p)),
    };
    rt.thread_finish(msg);
    out
}

/// Best-effort text of a panic payload.
pub fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
