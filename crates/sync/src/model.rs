//! Instrumented facade implementations (`--cfg dozz_model` only).
//!
//! Every type here mirrors its `std` counterpart's API but forwards
//! each visible operation to the installed [`rt_api::ModelRt`] runtime
//! (falling back to plain std behavior when none is installed, so
//! setup and reporting code outside an exploration still works).
//!
//! Storage stays in the real std primitive — the runtime only decides
//! *scheduling* and, for atomics, *which value a load observes*; the
//! std cell holds the construction-time value used for lazy
//! per-execution registration and is never written while a runtime is
//! installed.

use std::sync::atomic::Ordering;
use std::sync::LockResult;

use crate::rt_api::{self, Rmw};

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Facade mutex: model-level arbitration (lock order is a scheduling
/// decision), std-level storage and poisoning.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Mirrors `std::sync::Mutex::new`.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    fn id(&self) -> usize {
        &self.inner as *const _ as usize
    }

    /// Mirrors `std::sync::Mutex::lock`. The model runtime arbitrates
    /// (and may block) first; the inner std lock is then uncontended by
    /// construction.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let id = self.id();
        rt_api::with_rt(|rt| rt.mutex_lock(id));
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard { id, inner: Some(g) }),
            Err(e) => Err(std::sync::PoisonError::new(MutexGuard {
                id,
                inner: Some(e.into_inner()),
            })),
        }
    }

    /// Mirrors `std::sync::Mutex::get_mut` (no model op: `&mut self`
    /// proves exclusivity).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Mirrors `std::sync::Mutex::into_inner`.
    pub fn into_inner(self) -> LockResult<T> {
        rt_api::with_rt(|rt| rt.forget(self.id()));
        let me = std::mem::ManuallyDrop::new(self);
        // SAFETY: `me` is never dropped and `inner` is read exactly
        // once; this is the standard move-out-of-Drop-type pattern.
        let inner = unsafe { std::ptr::read(&me.inner) };
        inner.into_inner()
    }
}

impl<T> Drop for Mutex<T> {
    fn drop(&mut self) {
        rt_api::with_rt(|rt| rt.forget(self.id()));
    }
}

/// Facade mutex guard. Releases the model lock on drop, *after* the
/// inner std guard (the runtime schedules another thread at the unlock
/// point, and that thread must find the std mutex free).
pub struct MutexGuard<'a, T> {
    id: usize,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        rt_api::with_rt(|rt| rt.mutex_unlock(self.id));
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! facade_atomic {
    ($Name:ident, $Std:ty, $Raw:ty, $to:expr, $from:expr) => {
        /// Facade atomic: the std cell keeps the construction-time
        /// value; the runtime owns the modification order and decides
        /// which store each load observes.
        #[derive(Debug)]
        pub struct $Name {
            inner: $Std,
        }

        impl $Name {
            /// Mirrors the std constructor.
            pub const fn new(v: $Raw) -> Self {
                $Name {
                    inner: <$Std>::new(v),
                }
            }

            fn id(&self) -> usize {
                &self.inner as *const _ as usize
            }

            fn init(&self) -> u64 {
                // xtask-analyze: allow(atomic-ordering) — initial-value read for runtime registration; the model runtime owns all ordering semantics
                ($to)(self.inner.load(Ordering::Relaxed))
            }

            /// Mirrors `load`.
            pub fn load(&self, order: Ordering) -> $Raw {
                match rt_api::rt() {
                    Some(rt) => ($from)(rt.atomic_load(self.id(), self.init(), order)),
                    None => self.inner.load(order),
                }
            }

            /// Mirrors `store`.
            pub fn store(&self, val: $Raw, order: Ordering) {
                match rt_api::rt() {
                    Some(rt) => rt.atomic_store(self.id(), self.init(), ($to)(val), order),
                    None => self.inner.store(val, order),
                }
            }

            /// Mirrors `swap`.
            pub fn swap(&self, val: $Raw, order: Ordering) -> $Raw {
                match rt_api::rt() {
                    Some(rt) => {
                        ($from)(rt.atomic_rmw(self.id(), self.init(), Rmw::Swap, ($to)(val), order))
                    }
                    None => self.inner.swap(val, order),
                }
            }

            /// Mirrors `compare_exchange`.
            pub fn compare_exchange(
                &self,
                current: $Raw,
                new: $Raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$Raw, $Raw> {
                match rt_api::rt() {
                    Some(rt) => rt
                        .atomic_cas(
                            self.id(),
                            self.init(),
                            ($to)(current),
                            ($to)(new),
                            success,
                            failure,
                        )
                        .map($from)
                        .map_err($from),
                    None => self.inner.compare_exchange(current, new, success, failure),
                }
            }
        }

        impl Drop for $Name {
            fn drop(&mut self) {
                rt_api::with_rt(|rt| rt.forget(self.id()));
            }
        }
    };
}

facade_atomic!(
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64,
    |v: u64| v,
    |v: u64| v
);
facade_atomic!(
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    |v: usize| v as u64,
    |v: u64| v as usize
);
facade_atomic!(
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool,
    |v: bool| v as u64,
    |v: u64| v != 0
);

macro_rules! facade_fetch {
    ($Name:ident, $Raw:ty, $to:expr, $from:expr, $($method:ident => ($op:expr, $fallback:ident)),+ $(,)?) => {
        impl $Name {
            $(
                /// Mirrors the std fetch op of the same name.
                pub fn $method(&self, val: $Raw, order: Ordering) -> $Raw {
                    match rt_api::rt() {
                        Some(rt) => ($from)(rt.atomic_rmw(
                            self.id(),
                            self.init(),
                            $op,
                            ($to)(val),
                            order,
                        )),
                        None => self.inner.$fallback(val, order),
                    }
                }
            )+
        }
    };
}

facade_fetch!(AtomicU64, u64, |v: u64| v, |v: u64| v,
    fetch_add => (Rmw::Add, fetch_add),
    fetch_sub => (Rmw::Sub, fetch_sub),
    fetch_or => (Rmw::Or, fetch_or),
    fetch_and => (Rmw::And, fetch_and),
    fetch_xor => (Rmw::Xor, fetch_xor),
);
facade_fetch!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize,
    fetch_add => (Rmw::Add, fetch_add),
    fetch_sub => (Rmw::Sub, fetch_sub),
    fetch_or => (Rmw::Or, fetch_or),
    fetch_and => (Rmw::And, fetch_and),
    fetch_xor => (Rmw::Xor, fetch_xor),
);
facade_fetch!(AtomicBool, bool, |v: bool| v as u64, |v: u64| v != 0,
    fetch_or => (Rmw::Or, fetch_or),
    fetch_and => (Rmw::And, fetch_and),
);

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

pub mod hint {
    //! Instrumented spin hint.
    use crate::rt_api;

    /// Under the model a spin is a scheduling yield: the spinner is
    /// not re-enabled until another thread makes progress, which makes
    /// spin-wait loops finite for the explorer.
    pub fn spin_loop() {
        if !rt_api::with_rt(|rt| rt.yield_now()) {
            std::hint::spin_loop();
        }
    }
}

pub mod thread {
    //! Instrumented scoped/plain threads.
    use std::collections::BTreeMap;
    use std::sync::Mutex as StdMutex;

    use crate::rt_api::{self, AbortExecution};

    /// Mirrors `std::thread::yield_now` (a model scheduling yield).
    pub fn yield_now() {
        if !rt_api::with_rt(|rt| rt.yield_now()) {
            std::thread::yield_now();
        }
    }

    /// Per-scope list of model thread ids spawned into it, keyed by the
    /// std scope's address. A side table (not a field) because
    /// [`Scope`] must stay `repr(transparent)` over the std scope for
    /// the lifetime-preserving reference cast in [`scope`].
    static SCOPE_TIDS: StdMutex<BTreeMap<usize, Vec<usize>>> = StdMutex::new(BTreeMap::new());

    fn scope_key<'scope, 'env>(s: &std::thread::Scope<'scope, 'env>) -> usize {
        s as *const _ as usize
    }

    /// Mirrors `std::thread::Scope`.
    #[repr(transparent)]
    pub struct Scope<'scope, 'env: 'scope>(std::thread::Scope<'scope, 'env>);

    /// Mirrors `std::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, ThreadOut<T>>,
        tid: Option<usize>,
    }

    /// Mirrors `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<ThreadOut<T>>,
        tid: Option<usize>,
    }

    type ThreadOut<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;

    fn wrap_model<T>(tid: usize, f: impl FnOnce() -> T) -> ThreadOut<T> {
        let rt = rt_api::rt().expect("model runtime uninstalled mid-execution");
        rt_api::run_model_thread(&*rt, tid, f)
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        fn from_std<'a>(s: &'a std::thread::Scope<'scope, 'env>) -> &'a Self {
            // SAFETY: `Scope` is `repr(transparent)` over
            // `std::thread::Scope`, so the reference cast preserves
            // layout and both lifetimes exactly.
            unsafe { &*(s as *const std::thread::Scope<'scope, 'env> as *const Self) }
        }

        /// Mirrors `std::thread::Scope::spawn`.
        pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match rt_api::rt() {
                None => ScopedJoinHandle {
                    inner: self.0.spawn(move || Ok(f())),
                    tid: None,
                },
                Some(rt) => {
                    let tid = rt.prepare_spawn();
                    SCOPE_TIDS
                        .lock()
                        .expect("scope table poisoned")
                        .entry(scope_key(&self.0))
                        .or_default()
                        .push(tid);
                    ScopedJoinHandle {
                        inner: self.0.spawn(move || wrap_model(tid, f)),
                        tid: Some(tid),
                    }
                }
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Mirrors `std::thread::ScopedJoinHandle::join`.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(tid) = self.tid {
                rt_api::with_rt(|rt| rt.join(tid));
            }
            self.inner.join()?
        }
    }

    impl<T> JoinHandle<T> {
        /// Mirrors `std::thread::JoinHandle::join`.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(tid) = self.tid {
                rt_api::with_rt(|rt| rt.join(tid));
            }
            self.inner.join()?
        }
    }

    /// Mirrors `std::thread::scope`. On exit every thread spawned into
    /// the scope is first joined at the *model* level, so the std
    /// scope's implicit join never blocks on a thread the scheduler
    /// still owes a timeslice.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|inner| {
            let key = scope_key(inner);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f(Scope::from_std(inner))
            }));
            let tids = SCOPE_TIDS
                .lock()
                .expect("scope table poisoned")
                .remove(&key)
                .unwrap_or_default();
            if let Some(rt) = rt_api::rt() {
                match &out {
                    // Model-join the children (idempotent for handles
                    // already joined explicitly). May itself unwind
                    // with AbortExecution if the execution is being
                    // abandoned — the children unwind too, so the std
                    // implicit join below still returns.
                    Ok(_) => {
                        for t in &tids {
                            rt.join(*t);
                        }
                    }
                    // A panic is unwinding past live children: tell the
                    // runtime so it aborts the execution and the
                    // children unwind, instead of deadlocking the
                    // scope's implicit join.
                    Err(p) => {
                        if p.downcast_ref::<AbortExecution>().is_none() {
                            rt.thread_panicking(rt_api::panic_message(&**p));
                        }
                    }
                }
            }
            match out {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            }
        })
    }

    /// Mirrors `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt_api::rt() {
            None => JoinHandle {
                inner: std::thread::spawn(move || Ok(f())),
                tid: None,
            },
            Some(rt) => {
                let tid = rt.prepare_spawn();
                JoinHandle {
                    inner: std::thread::spawn(move || wrap_model(tid, f)),
                    tid: Some(tid),
                }
            }
        }
    }
}
