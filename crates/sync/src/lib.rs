//! Drop-in concurrency facades for the workspace.
//!
//! Every concurrency primitive the workspace uses — mutexes, atomics,
//! scoped threads, yields and spin hints — is imported from this crate
//! instead of `std`. In a normal build the facades are plain
//! re-exports (zero-cost passthrough, proven bit-identical by the
//! determinism goldens). Under `--cfg dozz_model` the same API routes
//! every operation through the [`rt_api::ModelRt`] runtime installed by
//! `dozznoc-modelcheck`, which turns each touchpoint into a scheduling
//! point of a deterministic interleaving explorer.
//!
//! The `sync-facade` pass of `cargo xtask analyze` denies raw
//! `std::sync`/`std::thread::spawn`/`std::hint::spin_loop` use outside
//! this crate, so "the model checker sees every primitive" is a
//! statically enforced invariant, not a convention (DESIGN.md §13).
//!
//! Facade surface:
//!
//! * [`Mutex`] / [`MutexGuard`] — mirrors `std::sync::Mutex` (poisoning
//!   included).
//! * [`atomic`] — `AtomicUsize`, `AtomicBool`, `AtomicU64` and the
//!   `Ordering` re-export.
//! * [`thread`] — `scope`/`spawn`, `yield_now`, plus passthroughs for
//!   the non-scheduling helpers (`available_parallelism`, `panicking`,
//!   `current`).
//! * [`hint::spin_loop`] — a scheduling yield under the model (a spin
//!   that never yields would livelock a deterministic scheduler).
//! * [`Arc`] / [`OnceLock`] — passthrough in both modes: immutable
//!   once set, so there is no interleaving to explore; re-exported here
//!   so callers need no `std::sync` import at all.

#[cfg(dozz_model)]
pub mod rt_api;

#[cfg(dozz_model)]
mod model;

// ---------------------------------------------------------------------
// Passthrough mode: the facade IS std.
// ---------------------------------------------------------------------

#[cfg(not(dozz_model))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(not(dozz_model))]
pub mod atomic {
    //! Facade atomics (std passthrough).
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(dozz_model))]
pub mod thread {
    //! Facade threads (std passthrough).
    pub use std::thread::{
        available_parallelism, current, panicking, scope, spawn, yield_now, JoinHandle, Scope,
        ScopedJoinHandle,
    };
}

#[cfg(not(dozz_model))]
pub mod hint {
    //! Facade spin hint (std passthrough).
    pub use std::hint::spin_loop;
}

// ---------------------------------------------------------------------
// Model mode: the facade routes through the installed runtime.
// ---------------------------------------------------------------------

#[cfg(dozz_model)]
pub use model::{Mutex, MutexGuard};

#[cfg(dozz_model)]
pub mod atomic {
    //! Facade atomics (instrumented).
    pub use crate::model::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(dozz_model)]
pub mod thread {
    //! Facade threads (instrumented).
    pub use crate::model::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};
    pub use std::thread::{available_parallelism, current, panicking};
}

#[cfg(dozz_model)]
pub mod hint {
    //! Facade spin hint (instrumented: a spin is a scheduling yield).
    pub use crate::model::hint::spin_loop;
}

// `Arc` and `OnceLock` are passthrough in both modes: `Arc`'s refcount
// is invisible to safe code and `OnceLock` is write-once (the single
// `set` is ordered by its own internal synchronization; there is no
// protocol for the explorer to permute). Re-exported so migrated crates
// never need a raw `std::sync` import.
pub use std::sync::{Arc, OnceLock};
