//! Acceptance tests for `cargo xtask analyze`: each pass is proven to
//! fire against a fixture crate (`tests/fixtures/*_fire.rs`) and to be
//! silenced by a justified suppression (`*_suppressed.rs`), and the
//! real tree must come out clean against the committed baseline.
//!
//! The fixtures live as standalone files (not inline strings) so they
//! stay readable as Rust and can seed new violation classes without
//! touching this test.

use xtask::analyze::{self, Workspace};
use xtask::diag::{Baseline, Report, Severity};
use xtask::scans;

/// A one-file workspace under the given crate name and path.
fn ws_one(krate: &str, rel: &str, src: &str) -> Workspace {
    let mut ws = Workspace::default();
    ws.add_source(krate, rel, src.to_string());
    ws
}

/// Run the full pipeline (passes → suppressions → empty baseline).
fn analyze(ws: &Workspace) -> Report {
    analyze::run_on(ws, Baseline::default())
}

fn gating<'a>(r: &'a Report, rule: &str) -> Vec<&'a xtask::diag::Diagnostic> {
    r.findings
        .iter()
        .filter(|d| d.rule == rule && matches!(d.severity, Severity::Deny | Severity::Warn))
        .collect()
}

// --- unit-consistency -----------------------------------------------------

#[test]
fn unit_consistency_fires_on_all_three_classes() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/unit_fire.rs"),
    );
    let r = analyze(&ws);
    let hits = gating(&r, "unit-consistency");
    assert_eq!(hits.len(), 3, "findings: {:?}", r.findings);
    assert!(hits.iter().any(|d| d.message.contains("raw `.0`")));
    assert!(hits
        .iter()
        .any(|d| d.message.contains("tuple construction")));
    assert!(hits.iter().any(|d| d.message.contains("cycle count")));
}

#[test]
fn unit_consistency_suppressions_silence_each_class() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/unit_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(
        gating(&r, "unit-consistency").is_empty(),
        "{:?}",
        r.findings
    );
    assert_eq!(r.suppressed, 3);
}

#[test]
fn unit_consistency_exempts_the_types_crate() {
    let ws = ws_one(
        "types",
        "crates/types/src/fixture.rs",
        include_str!("fixtures/unit_fire.rs"),
    );
    let r = analyze(&ws);
    assert!(
        gating(&r, "unit-consistency").is_empty(),
        "{:?}",
        r.findings
    );
}

// --- panic-reachability ---------------------------------------------------

#[test]
fn panic_reachability_fires_only_on_the_reachable_unwrap() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/panic_fire.rs"),
    );
    let r = analyze(&ws);
    let hits = gating(&r, "panic-reachability");
    assert_eq!(hits.len(), 1, "findings: {:?}", r.findings);
    assert!(hits[0].message.contains("Network::drain"));
    assert!(
        !r.findings
            .iter()
            .any(|d| d.message.contains("not_reachable")),
        "dead code must not be flagged: {:?}",
        r.findings
    );
}

#[test]
fn panic_reachability_suppression_silences_the_unwrap() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/panic_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(
        gating(&r, "panic-reachability").is_empty(),
        "{:?}",
        r.findings
    );
    assert_eq!(r.suppressed, 1);
}

// --- atomic-ordering ------------------------------------------------------

#[test]
fn atomic_ordering_fires_outside_the_scheduler() {
    let ws = ws_one(
        "core",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/atomics_fire.rs"),
    );
    let r = analyze(&ws);
    assert_eq!(gating(&r, "atomic-ordering").len(), 1, "{:?}", r.findings);
}

#[test]
fn atomic_ordering_suppression_silences_it() {
    let ws = ws_one(
        "core",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/atomics_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "atomic-ordering").is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn atomic_ordering_exempts_the_scheduler_module() {
    let ws = ws_one(
        "core",
        "crates/core/src/schedule.rs",
        include_str!("fixtures/atomics_fire.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "atomic-ordering").is_empty(), "{:?}", r.findings);
}

// --- must-use-builder -----------------------------------------------------

#[test]
fn must_use_builder_fires_on_the_unmarked_builder_only() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/must_use_fire.rs"),
    );
    let r = analyze(&ws);
    let hits = gating(&r, "must-use-builder");
    assert_eq!(hits.len(), 1, "findings: {:?}", r.findings);
    assert!(hits[0].message.contains("Cfg::try_with_x"));
}

#[test]
fn must_use_builder_suppression_silences_it() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/must_use_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(
        gating(&r, "must-use-builder").is_empty(),
        "{:?}",
        r.findings
    );
    assert_eq!(r.suppressed, 1);
}

// --- float-compare --------------------------------------------------------

#[test]
fn float_compare_fires_in_report_scope() {
    let ws = ws_one(
        "experiments",
        "crates/experiments/src/fixture.rs",
        include_str!("fixtures/float_fire.rs"),
    );
    let r = analyze(&ws);
    assert_eq!(gating(&r, "float-compare").len(), 1, "{:?}", r.findings);
}

#[test]
fn float_compare_suppression_silences_it() {
    let ws = ws_one(
        "experiments",
        "crates/experiments/src/fixture.rs",
        include_str!("fixtures/float_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "float-compare").is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn float_compare_is_scoped_to_report_code() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/float_fire.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "float-compare").is_empty(), "{:?}", r.findings);
}

// --- sync-facade ----------------------------------------------------------

#[test]
fn sync_facade_fires_on_each_raw_primitive_class() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/sync_facade_fire.rs"),
    );
    let r = analyze(&ws);
    let hits = gating(&r, "sync-facade");
    assert_eq!(hits.len(), 6, "findings: {:?}", r.findings);
    assert!(hits.iter().any(|d| d.message.contains("`std::sync`")));
    assert!(hits.iter().any(|d| d.message.contains("`std::thread`")));
    assert!(hits
        .iter()
        .any(|d| d.message.contains("`std::hint::spin_loop`")));
    // The host observers at the bottom of the fixture must NOT fire.
    assert!(hits.iter().all(|d| d.line < 17), "findings: {hits:?}");
}

#[test]
fn sync_facade_suppressions_silence_each_class() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/sync_facade_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "sync-facade").is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 3);
}

#[test]
fn sync_facade_exempts_the_facade_crate_itself() {
    let ws = ws_one(
        "sync",
        "crates/sync/src/fixture.rs",
        include_str!("fixtures/sync_facade_fire.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "sync-facade").is_empty(), "{:?}", r.findings);
}

#[test]
fn sync_facade_honors_the_shared_exemption_table() {
    // The model-check runtime implements the instrumentation below the
    // facade; its path-scoped waiver comes from diag::EXEMPTIONS, not
    // from per-line markers.
    let ws = ws_one(
        "modelcheck",
        "crates/modelcheck/src/runtime.rs",
        include_str!("fixtures/sync_facade_fire.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "sync-facade").is_empty(), "{:?}", r.findings);
}

/// The lint-side raw-spawn waivers and the analyze-side facade waivers
/// describe the same layer ("below the facade") and must not drift: any
/// file lint allows to spawn raw OS threads must either BE the facade
/// crate (which the sync-facade pass skips wholesale) or carry its own
/// sync-facade waiver. A thread-spawn exemption added without the
/// matching analyze-side story fails here.
#[test]
fn thread_spawn_waivers_cannot_outrun_the_facade_pass() {
    for file in xtask::diag::exempt_files("thread-spawn") {
        assert!(
            file.starts_with("crates/sync/") || xtask::diag::is_exempt("sync-facade", file),
            "{file} may spawn raw threads per diag::EXEMPTIONS but the \
             sync-facade pass would still deny its std primitives — the \
             two tables drifted"
        );
    }
    // And the facade waivers stay confined to the checker internals.
    for file in xtask::diag::exempt_files("sync-facade") {
        assert!(
            file.starts_with("crates/modelcheck/src/"),
            "sync-facade waiver for {file} — only the model-check \
             runtime layer may sit below the facade"
        );
    }
}

// --- engine behaviour -----------------------------------------------------

#[test]
fn unparseable_source_is_a_deny_finding() {
    let ws = ws_one("noc", "crates/noc/src/fixture.rs", "fn broken( {");
    let r = analyze(&ws);
    assert_eq!(gating(&r, "parse-error").len(), 1, "{:?}", r.findings);
}

#[test]
fn baseline_absorbs_a_grandfathered_finding() {
    let ws = ws_one(
        "experiments",
        "crates/experiments/src/fixture.rs",
        include_str!("fixtures/float_fire.rs"),
    );
    // First run records the finding; the rendered baseline must absorb
    // it on the second run.
    let first = analyze(&ws);
    let text = Baseline::render(&first.findings);
    let dir = std::env::temp_dir().join("xtask-analyze-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("baseline.json");
    std::fs::write(&path, text).expect("write baseline");

    let baseline = Baseline::load(&path).expect("load baseline");
    let second = analyze::run_on(&ws, baseline);
    assert!(!second.failed(), "{:?}", second.findings);
    assert_eq!(second.baselined, 1);
}

/// The acceptance criterion for the whole PR: the real tree, analyzed
/// against the committed baseline, has zero gating findings. Runs the
/// same pipeline as `cargo xtask analyze` so plain `cargo test` also
/// enforces it.
#[test]
fn real_tree_is_clean_with_committed_baseline() {
    let root = scans::workspace_root();
    let report = analyze::run(&root).expect("committed baseline parses");
    assert!(
        !report.failed(),
        "cargo xtask analyze would fail:\n{}",
        report.render_human("xtask analyze")
    );
}
