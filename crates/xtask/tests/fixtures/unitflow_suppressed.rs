//! Fixture: the same cross-function unit mixing as `unitflow_fire.rs`,
//! silenced by justified suppressions at the call sites.

use dozznoc_types::{DomainCycles, SimTime};

pub fn deadline_in(t: SimTime) -> u64 {
    t.ticks()
}

pub fn make_cycles(n: u64) -> DomainCycles {
    DomainCycles::from_count(n)
}

pub fn mixes_binding(c: DomainCycles) -> u64 {
    // xtask-analyze: allow(unit-flow) — c is documented to be base-clock-domain cycles, 1:1 with ticks here
    deadline_in(c)
}

pub fn mixes_through_call() -> u64 {
    // xtask-analyze: allow(unit-flow) — fixture exercises the suppression path
    deadline_in(make_cycles(3))
}
