//! Fixture: the same relaxed atomic, justified in place.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    // xtask-analyze: allow(atomic-ordering) — fixture: counter orders nothing
    counter.fetch_add(1, Ordering::Relaxed);
}
