//! Fixture: the same risky captures as `escape_fire.rs`, silenced by
//! justified suppressions on the line above each closure.

use std::cell::RefCell;
use std::num::NonZeroUsize;

pub fn run_indexed<T>(_jobs: NonZeroUsize, _count: usize, _task: impl Fn(usize) -> T) -> Vec<T> {
    Vec::new()
}

pub fn shard_with_refcell(jobs: NonZeroUsize) -> u64 {
    let scratch = RefCell::new(0u64);
    // xtask-analyze: allow(thread-escape) — jobs is pinned to 1 here, the closure never leaves this thread
    let results = run_indexed(jobs, 8, |i| {
        *scratch.borrow_mut() += i as u64;
        i as u64
    });
    results.iter().sum::<u64>() + *scratch.borrow()
}

pub fn shard_with_mut_ref(jobs: NonZeroUsize, acc: &mut Vec<u64>) -> usize {
    // xtask-analyze: allow(thread-escape) — acc is only read (len), never written, across the boundary
    let slots = run_indexed(jobs, 4, |i| acc.len() + i);
    slots.len()
}
