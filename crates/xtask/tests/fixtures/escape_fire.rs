//! Fixture: closures handed to the thread-spawn point capture state
//! that must not cross a thread boundary — single-threaded interior
//! mutability and a `&mut` parameter.

use std::cell::RefCell;
use std::num::NonZeroUsize;

pub fn run_indexed<T>(_jobs: NonZeroUsize, _count: usize, _task: impl Fn(usize) -> T) -> Vec<T> {
    Vec::new()
}

pub fn shard_with_refcell(jobs: NonZeroUsize) -> u64 {
    let scratch = RefCell::new(0u64);
    let results = run_indexed(jobs, 8, |i| {
        *scratch.borrow_mut() += i as u64;
        i as u64
    });
    results.iter().sum::<u64>() + *scratch.borrow()
}

pub fn shard_with_mut_ref(jobs: NonZeroUsize, acc: &mut Vec<u64>) -> usize {
    let slots = run_indexed(jobs, 4, |i| acc.len() + i);
    slots.len()
}
