//! Fixture: the unmarked builder behind a justified suppression.
pub struct Cfg {
    x: u64,
}

impl Cfg {
    // xtask-analyze: allow(must-use-builder) — fixture: attribute omitted on purpose
    pub fn try_with_x(mut self, x: u64) -> Result<Self, String> {
        self.x = x;
        Ok(self)
    }
}
