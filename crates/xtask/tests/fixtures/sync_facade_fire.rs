//! sync-facade fixture: raw std primitives outside `crates/sync`, every
//! one a synchronization point the model checker cannot see.
use std::sync::Mutex;

static FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

pub fn raw_sync_everywhere() {
    let _state = Mutex::new(0u32);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !FLAG.load(std::sync::atomic::Ordering::Acquire) {
                std::hint::spin_loop();
            }
        });
    });
    // Host observers stay allowed: no synchronization is created.
    let _cores = std::thread::available_parallelism();
    let _unwinding = std::thread::panicking();
}
