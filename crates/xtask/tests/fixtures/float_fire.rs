//! Fixture: exact float equality in report-scope code.
pub fn is_zero(mean: f64) -> bool {
    mean == 0.0
}
