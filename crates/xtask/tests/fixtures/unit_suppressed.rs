//! Fixture: the same violations, each behind a justified suppression.
use dozznoc_types::{DomainCycles, SimTime, TickDelta};

pub fn raw_access(t: SimTime) -> u64 {
    // xtask-analyze: allow(unit-consistency) — fixture: raw field on purpose
    t.0
}

pub fn construct(ticks: u64) -> TickDelta {
    // xtask-analyze: allow(unit-consistency) — fixture: direct construction
    TickDelta(ticks)
}

pub fn mix(epoch_cycles: u64, divisor: u64) -> u64 {
    // xtask-analyze: allow(unit-consistency) — fixture: mixing on purpose
    epoch_cycles * divisor
}
