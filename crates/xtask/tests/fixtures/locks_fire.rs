//! Fixture: a lock-order cycle between two functions plus an atomic
//! whose store/load orderings form no coherent protocol. Loaded under
//! the scheduler's path, where the shared exemption table waives the
//! Relaxed-is-suspect rule — lock-discipline still audits both.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Shared {
    pub ledger: Mutex<u64>,
    pub stats: Mutex<u64>,
    pub ready: AtomicU64,
}

impl Shared {
    pub fn forward(&self) -> u64 {
        let ledger = self.ledger.lock().unwrap();
        let stats = self.stats.lock().unwrap();
        *ledger + *stats
    }

    pub fn backward(&self) -> u64 {
        let stats = self.stats.lock().unwrap();
        let ledger = self.ledger.lock().unwrap();
        *ledger + *stats
    }

    pub fn publish(&self) {
        self.ready.store(1, Ordering::Release);
    }

    pub fn consume(&self) -> u64 {
        self.ready.load(Ordering::Relaxed)
    }
}
