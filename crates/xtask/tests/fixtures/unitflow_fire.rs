//! Fixture: tick/cycle unit mixing that only shows up across function
//! boundaries — a cycle-typed binding and a cycle-returning call both
//! passed where the callee declares ticks.

use dozznoc_types::{DomainCycles, SimTime};

pub fn deadline_in(t: SimTime) -> u64 {
    t.ticks()
}

pub fn make_cycles(n: u64) -> DomainCycles {
    DomainCycles::from_count(n)
}

pub fn mixes_binding(c: DomainCycles) -> u64 {
    deadline_in(c)
}

pub fn mixes_through_call() -> u64 {
    deadline_in(make_cycles(3))
}
