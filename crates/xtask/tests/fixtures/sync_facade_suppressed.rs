//! sync-facade fixture: the same raw primitives, each carrying a
//! justified waiver with the coverage argument.

pub fn wrapped_for_a_reason() {
    // xtask-analyze: allow(sync-facade) — fixture: wraps the primitive below the facade
    let _state = std::sync::Mutex::new(0u32);
    // xtask-analyze: allow(sync-facade) — fixture: scheduling hint below the facade
    std::thread::yield_now();
    // xtask-analyze: allow(sync-facade) — fixture: spin hint below the facade
    std::hint::spin_loop();
}
