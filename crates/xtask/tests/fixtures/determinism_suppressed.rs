//! Fixture: the same taint sites as `determinism_fire.rs`, each
//! silenced by a justified suppression.

use std::collections::HashMap;
use std::time::Instant;

pub struct Network;

impl Network {
    pub fn run(&self) -> u64 {
        stamp() + hash_walk() + ambient()
    }
}

fn stamp() -> u64 {
    // xtask-analyze: allow(determinism-taint) — measurement scaffold, readings never reach simulation state
    let t = Instant::now();
    // xtask-analyze: allow(determinism-taint) — measurement scaffold, readings never reach simulation state
    t.elapsed().as_nanos() as u64
}

fn hash_walk() -> u64 {
    // xtask-analyze: allow(determinism-taint) — map is drained into a sorted Vec before any iteration
    let m = HashMap::new();
    m.insert(1u64, 2u64);
    m.values().sum()
}

fn ambient() -> u64 {
    // xtask-analyze: allow(determinism-taint) — read is compared for presence only, value never used
    std::env::var("DOZZ_SEED").map(|s| s.len() as u64).unwrap_or(0)
}
