//! Fixture: the same discipline violations as `locks_fire.rs` with
//! justified suppressions at both reporting sites (the lock-order
//! back-edge and the atomic's first use).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Shared {
    pub ledger: Mutex<u64>,
    pub stats: Mutex<u64>,
    pub ready: AtomicU64,
}

impl Shared {
    pub fn forward(&self) -> u64 {
        let ledger = self.ledger.lock().unwrap();
        let stats = self.stats.lock().unwrap();
        *ledger + *stats
    }

    pub fn backward(&self) -> u64 {
        let stats = self.stats.lock().unwrap();
        // xtask-analyze: allow(lock-discipline) — forward/backward are proven never concurrent by the phase barrier
        let ledger = self.ledger.lock().unwrap();
        *ledger + *stats
    }

    pub fn publish(&self) {
        // xtask-analyze: allow(lock-discipline) — ready is a monotonic flag read after join, no publication intended
        self.ready.store(1, Ordering::Release);
    }

    pub fn consume(&self) -> u64 {
        self.ready.load(Ordering::Relaxed)
    }
}
