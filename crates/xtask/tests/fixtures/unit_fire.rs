//! Fixture: every unit-consistency violation class, unsuppressed.
use dozznoc_types::{DomainCycles, SimTime, TickDelta};

pub fn raw_access(t: SimTime) -> u64 {
    t.0
}

pub fn construct(ticks: u64) -> TickDelta {
    TickDelta(ticks)
}

pub fn mix(epoch_cycles: u64, divisor: u64) -> u64 {
    epoch_cycles * divisor
}
