//! Fixture: all four nondeterminism classes reachable from an engine
//! root (`Network::run`): wall clock, clock arithmetic, hash-order
//! iteration, and an ambient env read.

use std::collections::HashMap;
use std::time::Instant;

pub struct Network;

impl Network {
    pub fn run(&self) -> u64 {
        stamp() + hash_walk() + ambient()
    }
}

fn stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

fn hash_walk() -> u64 {
    let m = HashMap::new();
    m.insert(1u64, 2u64);
    m.values().sum()
}

fn ambient() -> u64 {
    std::env::var("DOZZ_SEED").map(|s| s.len() as u64).unwrap_or(0)
}
