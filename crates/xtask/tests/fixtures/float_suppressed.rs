//! Fixture: the same comparison, justified as a sentinel.
pub fn is_zero(mean: f64) -> bool {
    // xtask-analyze: allow(float-compare) — fixture: exact-zero sentinel
    mean == 0.0
}
