//! Fixture: a builder missing #[must_use] next to one that carries it.
pub struct Cfg {
    x: u64,
}

impl Cfg {
    pub fn try_with_x(mut self, x: u64) -> Result<Self, String> {
        self.x = x;
        Ok(self)
    }

    #[must_use = "the updated builder is returned, not applied in place"]
    pub fn with_y(mut self, y: u64) -> Self {
        self.x = y;
        self
    }
}
