//! Fixture: the reachable unwrap behind a justified suppression.
pub struct Network {
    queue: Vec<u64>,
}

impl Network {
    pub fn run(&mut self) -> u64 {
        self.drain()
    }

    fn drain(&mut self) -> u64 {
        // xtask-analyze: allow(panic-reachability) — fixture: queue is non-empty by construction
        self.queue.pop().unwrap()
    }
}
