//! Fixture: an unwrap on the hot path, plus one in dead code that the
//! call-graph walk must NOT reach.
pub struct Network {
    queue: Vec<u64>,
}

impl Network {
    pub fn run(&mut self) -> u64 {
        self.drain()
    }

    fn drain(&mut self) -> u64 {
        self.queue.pop().unwrap()
    }
}

pub fn not_reachable(v: &[u64]) -> u64 {
    v.first().unwrap() + 1
}
