//! Acceptance tests for the dataflow passes (`thread-escape`,
//! `lock-discipline`, `determinism-taint`, `unit-flow`): each is proven
//! to fire on a fixture crate and to be silenced by justified
//! suppressions, the exemption table is proven to carve out the
//! measurement region, the JSON pipeline is proven deterministic, and —
//! the headline self-test — an `Instant::now` seeded into the real
//! tree's engine region is caught.

use xtask::analyze::{self, Workspace};
use xtask::diag::{Baseline, Report, Severity};
use xtask::scans;

fn ws_one(krate: &str, rel: &str, src: &str) -> Workspace {
    let mut ws = Workspace::default();
    ws.add_source(krate, rel, src.to_string());
    ws
}

fn analyze(ws: &Workspace) -> Report {
    analyze::run_on(ws, Baseline::default())
}

fn gating<'a>(r: &'a Report, rule: &str) -> Vec<&'a xtask::diag::Diagnostic> {
    r.findings
        .iter()
        .filter(|d| d.rule == rule && matches!(d.severity, Severity::Deny | Severity::Warn))
        .collect()
}

// --- thread-escape ---------------------------------------------------------

#[test]
fn thread_escape_fires_on_refcell_and_mut_ref_captures() {
    let ws = ws_one(
        "core",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/escape_fire.rs"),
    );
    let r = analyze(&ws);
    let hits = gating(&r, "thread-escape");
    assert_eq!(hits.len(), 2, "findings: {:?}", r.findings);
    assert!(hits
        .iter()
        .any(|d| d.message.contains("`scratch`") && d.message.contains("RefCell")));
    assert!(hits
        .iter()
        .any(|d| d.message.contains("`acc`") && d.message.contains("&mut")));
}

#[test]
fn thread_escape_suppressions_silence_both_captures() {
    let ws = ws_one(
        "core",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/escape_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "thread-escape").is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

// --- lock-discipline -------------------------------------------------------

#[test]
fn lock_discipline_fires_on_cycle_and_incoherent_atomic() {
    // Loaded under the scheduler's own path: the shared exemption table
    // waives atomic-ordering there, yet lock-discipline still audits —
    // the counters are checked, not blanket-exempted.
    let ws = ws_one(
        "core",
        "crates/core/src/schedule.rs",
        include_str!("fixtures/locks_fire.rs"),
    );
    let r = analyze(&ws);
    assert!(
        gating(&r, "atomic-ordering").is_empty(),
        "exemption table must waive Relaxed-is-suspect here: {:?}",
        r.findings
    );
    let hits = gating(&r, "lock-discipline");
    assert_eq!(hits.len(), 2, "findings: {:?}", r.findings);
    assert!(hits.iter().any(|d| d.message.contains("lock-order cycle")));
    assert!(hits
        .iter()
        .any(|d| d.message.contains("`ready`") && d.message.contains("Release")));
}

#[test]
fn lock_discipline_suppressions_silence_both_checks() {
    let ws = ws_one(
        "core",
        "crates/core/src/schedule.rs",
        include_str!("fixtures/locks_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "lock-discipline").is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

// --- determinism-taint -----------------------------------------------------

#[test]
fn determinism_taint_fires_on_all_four_classes() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/determinism_fire.rs"),
    );
    let r = analyze(&ws);
    let hits = gating(&r, "determinism-taint");
    assert!(hits.len() >= 4, "findings: {:?}", r.findings);
    for class in ["Instant", ".elapsed()", "HashMap", "std::env"] {
        assert!(
            hits.iter().any(|d| d.message.contains(class)),
            "no {class} finding in {:?}",
            hits
        );
    }
}

#[test]
fn determinism_taint_suppressions_silence_each_site() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/determinism_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(
        gating(&r, "determinism-taint").is_empty(),
        "{:?}",
        r.findings
    );
    assert!(r.suppressed >= 4);
}

#[test]
fn determinism_taint_respects_the_measure_exemption() {
    // The same tainted code under the measurement region's path stays
    // silent: the standing waiver comes from diag::EXEMPTIONS, not from
    // per-line markers.
    let ws = ws_one(
        "core",
        "crates/core/src/measure.rs",
        include_str!("fixtures/determinism_fire.rs"),
    );
    let r = analyze(&ws);
    assert!(
        gating(&r, "determinism-taint").is_empty(),
        "{:?}",
        r.findings
    );
}

#[test]
fn determinism_taint_ignores_the_cli_layer() {
    // Ambient reads in the experiments crate are out of the engine
    // region by construction.
    let ws = ws_one(
        "experiments",
        "crates/experiments/src/fixture.rs",
        include_str!("fixtures/determinism_fire.rs"),
    );
    let r = analyze(&ws);
    assert!(
        gating(&r, "determinism-taint").is_empty(),
        "{:?}",
        r.findings
    );
}

// --- unit-flow -------------------------------------------------------------

#[test]
fn unit_flow_fires_on_cross_function_mixing() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/unitflow_fire.rs"),
    );
    let r = analyze(&ws);
    let hits = gating(&r, "unit-flow");
    assert_eq!(hits.len(), 2, "findings: {:?}", r.findings);
    assert!(hits
        .iter()
        .all(|d| d.message.contains("domain cycles") && d.message.contains("expects ticks")));
}

#[test]
fn unit_flow_suppressions_silence_both_sites() {
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        include_str!("fixtures/unitflow_suppressed.rs"),
    );
    let r = analyze(&ws);
    assert!(gating(&r, "unit-flow").is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn unit_flow_stays_silent_on_ambiguous_overloads() {
    // Two same-name callees that disagree on a position: no finding.
    let ws = ws_one(
        "noc",
        "crates/noc/src/fixture.rs",
        "use dozznoc_types::{DomainCycles, SimTime};\n\
         pub fn f(t: SimTime) -> u64 { t.ticks() }\n\
         pub mod other { use dozznoc_types::DomainCycles;\n\
             pub fn f(c: DomainCycles) -> u64 { c.count() } }\n\
         pub fn call(c: DomainCycles) -> u64 { f(c) }\n",
    );
    let r = analyze(&ws);
    assert!(gating(&r, "unit-flow").is_empty(), "{:?}", r.findings);
}

// --- the seeded-taint self-test on the real tree ---------------------------

#[test]
fn seeded_instant_in_the_engine_region_is_caught() {
    let root = scans::workspace_root();
    let network_rel = "crates/noc/src/network.rs";
    let path = root.join(network_rel);
    let src = std::fs::read_to_string(&path).expect("read network.rs");

    // Plant a wall-clock read at the top of the engine loop.
    let anchor = src
        .find("fn run_instrumented")
        .expect("network.rs must contain the engine loop");
    let brace = src[anchor..]
        .find('{')
        .map(|i| anchor + i + 1)
        .expect("engine loop has a body");
    let mut seeded = src.clone();
    seeded.insert_str(brace, " let __seeded = std::time::Instant::now(); ");

    let mut ws = Workspace::load(&root);
    for f in &mut ws.files {
        if f.rel == network_rel {
            *f = {
                let mut one = Workspace::default();
                one.add_source(f.krate.clone(), f.rel.clone(), seeded.clone());
                assert!(one.parse_errors.is_empty(), "{:?}", one.parse_errors);
                one.files.pop().expect("just added")
            };
        }
    }

    let baseline =
        Baseline::load(&root.join(analyze::BASELINE_REL)).expect("committed baseline loads");
    let r = analyze::run_on(&ws, baseline);
    let hits = gating(&r, "determinism-taint");
    assert_eq!(hits.len(), 1, "findings: {:?}", r.findings);
    assert_eq!(hits[0].file, network_rel);
    assert!(hits[0].message.contains("Instant"), "{}", hits[0].message);
}

// --- JSON determinism ------------------------------------------------------

#[test]
fn repeated_runs_emit_identical_findings_and_time_every_pass() {
    let root = scans::workspace_root();
    let ws = Workspace::load(&root);
    let r1 = analyze::run_on(&ws, Baseline::default());
    let r2 = analyze::run_on(&ws, Baseline::default());
    assert_eq!(r1.findings, r2.findings, "findings must be order-stable");
    let ids: Vec<&str> = r1.timings.iter().map(|(id, _)| id.as_str()).collect();
    let expected: Vec<&str> = analyze::passes().iter().map(|p| p.id()).collect();
    assert_eq!(ids, expected, "one timing entry per pass, in pass order");
    assert!(r1.timings.iter().all(|(_, ms)| *ms >= 0.0));
}
