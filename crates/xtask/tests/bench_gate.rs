//! Fixture tests for the `cargo xtask bench --compare` regression gate.
//!
//! The fixtures under `tests/fixtures/bench/` are hand-written matrix
//! files in the frozen v2 schema. `current.json` plays the run under
//! test; each `baseline-*.json` exercises one gate policy:
//!
//! - `baseline-slow.json` — baseline a few ms slower than current:
//!   the same-machine rerun case. Must pass (within tolerance, and the
//!   small deltas sit under the noise floor).
//! - `baseline-fast.json` — baseline ~50% faster: the regression case.
//!   The gate must fire on every regime's wall-clock and throughput.
//! - `baseline-missing-regime.json` — baseline covers a cell the
//!   current run lost. Coverage shrink must fail.
//! - `baseline-schema-mismatch.json` — a v99 file. Parsing must fail
//!   loudly, pointing at `--write-baseline`, before any comparison.

use std::path::PathBuf;

use xtask::bench::compare::{compare, NOISE_FLOOR_WALL_MS};
use xtask::bench::schema::{BenchMatrix, BENCH_SCHEMA_VERSION};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/bench")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

fn matrix(name: &str) -> BenchMatrix {
    BenchMatrix::from_json(&fixture(name)).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

#[test]
fn fixtures_speak_the_current_schema() {
    // If BENCH_SCHEMA_VERSION is ever bumped, the fixtures (and the
    // committed baseline) must be regenerated in the same commit.
    assert_eq!(BENCH_SCHEMA_VERSION, 2);
    for name in [
        "current.json",
        "baseline-slow.json",
        "baseline-fast.json",
        "baseline-missing-regime.json",
    ] {
        let m = matrix(name);
        assert_eq!(m.profile, "quick", "{name}");
        assert!(!m.cells.is_empty(), "{name}");
    }
}

#[test]
fn same_machine_rerun_passes_within_noise() {
    let report = compare(&matrix("current.json"), &matrix("baseline-slow.json"));
    assert!(report.passed(), "gate should pass:\n{}", report.render());
    // The deltas are genuinely sub-floor, so the rows say so.
    assert!(
        report.render().contains("noise floor"),
        "{}",
        report.render()
    );
}

#[test]
fn gate_fires_on_slowdown() {
    let report = compare(&matrix("current.json"), &matrix("baseline-fast.json"));
    assert!(!report.passed(), "gate must fail:\n{}", report.render());
    // Every regime regressed well past its tolerance: wall findings for
    // all three cells, and the failure text names the movement.
    let wall_failures = report
        .failures
        .iter()
        .filter(|f| f.contains("wall-clock regressed"))
        .count();
    assert_eq!(wall_failures, 3, "{:#?}", report.failures);
    assert!(report
        .failures
        .iter()
        .any(|f| f.contains("throughput dropped")));
}

#[test]
fn lost_coverage_fails() {
    let report = compare(
        &matrix("current.json"),
        &matrix("baseline-missing-regime.json"),
    );
    assert!(!report.passed());
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.contains("saturation/cmesh4x4/j1") && f.contains("missing from this run")),
        "{:#?}",
        report.failures
    );
}

#[test]
fn schema_drift_fails_loudly_before_comparison() {
    let err = BenchMatrix::from_json(&fixture("baseline-schema-mismatch.json"))
        .expect_err("v99 baseline must be rejected");
    assert!(err.contains("schema mismatch"), "{err}");
    assert!(err.contains("v99"), "{err}");
    assert!(err.contains("--write-baseline"), "{err}");
}

#[test]
fn committed_baseline_parses_and_covers_the_matrix() {
    // The real gate input: the baseline checked in next to this test.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("bench-baseline.json"))
        .expect("committed bench-baseline.json exists");
    let m = BenchMatrix::from_json(&text).expect("committed baseline parses");
    assert_eq!(m.profile, "quick");
    // 3 regimes × 2 topologies × {j1/s1, jN/s1, j1/sN}.
    assert_eq!(m.cells.len(), 18, "matrix shape drifted");
    for regime in ["light", "saturation", "pathological-hotspot"] {
        for topo in ["mesh8x8", "cmesh4x4"] {
            for config in ["j1/s1", "jN/s1", "j1/sN"] {
                let key = format!("{regime}/{topo}/{config}");
                assert!(
                    m.cells.iter().any(|c| c.key() == key),
                    "baseline missing {key}"
                );
            }
        }
    }
}

#[test]
fn noise_floor_is_meaningful_for_the_quick_profile() {
    // The committed baseline's shortest cell must be small enough that
    // the floor actually shields it — otherwise the floor is dead code
    // and the light regime gates on pure scheduler noise.
    let current = matrix("current.json");
    let shortest = current
        .cells
        .iter()
        .map(|c| c.wall_ms)
        .fold(f64::INFINITY, f64::min);
    assert!(
        NOISE_FLOOR_WALL_MS < shortest,
        "floor {NOISE_FLOOR_WALL_MS}ms swallows the shortest cell ({shortest}ms) entirely"
    );
}
