//! `cargo xtask` — project automation for the DozzNoC reproduction.
//!
//! The only subcommand so far is `lint`, which enforces the checks a
//! generic linter cannot express for this codebase:
//!
//! 1. **Workspace clippy, warnings denied.** The `[workspace.lints]`
//!    floor (clippy `correctness` + `suspicious` groups) applies
//!    everywhere; the simulator-critical crates (`noc`, `topology`,
//!    `power`) additionally deny `clippy::unwrap_used` through their own
//!    `[lints.clippy]` tables.
//! 2. **Advisory `clippy::indexing_slicing` sweep** over the simulator
//!    crates. The hot path indexes arrays whose bounds are established
//!    by construction (port/VC grids sized from the topology), so the
//!    lint cannot be denied outright — but new indexing is worth eyes,
//!    so the count is reported without failing the build.
//! 3. **Source scans** for project-specific invariants:
//!    - no lossy `as` casts in the tick arithmetic (`types/src/time.rs`,
//!      `types/src/mode.rs`) — tick math must stay in checked/saturating
//!      integer ops; the single authorized float→tick conversion carries
//!      an `xtask-lint: allow(lossy-cast)` marker,
//!    - no narrowing casts of `.ticks()` anywhere in the workspace
//!      (a `u64` tick count squeezed into `u32` truncates silently after
//!      ~4 seconds of simulated time at 18 GHz),
//!    - no `thread::spawn`/`thread::scope`/`thread::Builder` outside
//!      the cell scheduler (`crates/core/src/schedule.rs`) — every
//!      parallel fan-out must route through
//!      `dozznoc_core::schedule::run_indexed` so the determinism suite
//!      covers it; escapes carry `xtask-lint: allow(thread-spawn)`,
//!    - no `unwrap()` in the hot-path modules (`noc/src/network.rs`,
//!      `noc/src/router.rs`) outside their test modules — redundant with
//!      the clippy table, but this scan needs no compilation and names
//!      the rule in its message,
//!    - every public counter field of `RunStats` is referenced by at
//!      least one integration test (`tests/*.rs` or
//!      `crates/noc/tests/*.rs`), so conservation/invariant coverage
//!      cannot silently rot when a counter is added.
//!
//! The scans are pure functions over file contents; the unit tests below
//! seed them with forbidden code to demonstrate each one actually fires,
//! and a self-check test runs them against the real tree so plain
//! `cargo test` also catches violations.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Marker that exempts a line (or the line directly below it) from the
/// lossy-cast scan. Kept deliberately verbose so it cannot appear by
/// accident.
const LOSSY_CAST_ALLOW: &str = "xtask-lint: allow(lossy-cast)";

/// Marker that exempts a line (or the line directly below it) from the
/// thread-spawn scan.
const THREAD_SPAWN_ALLOW: &str = "xtask-lint: allow(thread-spawn)";

/// The one module allowed to spawn threads: the work-stealing cell
/// scheduler. Everything else must fan out through it so the
/// determinism suite (`tests/determinism.rs`) vouches for every
/// parallel caller at once.
const SCHEDULER_MODULE: &str = "crates/core/src/schedule.rs";

/// Thread-creation forms the spawn scan rejects outside the scheduler.
const THREAD_SPAWN_FORMS: [&str; 3] = ["thread::spawn", "thread::scope", "thread::Builder"];

/// Cast targets considered lossy in tick/mode arithmetic: every integer
/// target (truncating from float, narrowing from wider ints) plus `f32`
/// (drops precision from `u64`). `f64` stays allowed — the reporting
/// helpers convert tick counts to nanoseconds as their last step.
const LOSSY_TARGETS: [&str; 13] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// Targets narrower than the `u64` returned by `.ticks()`.
const NARROW_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// One rule violation found by a source scan.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize, // 1-based
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let skip_clippy = args.iter().any(|a| a == "--skip-clippy");
            lint(skip_clippy)
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--skip-clippy]");
            eprintln!();
            eprintln!("  lint           workspace clippy (-D warnings), advisory");
            eprintln!("                 indexing_slicing sweep, and the DozzNoC");
            eprintln!("                 source scans (lossy tick casts, hot-path");
            eprintln!("                 unwraps, RunStats test coverage)");
            eprintln!("  --skip-clippy  source scans only (no compilation)");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root, resolved relative to this crate (crates/xtask → repo).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn lint(skip_clippy: bool) -> ExitCode {
    let root = workspace_root();
    let mut failed = false;

    if skip_clippy {
        println!("xtask lint: skipping clippy passes (--skip-clippy)");
    } else {
        println!("xtask lint: cargo clippy --workspace --all-targets -- -D warnings");
        if !run_cargo(
            &root,
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ) {
            eprintln!("xtask lint: clippy (deny warnings) FAILED");
            failed = true;
        }

        println!("xtask lint: advisory clippy::indexing_slicing sweep (noc, topology, power)");
        match advisory_indexing_sweep(&root) {
            Ok(count) => {
                println!("xtask lint: {count} indexing_slicing warning(s) — advisory, not fatal");
            }
            Err(msg) => {
                eprintln!("xtask lint: advisory sweep failed to compile: {msg}");
                failed = true;
            }
        }
    }

    let findings = scan_tree(&root);
    for f in &findings {
        eprintln!("{f}");
    }
    if !findings.is_empty() {
        eprintln!("xtask lint: {} source-scan finding(s)", findings.len());
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    }
}

/// Run `cargo <args>` in `root`, inheriting stdio. True on success.
fn run_cargo(root: &Path, args: &[&str]) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    Command::new(cargo)
        .args(args)
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Advisory pass: surface `clippy::indexing_slicing` in the simulator
/// crates without failing on it. Returns the warning count, or the
/// captured stderr if the compile itself fails.
fn advisory_indexing_sweep(root: &Path) -> Result<usize, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let out = Command::new(cargo)
        .args([
            "clippy",
            "-p",
            "dozznoc-noc",
            "-p",
            "dozznoc-topology",
            "-p",
            "dozznoc-power",
            "--all-targets",
            "--",
            "-W",
            "clippy::indexing_slicing",
        ])
        .current_dir(root)
        .output()
        .map_err(|e| e.to_string())?;
    let stderr = String::from_utf8_lossy(&out.stderr);
    if !out.status.success() {
        return Err(stderr.into_owned());
    }
    Ok(stderr.matches("clippy::indexing_slicing").count())
}

/// All source scans over the real tree.
fn scan_tree(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    for rel in ["crates/types/src/time.rs", "crates/types/src/mode.rs"] {
        findings.extend(scan_lossy_casts(rel, &read(root, rel)));
    }

    for rel in rust_sources(root) {
        let src = read(root, &rel);
        findings.extend(scan_tick_narrowing(&rel, &src));
        if rel != SCHEDULER_MODULE {
            findings.extend(scan_thread_spawns(&rel, &src));
        }
    }

    for rel in ["crates/noc/src/network.rs", "crates/noc/src/router.rs"] {
        findings.extend(scan_hot_path_unwraps(rel, &read(root, rel)));
    }

    let stats_rel = "crates/noc/src/stats.rs";
    let fields = run_stats_fields(&read(root, stats_rel));
    if fields.is_empty() {
        findings.push(Finding {
            file: stats_rel.into(),
            line: 1,
            msg: "could not parse any RunStats fields — scanner out of sync with the struct".into(),
        });
    }
    let tests: Vec<String> = test_sources(root)
        .iter()
        .map(|rel| read(root, rel))
        .collect();
    for field in uncovered_stats_fields(&fields, &tests) {
        findings.push(Finding {
            file: stats_rel.into(),
            line: 1,
            msg: format!(
                "RunStats.{field} is not referenced by any integration test \
                 (tests/*.rs, crates/noc/tests/*.rs) — add a conservation or \
                 invariant assertion for it"
            ),
        });
    }

    findings
}

fn read(root: &Path, rel: &str) -> String {
    let path = root.join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Every `.rs` file under `crates/*/src` and the root `src/`, as
/// root-relative forward-slash paths.
fn rust_sources(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            // xtask itself is excluded: its tests seed deliberately
            // forbidden code into the scanners.
            if e.file_name() != "xtask" {
                dirs.push(e.path().join("src"));
            }
        }
    }
    while let Some(dir) = dirs.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                dirs.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// Integration-test files whose contents count as RunStats coverage.
fn test_sources(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for dir in ["tests", "crates/noc/tests"] {
        let Ok(entries) = fs::read_dir(root.join(dir)) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// Drop a trailing `// …` line comment. Good enough for this codebase:
/// the scanned files do not put `//` inside string literals.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// The identifier starting at `code[at..]`, if any.
fn ident_at(code: &str, at: usize) -> &str {
    let rest = &code[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    &rest[..end]
}

/// Cast targets of every `<expr> as <ty>` on a comment-stripped line.
fn cast_targets(code: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = code[from..].find(" as ") {
        let at = from + i + 4;
        let ty = ident_at(code, at);
        if !ty.is_empty() {
            out.push(ty);
        }
        from = at;
    }
    out
}

/// Rule 1: no lossy `as` casts in the tick/mode arithmetic, except on
/// lines carrying (or directly below) the allow marker.
fn scan_lossy_casts(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut prev_allows = false;
    for (idx, raw) in src.lines().enumerate() {
        let allows = raw.contains(LOSSY_CAST_ALLOW);
        if !allows && !prev_allows {
            let code = strip_line_comment(raw);
            for ty in cast_targets(code) {
                if LOSSY_TARGETS.contains(&ty) {
                    findings.push(Finding {
                        file: file.into(),
                        line: idx + 1,
                        msg: format!(
                            "lossy `as {ty}` cast in tick arithmetic — use the checked \
                             constructors or mark with `{LOSSY_CAST_ALLOW}`"
                        ),
                    });
                }
            }
        }
        prev_allows = allows;
    }
    findings
}

/// Rule 2: `.ticks()` (a `u64` count of 1/18 ns base ticks) must never be
/// narrowed — `u32` overflows after ~4 simulated seconds.
fn scan_tick_narrowing(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let code = strip_line_comment(raw);
        let mut from = 0;
        while let Some(i) = code[from..].find(".ticks() as ") {
            let at = from + i + ".ticks() as ".len();
            let ty = ident_at(code, at);
            if NARROW_TARGETS.contains(&ty) {
                findings.push(Finding {
                    file: file.into(),
                    line: idx + 1,
                    msg: format!(
                        "`.ticks() as {ty}` narrows a u64 tick count — keep tick math in u64"
                    ),
                });
            }
            from = at;
        }
    }
    findings
}

/// Rule: threads are spawned only by the cell scheduler
/// (`crates/core/src/schedule.rs`). Any `thread::spawn`,
/// `thread::scope` or `thread::Builder` elsewhere bypasses the
/// injector/indexed-slot machinery that keeps parallel campaign runs
/// bit-identical to sequential ones, so it must either route through
/// [`SCHEDULER_MODULE`] or carry the allow marker (same line or the
/// line directly above).
fn scan_thread_spawns(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut prev_allows = false;
    for (idx, raw) in src.lines().enumerate() {
        let allows = raw.contains(THREAD_SPAWN_ALLOW);
        if !allows && !prev_allows {
            let code = strip_line_comment(raw);
            for form in THREAD_SPAWN_FORMS {
                if code.contains(form) {
                    findings.push(Finding {
                        file: file.into(),
                        line: idx + 1,
                        msg: format!(
                            "`{form}` outside {SCHEDULER_MODULE} — fan out through \
                             dozznoc_core::schedule::run_indexed so determinism tests cover \
                             it, or mark with `{THREAD_SPAWN_ALLOW}`"
                        ),
                    });
                }
            }
        }
        prev_allows = allows;
    }
    findings
}

/// Rule 3: no `unwrap()` in hot-path modules outside their test module.
/// By repo convention the `#[cfg(test)]` module sits at the bottom of the
/// file, so scanning stops at the first such attribute.
fn scan_hot_path_unwraps(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = strip_line_comment(raw);
        if code.contains(".unwrap()") || code.contains(".unwrap_err()") {
            findings.push(Finding {
                file: file.into(),
                line: idx + 1,
                msg: "unwrap() in simulator hot path — use expect() naming the invariant \
                      that makes the value present"
                    .into(),
            });
        }
    }
    findings
}

/// Public field names of `RunStats`, parsed from its source.
fn run_stats_fields(src: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut in_struct = false;
    for line in src.lines() {
        if line.starts_with("pub struct RunStats") {
            in_struct = true;
            continue;
        }
        if in_struct {
            if line.starts_with('}') {
                break;
            }
            if let Some(rest) = line.trim_start().strip_prefix("pub ") {
                if let Some((name, _)) = rest.split_once(':') {
                    fields.push(name.trim().to_string());
                }
            }
        }
    }
    fields
}

/// Rule 4: fields not mentioned in any of the given test sources.
fn uncovered_stats_fields(fields: &[String], test_sources: &[String]) -> Vec<String> {
    fields
        .iter()
        .filter(|f| !test_sources.iter().any(|src| src.contains(f.as_str())))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each scan is demonstrated against seeded *forbidden* code — the
    // acceptance test for the linter is that it actually fails things.

    #[test]
    fn lossy_cast_is_flagged() {
        let src = "fn f(t: f64) -> u64 {\n    t as u64\n}\n";
        let found = scan_lossy_casts("time.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        assert!(found[0].msg.contains("as u64"));
    }

    #[test]
    fn widening_and_f64_casts_are_not_lossy() {
        let src = "let ns = ticks as f64 / TICKS_PER_NS as f64;\n";
        assert!(scan_lossy_casts("time.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_on_same_line_suppresses() {
        let src = "    t as u64 // xtask-lint: allow(lossy-cast) — saturating\n";
        assert!(scan_lossy_casts("time.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_on_previous_line_suppresses() {
        let src = "// xtask-lint: allow(lossy-cast) — saturating by construction\nt as u64\n";
        assert!(scan_lossy_casts("time.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_does_not_leak_past_one_line() {
        let src = "// xtask-lint: allow(lossy-cast)\nt as u64\nu as u32\n";
        let found = scan_lossy_casts("time.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn cast_in_comment_is_ignored() {
        let src = "// converting ticks as u64 would truncate here\nlet x = 1;\n";
        assert!(scan_lossy_casts("time.rs", src).is_empty());
    }

    #[test]
    fn tick_narrowing_is_flagged() {
        let src = "let c = (span.ticks() as u32).min(7);\n";
        let found = scan_tick_narrowing("x.rs", src);
        assert_eq!(found.len(), 1);
        assert!(found[0].msg.contains("as u32"));
    }

    #[test]
    fn tick_to_f64_and_unrelated_casts_pass() {
        // The second line is the histogram's leading_zeros cast that a
        // naive "ticks + as" scan would false-positive on.
        let src = "let f = span.ticks() as f64;\nlet bucket = v.leading_zeros() as usize;\n";
        assert!(scan_tick_narrowing("x.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_is_flagged() {
        let src = "fn fan_out() {\n    let h = std::thread::spawn(|| work());\n}\n";
        let found = scan_thread_spawns("crates/core/src/experiment.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        assert!(found[0].msg.contains("thread::spawn"));
        assert!(found[0].msg.contains("schedule.rs"));
    }

    #[test]
    fn thread_scope_and_builder_are_flagged() {
        let src = "std::thread::scope(|s| {});\nthread::Builder::new();\n";
        let found = scan_thread_spawns("x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found[0].msg.contains("thread::scope"));
        assert!(found[1].msg.contains("thread::Builder"));
    }

    #[test]
    fn thread_spawn_allow_marker_suppresses() {
        let same = "std::thread::spawn(f); // xtask-lint: allow(thread-spawn) — watchdog\n";
        assert!(scan_thread_spawns("x.rs", same).is_empty());
        let above = "// xtask-lint: allow(thread-spawn) — watchdog\nstd::thread::spawn(f);\n";
        assert!(scan_thread_spawns("x.rs", above).is_empty());
        let leak = "// xtask-lint: allow(thread-spawn)\nthread::spawn(f);\nthread::spawn(g);\n";
        assert_eq!(scan_thread_spawns("x.rs", leak).len(), 1);
    }

    #[test]
    fn thread_spawn_in_comment_is_ignored() {
        let src = "// the engine used to call thread::spawn per benchmark\nlet x = 1;\n";
        assert!(scan_thread_spawns("x.rs", src).is_empty());
    }

    /// The scheduler module itself is exempt by path: the tree scan must
    /// stay clean even though schedule.rs really does call
    /// `thread::scope`.
    #[test]
    fn scheduler_module_spawns_but_tree_scan_is_clean() {
        let root = workspace_root();
        let src = read(&root, SCHEDULER_MODULE);
        assert!(
            !scan_thread_spawns(SCHEDULER_MODULE, &src).is_empty(),
            "schedule.rs should trip the scanner when not exempted by path"
        );
        // repo_sources_are_clean covers the exemption end-to-end.
    }

    #[test]
    fn hot_path_unwrap_is_flagged() {
        let src = "fn drain(&mut self) {\n    let e = self.heap.pop().unwrap();\n}\n";
        let found = scan_hot_path_unwraps("network.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn unwrap_after_cfg_test_is_ignored() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x().unwrap(); }\n}\n";
        assert!(scan_hot_path_unwraps("network.rs", src).is_empty());
    }

    #[test]
    fn expect_and_commented_unwrap_pass() {
        let src = "let e = heap.pop().expect(\"heap non-empty\"); // not .unwrap()\n";
        assert!(scan_hot_path_unwraps("network.rs", src).is_empty());
    }

    #[test]
    fn run_stats_fields_parse() {
        let src = "pub struct RunStats {\n    /// doc\n    pub packets_injected: u64,\n    pub last_delivery: SimTime,\n}\n";
        assert_eq!(
            run_stats_fields(src),
            vec!["packets_injected".to_string(), "last_delivery".to_string()]
        );
    }

    #[test]
    fn uncovered_field_is_reported() {
        let fields = vec![
            "packets_injected".to_string(),
            "secure_underflows".to_string(),
        ];
        let tests = vec!["assert_eq!(stats.packets_injected, 5);".to_string()];
        assert_eq!(
            uncovered_stats_fields(&fields, &tests),
            vec!["secure_underflows".to_string()]
        );
    }

    /// The real tree must pass every scan — this makes plain `cargo test`
    /// catch violations even when `cargo xtask lint` is not run.
    #[test]
    fn repo_sources_are_clean() {
        let root = workspace_root();
        let findings = scan_tree(&root);
        assert!(
            findings.is_empty(),
            "source scans found violations:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The field parser must stay in sync with the real struct: it parses
    /// the canonical counters the conservation suite asserts on.
    #[test]
    fn real_run_stats_struct_parses() {
        let root = workspace_root();
        let fields = run_stats_fields(&read(&root, "crates/noc/src/stats.rs"));
        for expected in ["packets_injected", "flits_delivered", "secure_underflows"] {
            assert!(
                fields.iter().any(|f| f == expected),
                "RunStats parser lost field {expected}: got {fields:?}"
            );
        }
    }
}
