//! `cargo xtask` — project automation for the DozzNoC reproduction.
//!
//! Four subcommands, one diagnostics engine (`xtask::diag`):
//!
//! - **`lint [--skip-clippy]`** — the fast path. Workspace clippy with
//!   warnings denied, the advisory `clippy::indexing_slicing` sweep
//!   over the simulator crates, and the string scans (`xtask::scans`):
//!   lossy tick casts, `.ticks()` narrowing, thread spawns outside the
//!   scheduler, RunStats test coverage. `--skip-clippy` runs the scans
//!   alone, with no compilation at all.
//! - **`bench [--quick] [--compare BASELINE.json] [--write-baseline]`**
//!   — the perf yardstick. Runs the regime × topology × jobs matrix
//!   through `dozz-repro bench-cell` subprocesses, writes the
//!   versioned `BENCH_matrix.json`, and with `--compare` gates against
//!   a committed baseline (`crates/xtask/bench-baseline.json`) with
//!   per-regime thresholds and a noise floor. See `xtask::bench`.
//! - **`analyze [--json PATH] [--write-baseline]`** — the deep path.
//!   Parses every workspace crate with the vendored `syn` stand-in and
//!   runs the nine semantic passes (`xtask::analyze`): unit
//!   consistency for the sealed time types, panic reachability from
//!   the simulation roots, the `Ordering::Relaxed` audit, `#[must_use]`
//!   on builders, float comparisons in report code, and the four
//!   expression-level dataflow passes that gate the sharded engine —
//!   thread-boundary escape of unsynchronized state, lock/atomic
//!   discipline, determinism taint reachable from the engine roots,
//!   and interprocedural tick/cycle unit flow. Findings are
//!   filtered through justified suppressions and the checked-in
//!   baseline (`crates/xtask/analyze-baseline.json`); any surviving
//!   `deny` or `warn` fails the build. `--json` additionally writes the
//!   machine-readable report (CI uploads it next to the bench
//!   artifacts); `--write-baseline` regenerates the baseline from the
//!   current findings instead of gating on them. The tenth pass,
//!   `sync-facade`, is the static half of the model-check story: it
//!   denies raw `std::sync`/`std::thread`/`std::hint::spin_loop`
//!   outside `crates/sync`, so every synchronization point in the
//!   workspace is one the checker can permute.
//! - **`model-check [--harness NAME] [--replay NAME:TRACE] [--out PATH]
//!   [--skip-tests]`** — the dynamic half. Rebuilds the workspace under
//!   `--cfg dozz_model` (the `dozz_sync` facades swap to the
//!   instrumented runtime), proves the checker still detects the two
//!   seeded defects (modelcheck's test suite), then explores every
//!   registered harness to exhaustion within its bounded budget and
//!   writes the frozen `MODEL_CHECK.json` report. Non-zero exit on any
//!   finding, on non-exhaustion, or on a missed seeded defect.

use std::path::Path;
use std::process::{Command, ExitCode};

use xtask::analyze;
use xtask::bench;
use xtask::diag::{Baseline, Diagnostic, Report, Severity};
use xtask::scans;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let skip_clippy = args.iter().any(|a| a == "--skip-clippy");
            lint(skip_clippy)
        }
        Some("analyze") => {
            let json = args
                .iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1).cloned());
            let write_baseline = args.iter().any(|a| a == "--write-baseline");
            run_analyze(json.as_deref(), write_baseline)
        }
        Some("bench") => bench::run(&args[1..]),
        Some("model-check") => model_check(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask <lint|analyze|bench|model-check> [options]");
            eprintln!();
            eprintln!("  lint                workspace clippy (-D warnings), advisory");
            eprintln!("                      indexing_slicing sweep, and the string scans");
            eprintln!("                      (lossy tick casts, thread spawns, RunStats");
            eprintln!("                      test coverage)");
            eprintln!("    --skip-clippy     string scans only (no compilation)");
            eprintln!();
            eprintln!("  analyze             AST + dataflow passes over every workspace crate:");
            eprintln!("                      unit-consistency, panic-reachability,");
            eprintln!("                      atomic-ordering, must-use-builder,");
            eprintln!("                      float-compare, thread-escape, lock-discipline,");
            eprintln!("                      determinism-taint, unit-flow");
            eprintln!("    --json PATH       also write the JSON report to PATH");
            eprintln!("    --write-baseline  regenerate the grandfathered-findings file");
            eprintln!();
            eprintln!("  bench               perf yardstick: regime × topology × jobs matrix");
            eprintln!("                      through the real engine, written to");
            eprintln!("                      BENCH_matrix.json (versioned schema)");
            eprintln!("    --quick           short cells (CI profile)");
            eprintln!("    --compare PATH    gate against a baseline matrix; non-zero exit");
            eprintln!("                      on regression beyond the per-regime thresholds");
            eprintln!("    --write-baseline  also refresh crates/xtask/bench-baseline.json");
            eprintln!("    --out PATH        matrix output path (default BENCH_matrix.json)");
            eprintln!("    --skip-build      reuse an existing release dozz-repro binary");
            eprintln!();
            eprintln!("  model-check         exhaustive bounded interleaving exploration of the");
            eprintln!("                      dozz_sync harnesses under --cfg dozz_model: runs the");
            eprintln!(
                "                      modelcheck test suite (seeded-defect detection proof)"
            );
            eprintln!("                      then every registered harness, writing the frozen");
            eprintln!("                      MODEL_CHECK.json report; non-zero exit on findings,");
            eprintln!("                      non-exhaustion, or an undetected seeded defect");
            eprintln!("    --skip-tests      explore the harnesses only (no detection proof)");
            eprintln!("    --harness NAME    explore a single harness");
            eprintln!("    --replay NAME:TRACE  re-run one recorded execution byte-for-byte");
            eprintln!("    --out PATH        report path (default MODEL_CHECK.json)");
            ExitCode::FAILURE
        }
    }
}

fn lint(skip_clippy: bool) -> ExitCode {
    let root = scans::workspace_root();
    let mut failed = false;
    let mut report = Report::default();

    if skip_clippy {
        println!("xtask lint: skipping clippy passes (--skip-clippy)");
    } else {
        println!("xtask lint: cargo clippy --workspace --all-targets -- -D warnings");
        if !run_cargo(
            &root,
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ) {
            eprintln!("xtask lint: clippy (deny warnings) FAILED");
            failed = true;
        }

        println!("xtask lint: advisory clippy::indexing_slicing sweep (noc, topology, power)");
        match advisory_indexing_sweep(&root) {
            Ok(count) => {
                if count > 0 {
                    report.findings.push(Diagnostic {
                        rule: "indexing-slicing",
                        severity: Severity::Advisory,
                        file: "crates".into(),
                        line: 0,
                        column: 0,
                        message: format!(
                            "{count} clippy::indexing_slicing warning(s) across noc/topology/\
                             power — bounds are established by construction; new sites \
                             deserve review"
                        ),
                    });
                }
            }
            Err(msg) => {
                eprintln!("xtask lint: advisory sweep failed to compile: {msg}");
                failed = true;
            }
        }
    }

    report.findings.extend(scans::scan_tree(&root));
    print!("{}", report.render_human("xtask lint"));
    if report.failed() || failed {
        ExitCode::FAILURE
    } else {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    }
}

fn run_analyze(json: Option<&str>, write_baseline: bool) -> ExitCode {
    let root = scans::workspace_root();

    if write_baseline {
        // Re-run against an empty baseline so the file captures every
        // current finding that would otherwise gate.
        let ws = analyze::Workspace::load(&root);
        let report = analyze::run_on(&ws, Baseline::default());
        let gating: Vec<_> = report
            .findings
            .into_iter()
            .filter(|d| matches!(d.severity, Severity::Deny | Severity::Warn))
            .collect();
        let path = root.join(analyze::BASELINE_REL);
        if let Err(e) = std::fs::write(&path, Baseline::render(&gating)) {
            eprintln!("xtask analyze: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: wrote {} entries to {}",
            gating.len(),
            analyze::BASELINE_REL
        );
        return ExitCode::SUCCESS;
    }

    let report = match analyze::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_human("xtask analyze"));
    if let Some(path) = json {
        let text = match serde_json::to_string_pretty(&report.to_json("analyze")) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask analyze: serialize report: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(parent) = Path::new(path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("xtask analyze: write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("xtask analyze: JSON report written to {path}");
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        println!("xtask analyze: OK");
        ExitCode::SUCCESS
    }
}

/// `cargo xtask model-check`: build the workspace under
/// `--cfg dozz_model` (facades swap to the instrumented runtime) in its
/// own target directory, prove the checker still detects the seeded
/// defects (the modelcheck test suite), then explore every registered
/// harness to exhaustion and write the frozen JSON report.
fn model_check(args: &[String]) -> ExitCode {
    let root = scans::workspace_root();
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags
        .split_whitespace()
        .any(|f| f == "dozz_model" || f == "--cfg=dozz_model")
    {
        rustflags.push_str(" --cfg dozz_model");
    }
    // A separate target dir: the model build must not evict (or be
    // evicted by) the std build's cache, and nothing std-built may leak
    // into the instrumented run.
    let target_dir = root.join("target/model-check");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let skip_tests = args.iter().any(|a| a == "--skip-tests");

    if !skip_tests {
        println!("xtask model-check: detection proof (cargo test -p dozznoc-modelcheck)");
        let ok = Command::new(&cargo)
            .args(["test", "-q", "-p", "dozznoc-modelcheck"])
            .env("RUSTFLAGS", rustflags.trim())
            .env("CARGO_TARGET_DIR", &target_dir)
            .current_dir(&root)
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !ok {
            eprintln!(
                "xtask model-check: detection proof FAILED — the checker no longer \
                 finds the seeded defects (or a harness regressed)"
            );
            return ExitCode::FAILURE;
        }
    }

    println!("xtask model-check: exploring harnesses");
    let forwarded: Vec<&String> = args.iter().filter(|a| *a != "--skip-tests").collect();
    let status = Command::new(&cargo)
        .args([
            "run",
            "-q",
            "-p",
            "dozznoc-modelcheck",
            "--bin",
            "model-check",
            "--",
        ])
        .args(&forwarded)
        .env("RUSTFLAGS", rustflags.trim())
        .env("CARGO_TARGET_DIR", &target_dir)
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => {
            println!("xtask model-check: OK");
            ExitCode::SUCCESS
        }
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask model-check: cargo run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run `cargo <args>` in `root`, inheriting stdio. True on success.
fn run_cargo(root: &Path, args: &[&str]) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    Command::new(cargo)
        .args(args)
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Advisory pass: surface `clippy::indexing_slicing` in the simulator
/// crates without failing on it. Returns the warning count, or the
/// captured stderr if the compile itself fails.
fn advisory_indexing_sweep(root: &Path) -> Result<usize, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let out = Command::new(cargo)
        .args([
            "clippy",
            "-p",
            "dozznoc-noc",
            "-p",
            "dozznoc-topology",
            "-p",
            "dozznoc-power",
            "--all-targets",
            "--",
            "-W",
            "clippy::indexing_slicing",
        ])
        .current_dir(root)
        .output()
        .map_err(|e| e.to_string())?;
    let stderr = String::from_utf8_lossy(&out.stderr);
    if !out.status.success() {
        return Err(stderr.into_owned());
    }
    Ok(stderr.matches("clippy::indexing_slicing").count())
}
