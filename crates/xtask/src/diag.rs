//! The shared diagnostics engine behind `cargo xtask lint` and
//! `cargo xtask analyze`.
//!
//! Every check — string scan or AST pass — reports through the same
//! [`Diagnostic`] shape: a stable rule ID, a `file:line:column` span, a
//! severity, and a human message. On top of that the engine provides:
//!
//! - **Suppressions**: `// xtask-analyze: allow(<rule-id>) — <why>` on
//!   the finding's line or the line directly above. The marker *must*
//!   name the rule and *must* carry a justification after the closing
//!   paren; a bare marker suppresses nothing and is itself reported
//!   (rule `suppression-hygiene`).
//! - **Baseline**: a checked-in JSON file of grandfathered findings
//!   keyed on (rule, file, message) — line numbers drift too easily to
//!   key on. Baselined findings are counted but do not gate.
//! - **Gate**: `deny` and `warn` findings fail the build; `advisory`
//!   findings are informational only.
//! - **Rendering**: one human format and one JSON report format shared
//!   by both subcommands (CI uploads the JSON next to the bench
//!   artifacts).

use std::fmt;
use std::fs;
use std::path::Path;

use serde_json::{Number, Value};

/// Marker prefix for analyzer suppressions. Deliberately verbose so it
/// cannot appear by accident.
pub const ANALYZE_ALLOW: &str = "xtask-analyze: allow(";

/// One standing, file-scoped waiver: `file` is exempt from `rule`, with
/// the justification recorded here instead of scattered across the
/// checks. This is the single source of truth consumed by both the
/// `xtask lint` string scans and the `xtask analyze` passes — the two
/// tools can no longer disagree about which module is allowed to do
/// what (`tests::lint_and_analyze_exemptions_agree` proves it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemption {
    /// Rule ID the waiver applies to.
    pub rule: &'static str,
    /// Workspace-root-relative path, forward slashes.
    pub file: &'static str,
    /// Why the waiver is justified — rendered into diagnostics so the
    /// argument travels with the finding.
    pub why: &'static str,
}

/// Every standing file-scoped exemption in the workspace. Keep this
/// list short: each entry is a module whose *design* justifies the
/// waiver, not a grandfathered finding (those belong in the baseline).
pub const EXEMPTIONS: [Exemption; 6] = [
    Exemption {
        rule: "thread-spawn",
        file: "crates/sync/src/model.rs",
        why: "the dozz_sync facade is where every workspace thread is actually \
              created: its scope/spawn wrappers register each thread with the \
              model-check runtime before delegating to std",
    },
    Exemption {
        rule: "thread-spawn",
        file: "crates/modelcheck/src/explore.rs",
        why: "the DFS explorer runs each execution's root body on a fresh OS \
              thread below the facade; routing it through dozz_sync would make \
              the checker schedule itself",
    },
    Exemption {
        rule: "sync-facade",
        file: "crates/modelcheck/src/runtime.rs",
        why: "the model runtime is the instrumentation layer the facade calls \
              into; its state mutex/condvar must be real std primitives or \
              every facade operation would recurse",
    },
    Exemption {
        rule: "sync-facade",
        file: "crates/modelcheck/src/explore.rs",
        why: "the explorer's runtime slot and serialization lock sit below the \
              facade for the same reason as the runtime itself",
    },
    Exemption {
        rule: "atomic-ordering",
        file: "crates/core/src/schedule.rs",
        why: "the injector cursor is a pure monotonic ticket; the module documents why \
              relaxed ordering is sufficient (lock-discipline still pair-checks it)",
    },
    Exemption {
        rule: "determinism-taint",
        file: "crates/core/src/measure.rs",
        why: "the measurement region reads wall/CPU clocks by design; readings flow \
              into reports only, never back into simulation state",
    },
];

/// Files exempt from `rule`, in table order.
pub fn exempt_files(rule: &str) -> impl Iterator<Item = &'static str> + '_ {
    EXEMPTIONS
        .iter()
        .filter(move |e| e.rule == rule)
        .map(|e| e.file)
}

/// True when `file` carries a standing waiver for `rule`.
pub fn is_exempt(rule: &str, file: &str) -> bool {
    exempt_files(rule).any(|f| f == file)
}

/// How a finding gates the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: reported and counted, never fails.
    Advisory,
    /// Fails the gate; suitable for rules with rare, justified escapes.
    Warn,
    /// Fails the gate; the rule should hold unconditionally.
    Deny,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
            Severity::Advisory => "advisory",
        }
    }
}

/// One finding from any check.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule ID (`unit-consistency`, `lossy-cast`, …).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-root-relative path, forward slashes.
    pub file: String,
    /// 1-based; 0 when the finding is file- or workspace-scoped.
    pub line: usize,
    /// 1-based; 0 when unknown.
    pub column: usize,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {}",
            self.file,
            self.line,
            self.column,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

/// The outcome of running a set of checks: surviving findings plus the
/// counts of what the engine filtered out.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Diagnostic>,
    pub suppressed: usize,
    pub baselined: usize,
    /// Per-pass wall time, `(pass id, milliseconds)`, in execution
    /// order. Surfaced in the JSON report so slow passes show up in CI
    /// artifacts; excluded from equality/determinism concerns (the
    /// findings themselves are what must be byte-stable).
    pub timings: Vec<(String, f64)>,
}

impl Report {
    /// True when the gate fails: any surviving `deny` or `warn` finding.
    pub fn failed(&self) -> bool {
        self.findings
            .iter()
            .any(|d| matches!(d.severity, Severity::Deny | Severity::Warn))
    }

    /// Human rendering: one line per finding plus a summary.
    pub fn render_human(&self, tool: &str) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let (deny, warn, advisory) = self.counts();
        out.push_str(&format!(
            "{tool}: {deny} deny, {warn} warn, {advisory} advisory \
             ({} suppressed, {} baselined)\n",
            self.suppressed, self.baselined
        ));
        out
    }

    fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.findings {
            match d.severity {
                Severity::Deny => c.0 += 1,
                Severity::Warn => c.1 += 1,
                Severity::Advisory => c.2 += 1,
            }
        }
        c
    }

    /// JSON report shared by `lint` and `analyze` (and uploaded by CI).
    pub fn to_json(&self, tool: &str) -> Value {
        let findings = self
            .findings
            .iter()
            .map(|d| {
                Value::Object(vec![
                    ("rule".into(), Value::String(d.rule.into())),
                    ("severity".into(), Value::String(d.severity.as_str().into())),
                    ("file".into(), Value::String(d.file.clone())),
                    ("line".into(), Value::Number(Number::PosInt(d.line as u64))),
                    (
                        "column".into(),
                        Value::Number(Number::PosInt(d.column as u64)),
                    ),
                    ("message".into(), Value::String(d.message.clone())),
                ])
            })
            .collect();
        let (deny, warn, advisory) = self.counts();
        let passes = self
            .timings
            .iter()
            .map(|(id, ms)| {
                Value::Object(vec![
                    ("id".into(), Value::String(id.clone())),
                    ("wall_ms".into(), Value::Number(Number::Float(*ms))),
                ])
            })
            .collect();
        Value::Object(vec![
            ("version".into(), Value::Number(Number::PosInt(2))),
            ("tool".into(), Value::String(tool.into())),
            ("findings".into(), Value::Array(findings)),
            ("passes".into(), Value::Array(passes)),
            (
                "summary".into(),
                Value::Object(vec![
                    ("deny".into(), Value::Number(Number::PosInt(deny as u64))),
                    ("warn".into(), Value::Number(Number::PosInt(warn as u64))),
                    (
                        "advisory".into(),
                        Value::Number(Number::PosInt(advisory as u64)),
                    ),
                    (
                        "suppressed".into(),
                        Value::Number(Number::PosInt(self.suppressed as u64)),
                    ),
                    (
                        "baselined".into(),
                        Value::Number(Number::PosInt(self.baselined as u64)),
                    ),
                ]),
            ),
        ])
    }
}

/// One suppression marker found in a source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Suppression {
    /// 1-based line the marker sits on.
    pub line: usize,
    /// The rule the marker names.
    pub rule: String,
    /// True when text follows the closing paren (the required "why").
    pub justified: bool,
}

/// Scan one file's source for `xtask-analyze: allow(...)` markers.
pub fn suppressions(src: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find(ANALYZE_ALLOW) {
            let after = &rest[at + ANALYZE_ALLOW.len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            let justified = !after[close + 1..].trim().is_empty();
            out.push(Suppression {
                line: idx + 1,
                rule,
                justified,
            });
            rest = &after[close + 1..];
        }
    }
    out
}

/// Apply suppression markers to `findings`. A justified marker for rule
/// R suppresses R-findings on its own line and the line directly below.
/// Markers that are unjustified or name a rule no check ever emits are
/// reported as `suppression-hygiene` findings via `known_rules`.
pub fn apply_suppressions(
    findings: Vec<Diagnostic>,
    sources: &dyn Fn(&str) -> Option<String>,
    known_rules: &[&'static str],
    report: &mut Report,
) -> Vec<Diagnostic> {
    let mut by_file: std::collections::BTreeMap<String, Vec<Suppression>> = Default::default();
    let mut files: Vec<String> = findings.iter().map(|d| d.file.clone()).collect();
    files.sort();
    files.dedup();
    for f in &files {
        if let Some(src) = sources(f) {
            by_file.insert(f.clone(), suppressions(&src));
        }
    }

    let mut kept = Vec::new();
    for d in findings {
        let sup = by_file.get(&d.file).map(Vec::as_slice).unwrap_or(&[]);
        let hit = sup
            .iter()
            .any(|s| s.justified && s.rule == d.rule && (s.line == d.line || s.line + 1 == d.line));
        if hit {
            report.suppressed += 1;
        } else {
            kept.push(d);
        }
    }

    // Hygiene: every marker must be justified and must name a real rule.
    for (file, sups) in &by_file {
        for s in sups {
            if !s.justified {
                kept.push(Diagnostic {
                    rule: "suppression-hygiene",
                    severity: Severity::Warn,
                    file: file.clone(),
                    line: s.line,
                    column: 1,
                    message: format!(
                        "suppression for `{}` has no justification — add one after the \
                         closing paren (e.g. `… allow({}) — <why>`); unjustified markers \
                         suppress nothing",
                        s.rule, s.rule
                    ),
                });
            } else if !known_rules.contains(&s.rule.as_str()) {
                kept.push(Diagnostic {
                    rule: "suppression-hygiene",
                    severity: Severity::Warn,
                    file: file.clone(),
                    line: s.line,
                    column: 1,
                    message: format!("suppression names unknown rule `{}`", s.rule),
                });
            }
        }
    }
    kept
}

/// A checked-in baseline of grandfathered findings.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Remaining (rule, file, message) entries; matching consumes one.
    entries: Vec<(String, String, String)>,
}

impl Baseline {
    /// Load from a JSON file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let Ok(text) = fs::read_to_string(path) else {
            return Ok(Baseline::default());
        };
        let v: Value =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e:?}", path.display()))?;
        let mut entries = Vec::new();
        if let Some(arr) = v.get("findings").and_then(Value::as_array) {
            for e in arr {
                let field = |k: &str| {
                    e.get(k)
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string()
                };
                entries.push((field("rule"), field("file"), field("message")));
            }
        }
        Ok(Baseline { entries })
    }

    /// Partition `findings` into surviving and baselined, consuming one
    /// baseline entry per match so a fixed finding cannot mask a new one.
    pub fn filter(&mut self, findings: Vec<Diagnostic>, report: &mut Report) -> Vec<Diagnostic> {
        let mut kept = Vec::new();
        for d in findings {
            let hit = self
                .entries
                .iter()
                .position(|(r, f, m)| r == d.rule && f == &d.file && m == &d.message);
            match hit {
                Some(i) => {
                    self.entries.swap_remove(i);
                    report.baselined += 1;
                }
                None => kept.push(d),
            }
        }
        kept
    }

    /// Serialize findings as a fresh baseline file.
    pub fn render(findings: &[Diagnostic]) -> String {
        let arr = findings
            .iter()
            .map(|d| {
                Value::Object(vec![
                    ("rule".into(), Value::String(d.rule.into())),
                    ("file".into(), Value::String(d.file.clone())),
                    ("message".into(), Value::String(d.message.clone())),
                ])
            })
            .collect();
        let v = Value::Object(vec![
            ("version".into(), Value::Number(Number::PosInt(1))),
            ("findings".into(), Value::Array(arr)),
        ]);
        serde_json::to_string_pretty(&v).unwrap_or_else(|_| "{}".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: usize, msg: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            file: file.into(),
            line,
            column: 1,
            message: msg.into(),
        }
    }

    #[test]
    fn suppression_parses_rule_and_justification() {
        let src = "let x = 1; // xtask-analyze: allow(unit-consistency) — raw tick seed\n\
                   // xtask-analyze: allow(float-compare)\n";
        let s = suppressions(src);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].rule, "unit-consistency");
        assert!(s[0].justified);
        assert_eq!(s[1].rule, "float-compare");
        assert!(!s[1].justified);
    }

    #[test]
    fn justified_marker_suppresses_same_and_next_line() {
        let src = "// xtask-analyze: allow(unit-consistency) — seed\nlet x = t.0;\n";
        let findings = vec![diag("unit-consistency", "a.rs", 2, "raw field access")];
        let mut report = Report::default();
        let kept = apply_suppressions(
            findings,
            &|f| (f == "a.rs").then(|| src.to_string()),
            &["unit-consistency"],
            &mut report,
        );
        assert!(kept.is_empty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn bare_marker_does_not_suppress_and_is_reported() {
        let src = "let x = t.0; // xtask-analyze: allow(unit-consistency)\n";
        let findings = vec![diag("unit-consistency", "a.rs", 1, "raw field access")];
        let mut report = Report::default();
        let kept = apply_suppressions(
            findings,
            &|f| (f == "a.rs").then(|| src.to_string()),
            &["unit-consistency"],
            &mut report,
        );
        assert_eq!(kept.len(), 2, "original finding + hygiene finding");
        assert!(kept.iter().any(|d| d.rule == "suppression-hygiene"));
        assert_eq!(report.suppressed, 0);
    }

    #[test]
    fn marker_for_wrong_rule_does_not_suppress() {
        let src = "// xtask-analyze: allow(float-compare) — wrong rule\nlet x = t.0;\n";
        let findings = vec![diag("unit-consistency", "a.rs", 2, "raw field access")];
        let mut report = Report::default();
        let kept = apply_suppressions(
            findings,
            &|f| (f == "a.rs").then(|| src.to_string()),
            &["unit-consistency", "float-compare"],
            &mut report,
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "unit-consistency");
    }

    #[test]
    fn unknown_rule_marker_is_flagged() {
        let src = "// xtask-analyze: allow(no-such-rule) — because\nlet x = 1;\n";
        let findings = vec![diag("unit-consistency", "a.rs", 99, "elsewhere")];
        let mut report = Report::default();
        let kept = apply_suppressions(
            findings,
            &|f| (f == "a.rs").then(|| src.to_string()),
            &["unit-consistency"],
            &mut report,
        );
        assert!(kept
            .iter()
            .any(|d| d.rule == "suppression-hygiene" && d.message.contains("no-such-rule")));
    }

    #[test]
    fn baseline_round_trip_and_consumption() {
        let findings = vec![
            diag("unit-consistency", "a.rs", 5, "m1"),
            diag("float-compare", "b.rs", 9, "m2"),
        ];
        let text = Baseline::render(&findings);
        let dir = std::env::temp_dir().join("xtask-baseline-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("baseline.json");
        std::fs::write(&path, &text).expect("write baseline");

        let mut bl = Baseline::load(&path).expect("load baseline");
        let mut report = Report::default();
        // Two occurrences of the same finding: the single baseline entry
        // absorbs one, the duplicate survives.
        let incoming = vec![
            diag("unit-consistency", "a.rs", 5, "m1"),
            diag("unit-consistency", "a.rs", 7, "m1"),
            diag("float-compare", "b.rs", 9, "m2"),
        ];
        let kept = bl.filter(incoming, &mut report);
        assert_eq!(report.baselined, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 7);
    }

    #[test]
    fn missing_baseline_is_empty() {
        let bl = Baseline::load(Path::new("/nonexistent/baseline.json")).expect("empty");
        assert!(bl.entries.is_empty());
    }

    #[test]
    fn gate_fails_on_warn_but_not_advisory() {
        let mut r = Report::default();
        r.findings.push(Diagnostic {
            severity: Severity::Advisory,
            ..diag("indexing", "a.rs", 1, "x")
        });
        assert!(!r.failed());
        r.findings.push(Diagnostic {
            severity: Severity::Warn,
            ..diag("must-use-builder", "a.rs", 2, "y")
        });
        assert!(r.failed());
    }

    #[test]
    fn lint_and_analyze_exemptions_agree() {
        // Exactly two modules may create raw OS threads: the facade's
        // own scope/spawn wrappers and the model-check explorer that
        // sits below them. The scheduler and the sharded engine lost
        // their waivers when they migrated onto `dozz_sync` — their
        // facade-qualified spawns are recognized by the scan itself,
        // so a raw `std::thread::spawn` creeping back into either
        // module now FAILS instead of riding the old exemption.
        let spawn: Vec<_> = exempt_files("thread-spawn").collect();
        assert_eq!(
            spawn,
            vec![
                "crates/sync/src/model.rs",
                "crates/modelcheck/src/explore.rs"
            ]
        );
        assert!(!is_exempt("thread-spawn", "crates/core/src/schedule.rs"));
        assert!(!is_exempt("thread-spawn", "crates/noc/src/shard.rs"));

        // The analyze-side coverage gate exempts only the model-check
        // internals that *implement* the instrumentation.
        let facade: Vec<_> = exempt_files("sync-facade").collect();
        assert_eq!(
            facade,
            vec![
                "crates/modelcheck/src/runtime.rs",
                "crates/modelcheck/src/explore.rs"
            ]
        );
        assert!(!is_exempt("sync-facade", "crates/noc/src/shard.rs"));

        // The scheduler keeps its relaxed-ordering waiver; the sharded
        // engine's barrier must stay Acquire/Release, so it
        // deliberately has NO atomic-ordering entry and the analyze
        // pass still patrols it.
        let atomics: Vec<_> = exempt_files("atomic-ordering").collect();
        assert_eq!(atomics, vec!["crates/core/src/schedule.rs"]);
        assert!(!is_exempt("atomic-ordering", "crates/noc/src/shard.rs"));
        assert!(!is_exempt("thread-spawn", "crates/noc/src/network.rs"));
    }

    #[test]
    fn exempt_files_exist_and_justify() {
        let root = crate::scans::workspace_root();
        for e in EXEMPTIONS {
            assert!(
                root.join(e.file).is_file(),
                "exemption for `{}` names missing file {}",
                e.rule,
                e.file
            );
            assert!(
                e.why.len() > 20,
                "exemption for `{}`/{} needs a real justification",
                e.rule,
                e.file
            );
        }
    }

    #[test]
    fn json_report_carries_pass_timings() {
        let mut r = Report::default();
        r.timings.push(("determinism-taint".into(), 12.5));
        let v = r.to_json("analyze");
        let passes = v.get("passes").and_then(Value::as_array).expect("passes");
        assert_eq!(passes.len(), 1);
        assert_eq!(
            passes[0].get("id").and_then(Value::as_str),
            Some("determinism-taint")
        );
        assert!(passes[0].get("wall_ms").is_some());
    }

    #[test]
    fn json_report_shape() {
        let mut r = Report::default();
        r.findings.push(diag("unit-consistency", "a.rs", 5, "m"));
        let v = r.to_json("analyze");
        assert_eq!(v.get("tool").and_then(Value::as_str), Some("analyze"));
        let f = v.get("findings").and_then(Value::as_array).expect("array");
        assert_eq!(f.len(), 1);
        assert_eq!(
            f[0].get("rule").and_then(Value::as_str),
            Some("unit-consistency")
        );
        let s = v.get("summary").expect("summary");
        assert_eq!(s.get("deny").and_then(Value::as_u64), Some(1));
    }
}
