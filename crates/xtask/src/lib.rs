//! Project automation library behind the `cargo xtask` binary.
//!
//! Three layers, bottom-up:
//!
//! - [`diag`] — the shared diagnostics engine: one [`diag::Diagnostic`]
//!   shape, `xtask-analyze: allow(..)` suppressions with mandatory
//!   justifications, the checked-in baseline, and the deny/warn exit
//!   gate with human + JSON rendering.
//! - [`scans`] — the no-parse fast path: string scans (lossy casts,
//!   tick narrowing, thread spawns, RunStats coverage) used by
//!   `cargo xtask lint`.
//! - [`analyze`] — the AST path: the vendored-`syn` workspace loader
//!   and the five semantic passes used by `cargo xtask analyze`.
//! - [`bench`] — the perf yardstick: the `cargo xtask bench` regime
//!   matrix, its frozen JSON schema, and the `--compare` regression
//!   gate. Engine work runs in `dozz-repro bench-cell` subprocesses so
//!   xtask itself stays near-dependency-free.
//!
//! The split into a library exists so the fixture tests
//! (`tests/analyze.rs`, `tests/bench_gate.rs`) can run the passes and
//! the gate against in-memory inputs without shelling out to the
//! binary.

pub mod analyze;
pub mod bench;
pub mod diag;
pub mod scans;
