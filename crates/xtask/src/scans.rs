//! The no-parse fast path: string scans over the source tree.
//!
//! These checks predate the AST analyzer (`crate::analyze`) and stay
//! string-level on purpose — they need no compilation and no parsing,
//! so `cargo xtask lint --skip-clippy` gives sub-second feedback. They
//! report through the same [`Diagnostic`] shape as the analyzer, so
//! `lint` and `analyze` share one report format and one exit-code gate.
//!
//! Rules (all `deny`):
//! - `lossy-cast` — no lossy `as` casts in the tick/mode arithmetic
//!   (`types/src/time.rs`, `types/src/mode.rs`); the single authorized
//!   float→tick conversion carries an `xtask-lint: allow(lossy-cast)`
//!   marker,
//! - `tick-narrowing` — no narrowing casts of `.ticks()` anywhere (a
//!   u64 tick count squeezed into `u32` truncates after ~4 simulated
//!   seconds at 18 GHz),
//! - `thread-spawn` — threads are created only through the `dozz_sync`
//!   facade (which registers them with the model-check runtime), so the
//!   determinism suite and `cargo xtask model-check` vouch for every
//!   parallel caller at once,
//! - `stats-coverage` — every public `RunStats` counter is referenced
//!   by at least one integration test.
//!
//! The old hot-path-unwrap string scan was superseded by the analyzer's
//! `panic-reachability` pass, which follows the call graph from
//! `Network::run` instead of trusting a hard-coded module list.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Severity};

/// Marker that exempts a line (or the line directly below it) from the
/// lossy-cast scan. Kept deliberately verbose so it cannot appear by
/// accident.
pub const LOSSY_CAST_ALLOW: &str = "xtask-lint: allow(lossy-cast)";

/// Marker that exempts a line (or the line directly below it) from the
/// thread-spawn scan.
pub const THREAD_SPAWN_ALLOW: &str = "xtask-lint: allow(thread-spawn)";

/// The work-stealing cell scheduler — the conventional fan-out path the
/// spawn scan's message points callers at. The scheduler itself spawns
/// through the `dozz_sync` facade (which the scan recognizes by
/// qualification), so it no longer carries a waiver; the remaining
/// raw-spawn waivers live in the shared exemption table
/// ([`crate::diag::EXEMPTIONS`]) so this scan and the analyze passes
/// cannot disagree.
pub const SCHEDULER_MODULE: &str = "crates/core/src/schedule.rs";

/// Facade qualification: a spawn form preceded by this prefix goes
/// through `dozz_sync`, which registers the thread with the model-check
/// runtime — that is the governed path, not an escape from it.
pub const FACADE_QUALIFIER: &str = "dozz_sync::";

/// Thread-creation forms the spawn scan rejects outside the scheduler.
const THREAD_SPAWN_FORMS: [&str; 3] = ["thread::spawn", "thread::scope", "thread::Builder"];

/// Cast targets considered lossy in tick/mode arithmetic: every integer
/// target (truncating from float, narrowing from wider ints) plus `f32`
/// (drops precision from `u64`). `f64` stays allowed — the reporting
/// helpers convert tick counts to nanoseconds as their last step.
const LOSSY_TARGETS: [&str; 13] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// Targets narrower than the `u64` returned by `.ticks()`.
const NARROW_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Workspace root, resolved relative to this crate (crates/xtask → repo).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// All source scans over the real tree.
pub fn scan_tree(root: &Path) -> Vec<Diagnostic> {
    let mut findings = Vec::new();

    for rel in ["crates/types/src/time.rs", "crates/types/src/mode.rs"] {
        findings.extend(scan_lossy_casts(rel, &read(root, rel)));
    }

    for rel in rust_sources(root) {
        let src = read(root, &rel);
        findings.extend(scan_tick_narrowing(&rel, &src));
        if !crate::diag::is_exempt("thread-spawn", &rel) {
            findings.extend(scan_thread_spawns(&rel, &src));
        }
    }

    let stats_rel = "crates/noc/src/stats.rs";
    let fields = run_stats_fields(&read(root, stats_rel));
    if fields.is_empty() {
        findings.push(deny(
            "stats-coverage",
            stats_rel,
            1,
            "could not parse any RunStats fields — scanner out of sync with the struct".into(),
        ));
    }
    let tests: Vec<String> = test_sources(root)
        .iter()
        .map(|rel| read(root, rel))
        .collect();
    for field in uncovered_stats_fields(&fields, &tests) {
        findings.push(deny(
            "stats-coverage",
            stats_rel,
            1,
            format!(
                "RunStats.{field} is not referenced by any integration test \
                 (tests/*.rs, crates/noc/tests/*.rs) — add a conservation or \
                 invariant assertion for it"
            ),
        ));
    }

    findings
}

pub fn read(root: &Path, rel: &str) -> String {
    let path = root.join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Every `.rs` file under `crates/*/src` and the root `src/`, as
/// root-relative forward-slash paths.
pub fn rust_sources(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            // xtask itself is excluded: its tests seed deliberately
            // forbidden code into the scanners.
            if e.file_name() != "xtask" {
                dirs.push(e.path().join("src"));
            }
        }
    }
    while let Some(dir) = dirs.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                dirs.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// Integration-test files whose contents count as RunStats coverage.
pub fn test_sources(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for dir in ["tests", "crates/noc/tests"] {
        let Ok(entries) = fs::read_dir(root.join(dir)) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

fn deny(rule: &'static str, file: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Deny,
        file: file.to_string(),
        line,
        column: 0,
        message,
    }
}

/// Drop a trailing `// …` line comment. Good enough for this codebase:
/// the scanned files do not put `//` inside string literals.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// The identifier starting at `code[at..]`, if any.
fn ident_at(code: &str, at: usize) -> &str {
    let rest = &code[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    &rest[..end]
}

/// Cast targets of every `<expr> as <ty>` on a comment-stripped line.
fn cast_targets(code: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = code[from..].find(" as ") {
        let at = from + i + 4;
        let ty = ident_at(code, at);
        if !ty.is_empty() {
            out.push(ty);
        }
        from = at;
    }
    out
}

/// `lossy-cast`: no lossy `as` casts in the tick/mode arithmetic, except
/// on lines carrying (or directly below) the allow marker.
pub fn scan_lossy_casts(file: &str, src: &str) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut prev_allows = false;
    for (idx, raw) in src.lines().enumerate() {
        let allows = raw.contains(LOSSY_CAST_ALLOW);
        if !allows && !prev_allows {
            let code = strip_line_comment(raw);
            for ty in cast_targets(code) {
                if LOSSY_TARGETS.contains(&ty) {
                    findings.push(deny(
                        "lossy-cast",
                        file,
                        idx + 1,
                        format!(
                            "lossy `as {ty}` cast in tick arithmetic — use the checked \
                             constructors or mark with `{LOSSY_CAST_ALLOW}`"
                        ),
                    ));
                }
            }
        }
        prev_allows = allows;
    }
    findings
}

/// `tick-narrowing`: `.ticks()` (a `u64` count of 1/18 ns base ticks)
/// must never be narrowed — `u32` overflows after ~4 simulated seconds.
pub fn scan_tick_narrowing(file: &str, src: &str) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let code = strip_line_comment(raw);
        let mut from = 0;
        while let Some(i) = code[from..].find(".ticks() as ") {
            let at = from + i + ".ticks() as ".len();
            let ty = ident_at(code, at);
            if NARROW_TARGETS.contains(&ty) {
                findings.push(deny(
                    "tick-narrowing",
                    file,
                    idx + 1,
                    format!("`.ticks() as {ty}` narrows a u64 tick count — keep tick math in u64"),
                ));
            }
            from = at;
        }
    }
    findings
}

/// `thread-spawn`: raw `thread::spawn`, `thread::scope` or
/// `thread::Builder` bypasses both the injector/indexed-slot machinery
/// that keeps parallel campaign runs bit-identical to sequential ones
/// AND the model-check runtime's thread registration. Spawns qualified
/// with [`FACADE_QUALIFIER`] (`dozz_sync::thread::scope(..)`) are the
/// governed path and pass; anything else must route through
/// `dozznoc_core::schedule::run_indexed` / the facade, or carry the
/// allow marker (same line or the line directly above).
pub fn scan_thread_spawns(file: &str, src: &str) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut prev_allows = false;
    for (idx, raw) in src.lines().enumerate() {
        let allows = raw.contains(THREAD_SPAWN_ALLOW);
        if !allows && !prev_allows {
            let code = strip_line_comment(raw);
            for form in THREAD_SPAWN_FORMS {
                let mut from = 0;
                while let Some(i) = code[from..].find(form) {
                    let at = from + i;
                    from = at + form.len();
                    if code[..at].ends_with(FACADE_QUALIFIER) {
                        continue;
                    }
                    findings.push(deny(
                        "thread-spawn",
                        file,
                        idx + 1,
                        format!(
                            "raw `{form}` — spawn through `{FACADE_QUALIFIER}thread` (and \
                             fan work out via dozznoc_core::schedule::run_indexed in \
                             {SCHEDULER_MODULE}) so model-check and the determinism tests \
                             cover it, or mark with `{THREAD_SPAWN_ALLOW}`"
                        ),
                    ));
                }
            }
        }
        prev_allows = allows;
    }
    findings
}

/// Public field names of `RunStats`, parsed from its source.
pub fn run_stats_fields(src: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut in_struct = false;
    for line in src.lines() {
        if line.starts_with("pub struct RunStats") {
            in_struct = true;
            continue;
        }
        if in_struct {
            if line.starts_with('}') {
                break;
            }
            if let Some(rest) = line.trim_start().strip_prefix("pub ") {
                if let Some((name, _)) = rest.split_once(':') {
                    fields.push(name.trim().to_string());
                }
            }
        }
    }
    fields
}

/// `stats-coverage`: fields not mentioned in any of the given test
/// sources.
pub fn uncovered_stats_fields(fields: &[String], test_sources: &[String]) -> Vec<String> {
    fields
        .iter()
        .filter(|f| !test_sources.iter().any(|src| src.contains(f.as_str())))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each scan is demonstrated against seeded *forbidden* code — the
    // acceptance test for the linter is that it actually fails things.

    #[test]
    fn lossy_cast_is_flagged() {
        let src = "fn f(t: f64) -> u64 {\n    t as u64\n}\n";
        let found = scan_lossy_casts("time.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        assert_eq!(found[0].rule, "lossy-cast");
        assert!(found[0].message.contains("as u64"));
    }

    #[test]
    fn widening_and_f64_casts_are_not_lossy() {
        let src = "let ns = ticks as f64 / TICKS_PER_NS as f64;\n";
        assert!(scan_lossy_casts("time.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_on_same_line_suppresses() {
        let src = "    t as u64 // xtask-lint: allow(lossy-cast) — saturating\n";
        assert!(scan_lossy_casts("time.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_on_previous_line_suppresses() {
        let src = "// xtask-lint: allow(lossy-cast) — saturating by construction\nt as u64\n";
        assert!(scan_lossy_casts("time.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_does_not_leak_past_one_line() {
        let src = "// xtask-lint: allow(lossy-cast)\nt as u64\nu as u32\n";
        let found = scan_lossy_casts("time.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn cast_in_comment_is_ignored() {
        let src = "// converting ticks as u64 would truncate here\nlet x = 1;\n";
        assert!(scan_lossy_casts("time.rs", src).is_empty());
    }

    #[test]
    fn tick_narrowing_is_flagged() {
        let src = "let c = (span.ticks() as u32).min(7);\n";
        let found = scan_tick_narrowing("x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "tick-narrowing");
        assert!(found[0].message.contains("as u32"));
    }

    #[test]
    fn tick_to_f64_and_unrelated_casts_pass() {
        // The second line is the histogram's leading_zeros cast that a
        // naive "ticks + as" scan would false-positive on.
        let src = "let f = span.ticks() as f64;\nlet bucket = v.leading_zeros() as usize;\n";
        assert!(scan_tick_narrowing("x.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_is_flagged() {
        let src = "fn fan_out() {\n    let h = std::thread::spawn(|| work());\n}\n";
        let found = scan_thread_spawns("crates/core/src/experiment.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        assert_eq!(found[0].rule, "thread-spawn");
        assert!(found[0].message.contains("thread::spawn"));
        assert!(found[0].message.contains("schedule.rs"));
    }

    #[test]
    fn thread_scope_and_builder_are_flagged() {
        let src = "std::thread::scope(|s| {});\nthread::Builder::new();\n";
        let found = scan_thread_spawns("x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found[0].message.contains("thread::scope"));
        assert!(found[1].message.contains("thread::Builder"));
    }

    #[test]
    fn thread_spawn_allow_marker_suppresses() {
        let same = "std::thread::spawn(f); // xtask-lint: allow(thread-spawn) — watchdog\n";
        assert!(scan_thread_spawns("x.rs", same).is_empty());
        let above = "// xtask-lint: allow(thread-spawn) — watchdog\nstd::thread::spawn(f);\n";
        assert!(scan_thread_spawns("x.rs", above).is_empty());
        let leak = "// xtask-lint: allow(thread-spawn)\nthread::spawn(f);\nthread::spawn(g);\n";
        assert_eq!(scan_thread_spawns("x.rs", leak).len(), 1);
    }

    #[test]
    fn thread_spawn_in_comment_is_ignored() {
        let src = "// the engine used to call thread::spawn per benchmark\nlet x = 1;\n";
        assert!(scan_thread_spawns("x.rs", src).is_empty());
    }

    /// Facade-qualified spawns are the governed path: they pass without
    /// any exemption, while the same form unqualified is flagged.
    #[test]
    fn facade_qualified_spawn_passes_raw_spawn_fails() {
        let facade = "dozz_sync::thread::scope(|s| { s.spawn(|| work()); });\n";
        assert!(scan_thread_spawns("x.rs", facade).is_empty());
        let raw = "std::thread::scope(|s| { s.spawn(|| work()); });\n";
        let found = scan_thread_spawns("x.rs", raw);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("dozz_sync"));
    }

    /// The scheduler module spawns only through the facade now — no
    /// path exemption backs it, so a raw spawn creeping in is caught.
    #[test]
    fn scheduler_module_spawns_but_tree_scan_is_clean() {
        let root = workspace_root();
        let src = read(&root, SCHEDULER_MODULE);
        assert!(
            src.contains("dozz_sync::thread::scope"),
            "schedule.rs is expected to fan out through the facade"
        );
        assert!(
            scan_thread_spawns(SCHEDULER_MODULE, &src).is_empty(),
            "facade-qualified spawns need no exemption"
        );
        assert!(
            !crate::diag::is_exempt("thread-spawn", SCHEDULER_MODULE),
            "the old path exemption must stay dead — a raw spawn in the \
             scheduler now fails the scan"
        );
        // repo_sources_are_clean covers the whole tree end-to-end.
    }

    #[test]
    fn run_stats_fields_parse() {
        let src = "pub struct RunStats {\n    /// doc\n    pub packets_injected: u64,\n    pub last_delivery: SimTime,\n}\n";
        assert_eq!(
            run_stats_fields(src),
            vec!["packets_injected".to_string(), "last_delivery".to_string()]
        );
    }

    #[test]
    fn uncovered_field_is_reported() {
        let fields = vec![
            "packets_injected".to_string(),
            "secure_underflows".to_string(),
        ];
        let tests = vec!["assert_eq!(stats.packets_injected, 5);".to_string()];
        assert_eq!(
            uncovered_stats_fields(&fields, &tests),
            vec!["secure_underflows".to_string()]
        );
    }

    /// The real tree must pass every scan — this makes plain `cargo test`
    /// catch violations even when `cargo xtask lint` is not run.
    #[test]
    fn repo_sources_are_clean() {
        let root = workspace_root();
        let findings = scan_tree(&root);
        assert!(
            findings.is_empty(),
            "source scans found violations:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The field parser must stay in sync with the real struct: it parses
    /// the canonical counters the conservation suite asserts on.
    #[test]
    fn real_run_stats_struct_parses() {
        let root = workspace_root();
        let fields = run_stats_fields(&read(&root, "crates/noc/src/stats.rs"));
        for expected in ["packets_injected", "flits_delivered", "secure_underflows"] {
            assert!(
                fields.iter().any(|f| f == expected),
                "RunStats parser lost field {expected}: got {fields:?}"
            );
        }
    }
}
