//! The `--compare` regression gate.
//!
//! Pure matrix-vs-matrix logic (no I/O) so the fixture tests under
//! `tests/bench_gate.rs` can drive it directly. Policy:
//!
//! - **Profile and schema first.** A `quick` run is not comparable to a
//!   `full` baseline; schema drift is rejected during parsing
//!   ([`super::schema::BenchMatrix::from_value`]).
//! - **Coverage cannot shrink.** Every baseline cell must appear in the
//!   current matrix (same `regime/topology/jobs_label/shards_label`
//!   key). Extra
//!   current cells are noted, not failed — they become gated once
//!   baselined.
//! - **The workload must be identical.** Cells are deterministic
//!   (seeded traces, fixed spec mix), so `flits`, `sim_cycles`,
//!   `engine_cells` and the profile parameters must match exactly;
//!   a mismatch means the baseline describes a different simulator and
//!   must be regenerated, not compared against.
//! - **Per-regime thresholds with a noise floor.** Wall-clock may grow
//!   by at most the regime's tolerance, and throughput may drop by at
//!   most the same, but only deltas above [`NOISE_FLOOR_WALL_MS`] of
//!   absolute wall movement can fail the gate: sub-floor wiggle on a
//!   short cell is scheduler noise, not regression signal.

use super::schema::{BenchCell, BenchMatrix};

/// Absolute wall-clock movement (ms) below which a cell can never fail
/// the gate. Calibrated to the quick profile on a busy 1-core CI
/// runner, where ±100 ms of scheduler noise on a 400 ms cell is
/// routine.
pub const NOISE_FLOOR_WALL_MS: f64 = 120.0;

/// Per-regime regression tolerance, percent.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Max allowed wall-clock growth.
    pub wall_pct: f64,
    /// Max allowed throughput (sim-cycles/sec) drop.
    pub tput_pct: f64,
}

/// The regime's tolerance. Light cells are short, so proportional
/// noise is larger and the gate is looser; the saturated regimes are
/// long enough for a tighter bound.
pub fn tolerance(regime: &str) -> Tolerance {
    match regime {
        "light" => Tolerance {
            wall_pct: 30.0,
            tput_pct: 30.0,
        },
        _ => Tolerance {
            wall_pct: 20.0,
            tput_pct: 20.0,
        },
    }
}

/// Outcome of one gate evaluation.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Human-readable per-cell rows, matrix order.
    pub rows: Vec<String>,
    /// Gate-failing findings. Non-empty ⇒ exit non-zero.
    pub failures: Vec<String>,
    /// Non-gating observations (new cells, RSS growth).
    pub notes: Vec<String>,
}

impl GateReport {
    /// True when the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render the whole report for stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(r);
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        for f in &self.failures {
            out.push_str("FAIL: ");
            out.push_str(f);
            out.push('\n');
        }
        out
    }
}

/// Diff `current` against `baseline` under the gate policy.
pub fn compare(current: &BenchMatrix, baseline: &BenchMatrix) -> GateReport {
    let mut report = GateReport::default();

    if current.profile != baseline.profile {
        report.failures.push(format!(
            "profile mismatch: current is `{}`, baseline is `{}` — rerun with the \
             baseline's profile or regenerate the baseline",
            current.profile, baseline.profile
        ));
        return report;
    }

    for base in &baseline.cells {
        let key = base.key();
        let Some(cur) = current.cells.iter().find(|c| c.key() == key) else {
            report.failures.push(format!(
                "{key}: cell present in baseline but missing from this run — \
                 the matrix lost coverage"
            ));
            continue;
        };
        compare_cell(cur, base, &mut report);
    }

    for cur in &current.cells {
        if !baseline.cells.iter().any(|b| b.key() == cur.key()) {
            report.notes.push(format!(
                "{}: new cell not in baseline (ungated until baselined)",
                cur.key()
            ));
        }
    }
    report
}

fn compare_cell(cur: &BenchCell, base: &BenchCell, report: &mut GateReport) {
    let key = base.key();

    // Deterministic workload: any difference in what was simulated
    // invalidates the timing comparison outright.
    let drift = [
        ("engine_cells", cur.engine_cells, base.engine_cells),
        ("flits", cur.flits, base.flits),
        ("sim_cycles", cur.sim_cycles, base.sim_cycles),
        ("duration_ns", cur.duration_ns, base.duration_ns),
        ("traces", cur.traces, base.traces),
        ("seed", cur.seed, base.seed),
    ];
    if let Some((field, c, b)) = drift.iter().find(|(_, c, b)| c != b) {
        report.failures.push(format!(
            "{key}: workload drift — `{field}` is {c} here vs {b} in the baseline; \
             the simulated work changed, regenerate the baseline \
             (`cargo xtask bench --write-baseline`)"
        ));
        return;
    }

    let tol = tolerance(&base.regime);
    let wall_delta = cur.wall_ms - base.wall_ms;
    let wall_pct = 100.0 * wall_delta / base.wall_ms.max(f64::MIN_POSITIVE);
    let tput_pct = 100.0 * (cur.sim_cycles_per_sec - base.sim_cycles_per_sec)
        / base.sim_cycles_per_sec.max(f64::MIN_POSITIVE);
    let above_floor = wall_delta.abs() > NOISE_FLOOR_WALL_MS;

    let wall_fail = wall_pct > tol.wall_pct && above_floor;
    let tput_fail = tput_pct < -tol.tput_pct && above_floor;

    let verdict = if wall_fail || tput_fail {
        "FAIL"
    } else if !above_floor {
        "ok (within noise floor)"
    } else {
        "ok"
    };
    report.rows.push(format!(
        "{key:<34} wall {:>8.1}ms → {:>8.1}ms ({wall_pct:+.1}%)  \
         tput {tput_pct:+.1}%  {verdict}",
        base.wall_ms, cur.wall_ms
    ));

    if wall_fail {
        report.failures.push(format!(
            "{key}: wall-clock regressed {wall_pct:+.1}% \
             ({:.1}ms → {:.1}ms), tolerance {}%",
            base.wall_ms, cur.wall_ms, tol.wall_pct
        ));
    }
    if tput_fail {
        report.failures.push(format!(
            "{key}: throughput dropped {tput_pct:+.1}% \
             ({:.0} → {:.0} sim-cycles/s), tolerance {}%",
            base.sim_cycles_per_sec, cur.sim_cycles_per_sec, tol.tput_pct
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::super::schema::{BenchEnv, BenchMatrix};
    use super::*;

    fn cell(regime: &str, wall_ms: f64) -> BenchCell {
        BenchCell {
            regime: regime.into(),
            topology: "mesh8x8".into(),
            jobs_label: "j1".into(),
            jobs: 1,
            shards_label: "s1".into(),
            shards: 1,
            engine_cells: 12,
            wall_ms,
            cpu_s: wall_ms / 1000.0,
            cell_cpu_s: wall_ms / 1000.0,
            max_rss_bytes: 10 << 20,
            sim_cycles: 500_000,
            flits: 800_000,
            sim_cycles_per_sec: 500_000.0 / (wall_ms / 1000.0),
            flits_per_sec: 800_000.0 / (wall_ms / 1000.0),
            duration_ns: 3_000,
            traces: 4,
            seed: 0,
        }
    }

    fn matrix(cells: Vec<BenchCell>) -> BenchMatrix {
        BenchMatrix {
            profile: "quick".into(),
            env: BenchEnv::default(),
            cells,
        }
    }

    #[test]
    fn identical_matrices_pass() {
        let m = matrix(vec![cell("light", 400.0), cell("saturation", 1500.0)]);
        let r = compare(&m, &m);
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn large_slowdown_fails_small_wiggle_passes() {
        let base = matrix(vec![cell("saturation", 1500.0)]);
        // +50% on a long cell: definitely above both threshold and floor.
        let slow = matrix(vec![cell("saturation", 2250.0)]);
        assert!(!compare(&slow, &base).passed());
        // +5%: inside the 20% tolerance.
        let ok = matrix(vec![cell("saturation", 1575.0)]);
        assert!(compare(&ok, &base).passed());
    }

    #[test]
    fn noise_floor_shields_short_cells() {
        let base = matrix(vec![cell("light", 100.0)]);
        // +80% but only 80 ms of movement: under the 120 ms floor.
        let wiggle = matrix(vec![cell("light", 180.0)]);
        let r = compare(&wiggle, &base);
        assert!(r.passed(), "{}", r.render());
        assert!(r.render().contains("noise floor"));
    }

    #[test]
    fn missing_cell_fails() {
        let base = matrix(vec![cell("light", 400.0), cell("saturation", 1500.0)]);
        let cur = matrix(vec![cell("light", 400.0)]);
        let r = compare(&cur, &base);
        assert!(!r.passed());
        assert!(r.failures[0].contains("missing from this run"));
    }

    #[test]
    fn extra_cell_is_note_not_failure() {
        let base = matrix(vec![cell("light", 400.0)]);
        let cur = matrix(vec![cell("light", 400.0), cell("saturation", 1500.0)]);
        let r = compare(&cur, &base);
        assert!(r.passed());
        assert_eq!(r.notes.len(), 1);
    }

    #[test]
    fn profile_mismatch_fails_outright() {
        let base = matrix(vec![cell("light", 400.0)]);
        let mut cur = matrix(vec![cell("light", 400.0)]);
        cur.profile = "full".into();
        let r = compare(&cur, &base);
        assert!(!r.passed());
        assert!(r.failures[0].contains("profile mismatch"));
    }

    #[test]
    fn workload_drift_fails_with_rebaseline_advice() {
        let base = matrix(vec![cell("light", 400.0)]);
        let mut cur = matrix(vec![cell("light", 400.0)]);
        cur.cells[0].flits += 1;
        let r = compare(&cur, &base);
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("workload drift"),
            "{}",
            r.failures[0]
        );
        assert!(r.failures[0].contains("--write-baseline"));
    }

    #[test]
    fn throughput_drop_fails_even_if_wall_borderline() {
        // Construct a cell where wall grows 25% (above light's 30%? no —
        // keep regime saturation: tolerance 20) and throughput drops in
        // step. Both checks fire; at minimum the gate fails.
        let base = matrix(vec![cell("saturation", 1000.0)]);
        let cur = matrix(vec![cell("saturation", 1300.0)]);
        let r = compare(&cur, &base);
        assert!(!r.passed());
    }

    #[test]
    fn light_regime_is_looser_than_saturation() {
        assert!(tolerance("light").wall_pct > tolerance("saturation").wall_pct);
        assert!(tolerance("pathological-hotspot").wall_pct <= 20.0);
    }
}
