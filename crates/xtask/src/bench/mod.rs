//! `cargo xtask bench` — the decision-grade perf yardstick
//! (ROADMAP item 5).
//!
//! Runs a matrix of load regimes (light / saturation /
//! pathological-hotspot, see `dozznoc_bench::regimes`) × topologies
//! (`mesh8x8`, `cmesh4x4`) × engine configs through the real engine and
//! writes the measurements to `BENCH_matrix.json` in the frozen,
//! versioned shape of [`schema::BenchMatrix`]. The engine-config axis
//! isolates the two parallelism knobs: `j1/s1` (serial), `jN/s1`
//! (cell-level fan-out across every core) and `j1/sN` (one run split
//! across [`SHARDS_N`] spatial shards of the sharded intra-run engine).
//!
//! xtask itself stays near-dependency-free, so the engine work happens
//! in a subprocess: each cell spawns `target/release/dozz-repro
//! bench-cell …`, which self-reports wall-clock, CPU seconds, peak RSS,
//! simulated-cycles/sec and flits/sec as one line of JSON (versioned:
//! `bench_cell_schema`). Process isolation is a feature — every cell
//! gets a fresh allocator and a peak-RSS reading that is actually
//! *its* peak.
//!
//! `--compare <baseline.json>` turns the run into a regression gate
//! (see [`compare`]): per-regime thresholds, a noise floor for short
//! cells, loud failures on schema drift, profile mismatch, lost
//! coverage and workload drift. The committed baseline lives at
//! [`BASELINE_REL`]; regenerate it with `--write-baseline` whenever
//! the simulator's *work* (not just its speed) legitimately changes.

pub mod compare;
pub mod schema;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use serde_json::Value;

use crate::scans;
use schema::{BenchCell, BenchEnv, BenchMatrix};

/// Repo-relative path of the committed gate baseline.
pub const BASELINE_REL: &str = "crates/xtask/bench-baseline.json";

/// Version of the one-line JSON contract `dozz-repro bench-cell`
/// prints. Must match `dozznoc_experiments::bench_cell::BENCH_CELL_SCHEMA`.
const BENCH_CELL_SCHEMA: u64 = 2;

/// The topology axis of the matrix.
const TOPOLOGIES: [&str; 2] = ["mesh8x8", "cmesh4x4"];

/// Shard count behind the `sN` label: the natural quadrant split of
/// both paper topologies (8×8 mesh → four 2-row blocks, 4×4 cmesh →
/// four cluster-column blocks), and the shard count the speedup
/// acceptance gate in ISSUE 9 / EXPERIMENTS.md is quoted at.
const SHARDS_N: u64 = 4;

/// The regime axis, in `dozznoc_bench::regimes` order.
const REGIMES: [&str; 3] = ["light", "saturation", "pathological-hotspot"];

/// Measurement profile: how much work each cell simulates.
#[derive(Debug, Clone, Copy)]
struct Profile {
    name: &'static str,
    duration_ns: u64,
    traces: u64,
}

/// Calibrated so the full 12-cell quick matrix lands in tens of
/// seconds on one core while each cell still simulates hundreds of
/// thousands of base-clock cycles (see `dozz-repro bench-cell`).
const QUICK: Profile = Profile {
    name: "quick",
    duration_ns: 3_000,
    traces: 4,
};
const FULL: Profile = Profile {
    name: "full",
    duration_ns: 8_000,
    traces: 6,
};

struct BenchArgs {
    quick: bool,
    compare: Option<PathBuf>,
    write_baseline: bool,
    out: PathBuf,
    skip_build: bool,
}

/// Entry point for `cargo xtask bench`.
pub fn run(raw: &[String]) -> ExitCode {
    let args = match parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask bench: {e}");
            eprintln!(
                "usage: cargo xtask bench [--quick] [--compare BASELINE.json] \
                 [--write-baseline] [--out PATH] [--skip-build]"
            );
            return ExitCode::FAILURE;
        }
    };
    let root = scans::workspace_root();
    let profile = if args.quick { QUICK } else { FULL };

    if !args.skip_build {
        println!("xtask bench: cargo build --release -p dozznoc-experiments");
        if !run_cargo(&root, &["build", "--release", "-p", "dozznoc-experiments"]) {
            eprintln!("xtask bench: release build FAILED");
            return ExitCode::FAILURE;
        }
    }
    let bin = root.join("target/release/dozz-repro");
    if !bin.exists() {
        eprintln!(
            "xtask bench: {} not found (need `cargo build --release -p \
             dozznoc-experiments` or drop --skip-build)",
            bin.display()
        );
        return ExitCode::FAILURE;
    }

    let env = capture_env(&root);
    println!(
        "xtask bench: profile={} host={} cores={} rev={}",
        profile.name, env.host, env.cores, env.git_rev
    );

    let mut cells = Vec::new();
    let configs = [
        ("j1", 1u64, "s1", 1u64),
        ("jN", env.cores.max(1), "s1", 1),
        ("j1", 1, "sN", SHARDS_N),
    ];
    for regime in REGIMES {
        for topo in TOPOLOGIES {
            for (label, jobs, shards_label, shards) in configs {
                match run_cell(
                    &bin,
                    regime,
                    topo,
                    label,
                    jobs,
                    shards_label,
                    shards,
                    profile,
                ) {
                    Ok(cell) => {
                        println!(
                            "  {:<34} wall {:>8.1}ms  {:>12.0} cyc/s  rss {:>5.1} MiB",
                            cell.key(),
                            cell.wall_ms,
                            cell.sim_cycles_per_sec,
                            cell.max_rss_bytes as f64 / (1024.0 * 1024.0)
                        );
                        cells.push(cell);
                    }
                    Err(e) => {
                        eprintln!("xtask bench: {regime}/{topo}/{label}/{shards_label}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }

    let matrix = BenchMatrix {
        profile: profile.name.to_string(),
        env,
        cells,
    };
    let text = match serde_json::to_string_pretty(&matrix.to_value()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench: serialize matrix: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("xtask bench: write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("xtask bench: matrix written to {}", args.out.display());

    if args.write_baseline {
        let path = root.join(BASELINE_REL);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("xtask bench: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask bench: baseline written to {BASELINE_REL}");
    }

    if let Some(baseline_path) = &args.compare {
        return gate(&matrix, baseline_path);
    }
    ExitCode::SUCCESS
}

/// Load the baseline, run the gate, render the verdict.
fn gate(current: &BenchMatrix, baseline_path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench: read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let baseline = match BenchMatrix::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask bench: {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "xtask bench: comparing against {} (host={} rev={})",
        baseline_path.display(),
        baseline.env.host,
        baseline.env.git_rev
    );
    let report = compare::compare(current, &baseline);
    print!("{}", report.render());
    if report.passed() {
        println!("xtask bench: gate OK");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask bench: gate FAILED ({} finding(s))",
            report.failures.len()
        );
        ExitCode::FAILURE
    }
}

/// Spawn one `dozz-repro bench-cell` subprocess and parse its report.
#[allow(clippy::too_many_arguments)] // one flat axis tuple per matrix cell
fn run_cell(
    bin: &Path,
    regime: &str,
    topo: &str,
    label: &str,
    jobs: u64,
    shards_label: &str,
    shards: u64,
    profile: Profile,
) -> Result<BenchCell, String> {
    let out = Command::new(bin)
        .args([
            "bench-cell",
            "--regime",
            regime,
            "--topo",
            topo,
            "--jobs",
            &jobs.to_string(),
            "--shards",
            &shards.to_string(),
            "--duration-ns",
            &profile.duration_ns.to_string(),
            "--traces",
            &profile.traces.to_string(),
            "--seed",
            "0",
        ])
        .output()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    if !out.status.success() {
        return Err(format!(
            "bench-cell exited {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or("bench-cell printed no report")?;
    let v: Value = serde_json::from_str(line).map_err(|e| format!("bench-cell report: {e}"))?;
    let cell_schema = v
        .get("bench_cell_schema")
        .and_then(Value::as_u64)
        .ok_or("bench-cell report missing `bench_cell_schema`")?;
    if cell_schema != BENCH_CELL_SCHEMA {
        return Err(format!(
            "bench-cell speaks schema v{cell_schema}, harness expects \
             v{BENCH_CELL_SCHEMA} — rebuild dozz-repro"
        ));
    }
    let f = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench-cell report missing `{key}`"))
    };
    let u = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("bench-cell report missing `{key}`"))
    };
    Ok(BenchCell {
        regime: regime.to_string(),
        topology: topo.to_string(),
        jobs_label: label.to_string(),
        jobs,
        shards_label: shards_label.to_string(),
        shards: u("shards")?,
        engine_cells: u("engine_cells")?,
        wall_ms: f("wall_ms")?,
        cpu_s: f("cpu_s")?,
        cell_cpu_s: f("cell_cpu_s")?,
        max_rss_bytes: u("max_rss_bytes")?,
        sim_cycles: u("sim_cycles")?,
        flits: u("flits")?,
        sim_cycles_per_sec: f("sim_cycles_per_sec")?,
        flits_per_sec: f("flits_per_sec")?,
        duration_ns: u("duration_ns")?,
        traces: u("traces")?,
        seed: u("seed")?,
    })
}

/// Environment fingerprint: host, cores, rustc, git revision.
fn capture_env(root: &Path) -> BenchEnv {
    let host = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|h| h.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let rustc =
        command_line("rustc", &["--version"], root).unwrap_or_else(|| "unknown".to_string());
    let mut git_rev = command_line("git", &["rev-parse", "--short", "HEAD"], root)
        .unwrap_or_else(|| "unknown".to_string());
    let dirty = command_line("git", &["status", "--porcelain"], root)
        .map(|s| !s.is_empty())
        .unwrap_or(false);
    if dirty {
        git_rev.push_str("-dirty");
    }
    BenchEnv {
        host,
        cores,
        rustc,
        git_rev,
    }
}

/// First stdout line of `cmd args`, trimmed; `None` on any failure.
fn command_line(cmd: &str, args: &[&str], cwd: &Path) -> Option<String> {
    let out = Command::new(cmd)
        .args(args)
        .current_dir(cwd)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout)
        .ok()
        .map(|s| s.lines().next().unwrap_or("").trim().to_string())
}

/// Run `cargo <args>` in `root`, inheriting stdio. True on success.
fn run_cargo(root: &Path, args: &[&str]) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    Command::new(cargo)
        .args(args)
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn parse(raw: &[String]) -> Result<BenchArgs, String> {
    let mut args = BenchArgs {
        quick: false,
        compare: None,
        write_baseline: false,
        out: scans::workspace_root().join("BENCH_matrix.json"),
        skip_build: false,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--write-baseline" => args.write_baseline = true,
            "--skip-build" => args.skip_build = true,
            "--compare" => {
                let v = it.next().ok_or("--compare needs a path")?;
                args.compare = Some(PathBuf::from(v));
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                args.out = PathBuf::from(v);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}
