//! The frozen on-disk shape of `BENCH_matrix.json`.
//!
//! Everything the harness writes — and everything `--compare` is
//! willing to read — goes through [`BenchMatrix::to_value`] /
//! [`BenchMatrix::from_value`]. The version lives in
//! [`BENCH_SCHEMA_VERSION`]; any drift between a baseline file and the
//! running harness is a loud, non-negotiable error rather than a
//! silently-wrong comparison. Bump the version whenever a field is
//! added, removed, or changes meaning, and regenerate the committed
//! baseline in the same commit.

use serde_json::{Number, Value};

/// Version of the `BENCH_matrix.json` shape. A baseline with any other
/// value is rejected by [`BenchMatrix::from_value`]. v2 added the
/// shard axis (`shards_label`/`shards`: spatial shards inside each
/// engine run; `s1` = sequential engine).
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Environment fingerprint captured at matrix time. Informational:
/// the gate compares numbers, humans compare environments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchEnv {
    /// Hostname the matrix ran on.
    pub host: String,
    /// Available hardware parallelism (the `jN` jobs count).
    pub cores: u64,
    /// `rustc --version` line.
    pub rustc: String,
    /// Short git revision of the tree (may carry a `-dirty` suffix).
    pub git_rev: String,
}

/// One measured (regime × topology × jobs) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Regime name as emitted by `dozznoc_bench::regimes::Regime`.
    pub regime: String,
    /// Topology name (`mesh8x8` | `cmesh4x4`).
    pub topology: String,
    /// Jobs-axis label: `"j1"` or `"jN"`. Keys the comparison so a
    /// 4-core baseline and a 32-core rerun still pair cells up.
    pub jobs_label: String,
    /// The concrete worker count behind the label on this machine.
    pub jobs: u64,
    /// Shard-axis label: `"s1"` (sequential engine) or `"sN"`
    /// (spatially-sharded engine). Keys the comparison like
    /// `jobs_label`.
    pub shards_label: String,
    /// The concrete spatial shard count behind the label.
    pub shards: u64,
    /// Engine cells (traces × specs) the measurement covered.
    pub engine_cells: u64,
    /// Wall-clock of the measured engine region, milliseconds.
    pub wall_ms: f64,
    /// Process CPU time over the measured region, seconds.
    pub cpu_s: f64,
    /// Sum of per-cell worker-thread CPU time, seconds.
    pub cell_cpu_s: f64,
    /// Peak RSS over the measured region, bytes (0 where unsupported).
    pub max_rss_bytes: u64,
    /// Simulated base-clock ticks summed over all engine cells.
    pub sim_cycles: u64,
    /// Flits delivered, summed over all engine cells.
    pub flits: u64,
    /// `sim_cycles / wall`, the primary throughput figure.
    pub sim_cycles_per_sec: f64,
    /// `flits / wall`, the secondary throughput figure.
    pub flits_per_sec: f64,
    /// Trace horizon per trace, nanoseconds (profile parameter).
    pub duration_ns: u64,
    /// Traces per cell (profile parameter).
    pub traces: u64,
    /// Base trace seed.
    pub seed: u64,
}

impl BenchCell {
    /// Stable identity of the cell inside a matrix.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.regime, self.topology, self.jobs_label, self.shards_label
        )
    }
}

/// A full bench run: header, environment, cells.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMatrix {
    /// Measurement profile (`"quick"` | `"full"`). Comparing across
    /// profiles is meaningless, so `--compare` refuses it.
    pub profile: String,
    /// Environment fingerprint.
    pub env: BenchEnv,
    /// Measured cells, matrix order.
    pub cells: Vec<BenchCell>,
}

impl BenchMatrix {
    /// Serialize to the versioned JSON tree.
    pub fn to_value(&self) -> Value {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Value::Object(vec![
                    ("regime".into(), Value::String(c.regime.clone())),
                    ("topology".into(), Value::String(c.topology.clone())),
                    ("jobs_label".into(), Value::String(c.jobs_label.clone())),
                    ("jobs".into(), Value::Number(Number::PosInt(c.jobs))),
                    ("shards_label".into(), Value::String(c.shards_label.clone())),
                    ("shards".into(), Value::Number(Number::PosInt(c.shards))),
                    (
                        "engine_cells".into(),
                        Value::Number(Number::PosInt(c.engine_cells)),
                    ),
                    ("wall_ms".into(), Value::Number(Number::Float(c.wall_ms))),
                    ("cpu_s".into(), Value::Number(Number::Float(c.cpu_s))),
                    (
                        "cell_cpu_s".into(),
                        Value::Number(Number::Float(c.cell_cpu_s)),
                    ),
                    (
                        "max_rss_bytes".into(),
                        Value::Number(Number::PosInt(c.max_rss_bytes)),
                    ),
                    (
                        "sim_cycles".into(),
                        Value::Number(Number::PosInt(c.sim_cycles)),
                    ),
                    ("flits".into(), Value::Number(Number::PosInt(c.flits))),
                    (
                        "sim_cycles_per_sec".into(),
                        Value::Number(Number::Float(c.sim_cycles_per_sec)),
                    ),
                    (
                        "flits_per_sec".into(),
                        Value::Number(Number::Float(c.flits_per_sec)),
                    ),
                    (
                        "duration_ns".into(),
                        Value::Number(Number::PosInt(c.duration_ns)),
                    ),
                    ("traces".into(), Value::Number(Number::PosInt(c.traces))),
                    ("seed".into(), Value::Number(Number::PosInt(c.seed))),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "bench_schema".into(),
                Value::Number(Number::PosInt(BENCH_SCHEMA_VERSION)),
            ),
            ("profile".into(), Value::String(self.profile.clone())),
            (
                "env".into(),
                Value::Object(vec![
                    ("host".into(), Value::String(self.env.host.clone())),
                    (
                        "cores".into(),
                        Value::Number(Number::PosInt(self.env.cores)),
                    ),
                    ("rustc".into(), Value::String(self.env.rustc.clone())),
                    ("git_rev".into(), Value::String(self.env.git_rev.clone())),
                ]),
            ),
            ("cells".into(), Value::Array(cells)),
        ])
    }

    /// Parse and validate a matrix tree. Schema-version drift is the
    /// first check and produces a self-explanatory error.
    pub fn from_value(v: &Value) -> Result<BenchMatrix, String> {
        let schema = v
            .get("bench_schema")
            .and_then(Value::as_u64)
            .ok_or("not a bench matrix: missing `bench_schema`")?;
        if schema != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench schema mismatch: file is v{schema}, this harness speaks \
                 v{BENCH_SCHEMA_VERSION} — regenerate the baseline with \
                 `cargo xtask bench --write-baseline`"
            ));
        }
        let profile = str_field(v, "profile")?;
        let env = v.get("env").ok_or("missing `env`")?;
        let env = BenchEnv {
            host: str_field(env, "host")?,
            cores: u64_field(env, "cores")?,
            rustc: str_field(env, "rustc")?,
            git_rev: str_field(env, "git_rev")?,
        };
        let cells = v
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("missing `cells` array")?
            .iter()
            .map(|c| {
                Ok(BenchCell {
                    regime: str_field(c, "regime")?,
                    topology: str_field(c, "topology")?,
                    jobs_label: str_field(c, "jobs_label")?,
                    jobs: u64_field(c, "jobs")?,
                    shards_label: str_field(c, "shards_label")?,
                    shards: u64_field(c, "shards")?,
                    engine_cells: u64_field(c, "engine_cells")?,
                    wall_ms: f64_field(c, "wall_ms")?,
                    cpu_s: f64_field(c, "cpu_s")?,
                    cell_cpu_s: f64_field(c, "cell_cpu_s")?,
                    max_rss_bytes: u64_field(c, "max_rss_bytes")?,
                    sim_cycles: u64_field(c, "sim_cycles")?,
                    flits: u64_field(c, "flits")?,
                    sim_cycles_per_sec: f64_field(c, "sim_cycles_per_sec")?,
                    flits_per_sec: f64_field(c, "flits_per_sec")?,
                    duration_ns: u64_field(c, "duration_ns")?,
                    traces: u64_field(c, "traces")?,
                    seed: u64_field(c, "seed")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchMatrix {
            profile,
            env,
            cells,
        })
    }

    /// Parse a matrix from JSON text (baseline files, fixtures).
    pub fn from_json(text: &str) -> Result<BenchMatrix, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        BenchMatrix::from_value(&v)
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_cell(regime: &str, topo: &str, label: &str, wall_ms: f64) -> BenchCell {
        BenchCell {
            regime: regime.into(),
            topology: topo.into(),
            jobs_label: label.into(),
            jobs: 1,
            shards_label: "s1".into(),
            shards: 1,
            engine_cells: 12,
            wall_ms,
            cpu_s: wall_ms / 1000.0,
            cell_cpu_s: wall_ms / 1000.0,
            max_rss_bytes: 10 << 20,
            sim_cycles: 500_000,
            flits: 800_000,
            sim_cycles_per_sec: 500_000.0 / (wall_ms / 1000.0),
            flits_per_sec: 800_000.0 / (wall_ms / 1000.0),
            duration_ns: 3_000,
            traces: 4,
            seed: 0,
        }
    }

    fn sample_matrix() -> BenchMatrix {
        BenchMatrix {
            profile: "quick".into(),
            env: BenchEnv {
                host: "ci".into(),
                cores: 4,
                rustc: "rustc 1.99.0".into(),
                git_rev: "abc1234".into(),
            },
            cells: vec![
                sample_cell("light", "mesh8x8", "j1", 400.0),
                sample_cell("saturation", "mesh8x8", "jN", 1500.0),
            ],
        }
    }

    #[test]
    fn matrix_round_trips() {
        let m = sample_matrix();
        let text = serde_json::to_string_pretty(&m.to_value()).expect("tree");
        let back = BenchMatrix::from_json(&text).expect("parse back");
        assert_eq!(back, m);
    }

    #[test]
    fn schema_drift_is_a_loud_error() {
        let mut v = sample_matrix().to_value();
        if let Some(s) = v.get_mut("bench_schema") {
            *s = Value::Number(Number::PosInt(BENCH_SCHEMA_VERSION + 1));
        }
        let err = BenchMatrix::from_value(&v).expect_err("must reject");
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("--write-baseline"), "{err}");
    }

    #[test]
    fn non_matrix_json_is_rejected() {
        assert!(BenchMatrix::from_json("{\"findings\": []}").is_err());
        assert!(BenchMatrix::from_json("[]").is_err());
        assert!(BenchMatrix::from_json("not json").is_err());
    }

    #[test]
    fn cell_key_is_regime_topo_jobs_shards() {
        let c = sample_cell("light", "mesh8x8", "j1", 1.0);
        assert_eq!(c.key(), "light/mesh8x8/j1/s1");
    }
}
