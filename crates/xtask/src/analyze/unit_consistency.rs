//! Pass 1 — `unit-consistency` (deny).
//!
//! The time newtypes (`SimTime`, `TickDelta`, `DomainCycles`) seal their
//! inner `u64` so tick arithmetic cannot silently change units. This
//! pass enforces the seal *textually*, one compile earlier than rustc:
//!
//! 1. no `.0` access on a binding typed as one of the time types outside
//!    `crates/types` (the accessors are `.ticks()` / `.count()`),
//! 2. no direct tuple construction `SimTime(..)` / `TickDelta(..)` /
//!    `DomainCycles(..)` outside `crates/types` (use the named
//!    constructors, which carry the overflow policy),
//! 3. no `*` / `/` arithmetic that mixes a cycle count with a clock
//!    divisor — the only sanctioned bridges between per-domain cycles
//!    and base ticks are `DomainCycles::to_ticks` and
//!    `DomainCycles::from_ticks_ceil`.

use std::collections::BTreeSet;

use syn::{Delim, Tok, Token};

use crate::analyze::{
    for_each_fn, for_each_level, mentions_ident, operand_idents, typed_idents, Pass, Workspace,
};
use crate::diag::{Diagnostic, Severity};

pub struct UnitConsistency;

const TIME_TYPES: [&str; 3] = ["SimTime", "TickDelta", "DomainCycles"];

impl Pass for UnitConsistency {
    fn id(&self) -> &'static str {
        "unit-consistency"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            // The newtypes' own crate is where the raw field legitimately
            // lives; everything it exports is the sanctioned surface.
            if file.krate == "types" {
                continue;
            }
            for_each_fn(file, true, &mut |fr| {
                let Some(body) = &fr.item.body else { return };
                let timed = typed_idents(fr.item, &|ty| mentions_ident(ty, &TIME_TYPES));
                for_each_level(body, &mut |level| {
                    scan_level(level, &timed, &file.rel, out);
                });
            });
        }
    }
}

fn scan_level(level: &[Token], timed: &BTreeSet<String>, rel: &str, out: &mut Vec<Diagnostic>) {
    for (i, t) in level.iter().enumerate() {
        // `time_typed.0` — raw field access.
        if t.is_punct(".") && i > 0 {
            if let (Some(id), Some(next)) = (level[i - 1].ident(), level.get(i + 1)) {
                if matches!(&next.tok, Tok::Int(n) if n == "0") && timed.contains(id) {
                    out.push(diag(
                        rel,
                        next.span,
                        format!(
                            "raw `.0` access on time-typed `{id}` — use the `.ticks()` / \
                             `.count()` accessors so the unit stays visible"
                        ),
                    ));
                }
            }
        }

        // `SimTime(..)` — direct tuple construction.
        if let Some(id) = t.ident() {
            if TIME_TYPES.contains(&id)
                && matches!(
                    level.get(i + 1).map(|n| &n.tok),
                    Some(Tok::Group(Delim::Paren, _))
                )
            {
                out.push(diag(
                    rel,
                    t.span,
                    format!(
                        "direct tuple construction `{id}(..)` outside crates/types — use the \
                         named constructors, which carry the documented overflow policy"
                    ),
                ));
            }
        }

        // `cycles * divisor` / `ticks / divisor` — unit mixing around an
        // arithmetic operator instead of the named conversion fns.
        if t.is_punct("*") || t.is_punct("/") {
            let left = context_idents(level, i, -1);
            let right = context_idents(level, i, 1);
            let cycle = |ids: &[String]| ids.iter().any(|s| s.to_lowercase().contains("cycle"));
            let divisor = |ids: &[String]| ids.iter().any(|s| s.to_lowercase().contains("divisor"));
            if (cycle(&left) && divisor(&right)) || (divisor(&left) && cycle(&right)) {
                out.push(diag(
                    rel,
                    t.span,
                    "arithmetic mixes a cycle count with a clock divisor — convert through \
                     DomainCycles::to_ticks / DomainCycles::from_ticks_ceil so the unit \
                     change is named"
                        .to_string(),
                ));
            }
        }
    }
}

/// Identifiers of the operand expression on one side of `level[op]`:
/// walks over `a.b.c()` chains (idents, `.`/`::`, call-argument groups)
/// until any other punctuation ends the operand.
fn context_idents(level: &[Token], op: usize, dir: isize) -> Vec<String> {
    let mut ids = Vec::new();
    let mut j = op as isize + dir;
    while j >= 0 && (j as usize) < level.len() {
        let t = &level[j as usize];
        match &t.tok {
            Tok::Ident(_) | Tok::Group(Delim::Paren, _) => {
                ids.extend(operand_idents(t).into_iter().map(str::to_string));
            }
            Tok::Punct(p) if p == "." || p == "::" => {}
            _ => break,
        }
        j += dir;
    }
    ids
}

fn diag(rel: &str, span: syn::Span, message: String) -> Diagnostic {
    Diagnostic {
        rule: "unit-consistency",
        severity: Severity::Deny,
        file: rel.to_string(),
        line: span.line,
        column: span.column,
        message,
    }
}
