//! Pass 7 — `lock-discipline` (deny).
//!
//! Two checks over synchronization primitives, both feeding the same
//! rule ID:
//!
//! 1. **Lock ordering.** Every `Mutex`/`RwLock` acquisition
//!    (`.lock()` / `.read()` / `.write()`) is recorded per function;
//!    when one acquisition happens while another guard is plausibly
//!    held (a nested acquisition inside the same expression, or after a
//!    `let guard = …` earlier in the same block), the pair becomes an
//!    edge in a workspace-wide lock-order graph. A cycle in that graph
//!    — `A` then `B` in one function, `B` then `A` in another — is the
//!    classic deadlock shape and is denied at the back-edge site.
//!
//! 2. **Atomic ordering pairs.** For every atomic accessed by name, the
//!    memory orderings of its loads, stores and RMWs must form a
//!    coherent protocol: all-`Relaxed` (a pure counter), or
//!    `Release`-writes paired with `Acquire`-reads, or all-`SeqCst`.
//!    A `Release` store whose loads are `Relaxed` (or vice versa)
//!    publishes nothing and is denied. This audits the cache-stats
//!    counters and the injector cursor instead of blanket-exempting
//!    the files that hold them — the `atomic-ordering` file exemption
//!    silences the *Relaxed-is-suspect* rule, not this coherence check.

use std::collections::{BTreeMap, BTreeSet};

use syn::{Expr, Span};

use crate::analyze::{for_each_fn, Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

pub struct LockDiscipline;

const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];
const LOAD_METHODS: [&str; 1] = ["load"];
const STORE_METHODS: [&str; 1] = ["store"];
const RMW_METHODS: [&str; 8] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

impl Pass for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        // lock name -> held-then-acquired edges, with one witness site.
        let mut edges: BTreeMap<(String, String), (String, Span, String)> = BTreeMap::new();
        // atomic name -> ordering sets and a witness site per ordering kind.
        let mut atomics: BTreeMap<String, AtomicUses> = BTreeMap::new();

        for file in &ws.files {
            for_each_fn(file, true, &mut |fr| {
                let Some(body) = &fr.item.body else { return };
                let block = syn::parse_block(body);
                record_lock_edges(&block, &file.rel, &fr.qual_name(), &mut edges);
                record_atomic_uses(&block, &file.rel, &mut atomics);
            });
        }

        // A cycle through any pair of locks: report the lexically-larger
        // edge so the finding is deterministic.
        for ((a, b), (rel, span, qual)) in &edges {
            if a < b {
                continue; // the reverse direction reports
            }
            if let Some((rel2, _, qual2)) = edges.get(&(b.clone(), a.clone())) {
                out.push(Diagnostic {
                    rule: "lock-discipline",
                    severity: Severity::Deny,
                    file: rel.clone(),
                    line: span.line,
                    column: span.column,
                    message: format!(
                        "lock-order cycle: `{qual}` acquires `{a}` then `{b}`, but `{qual2}` \
                         ({rel2}) acquires them in the opposite order — pick one global order \
                         or merge the critical sections"
                    ),
                });
            }
        }

        for (name, uses) in &atomics {
            check_atomic_protocol(name, uses, out);
        }
    }
}

/// Orderings seen for one named atomic, split by access kind.
#[derive(Default)]
struct AtomicUses {
    loads: BTreeSet<String>,
    stores: BTreeSet<String>,
    rmws: BTreeSet<String>,
    /// Witness site of the first recorded use.
    site: Option<(String, Span)>,
}

/// Flattened receiver name of a lock/atomic: `self.cache.hits` →
/// `cache.hits` (the `self` prefix is dropped so the same field matches
/// across methods), `COUNTER` → `COUNTER`.
fn receiver_name(e: &Expr) -> Option<String> {
    fn build(e: &Expr, parts: &mut Vec<String>) -> bool {
        match e {
            Expr::Path { segments, .. } => {
                for s in segments {
                    if s != "self" {
                        parts.push(s.clone());
                    }
                }
                true
            }
            Expr::Field { base, member, .. } => {
                if !build(base, parts) {
                    return false;
                }
                parts.push(member.clone());
                true
            }
            _ => false,
        }
    }
    let mut parts = Vec::new();
    if build(e, &mut parts) && !parts.is_empty() {
        Some(parts.join("."))
    } else {
        None
    }
}

/// Record held-then-acquired lock pairs in one function body.
///
/// "Held" is approximated lexically: a guard bound by `let` stays held
/// for the rest of its block; an acquisition nested inside another
/// acquisition's expression is held around it by construction. This
/// over-approximates guard lifetimes (an early `drop(guard)` still
/// counts) — for a deadlock-shape check, too many edges only costs a
/// justified suppression, while too few misses a deadlock.
fn record_lock_edges(
    block: &syn::Block,
    rel: &str,
    qual: &str,
    edges: &mut BTreeMap<(String, String), (String, Span, String)>,
) {
    let mut held: Vec<String> = Vec::new();
    walk_block(block, rel, qual, &mut held, edges);

    fn walk_block(
        block: &syn::Block,
        rel: &str,
        qual: &str,
        held: &mut Vec<String>,
        edges: &mut BTreeMap<(String, String), (String, Span, String)>,
    ) {
        let held_at_entry = held.len();
        for stmt in &block.stmts {
            match stmt {
                syn::Stmt::Let { init: Some(e), .. } => {
                    // Acquisitions in a let-initializer stay held for
                    // the rest of the block.
                    walk_expr(e, rel, qual, held, edges, true);
                }
                syn::Stmt::Expr(e) => {
                    // Statement-temporary guards die at the `;`.
                    let before = held.len();
                    walk_expr(e, rel, qual, held, edges, false);
                    held.truncate(before);
                }
                _ => {}
            }
        }
        held.truncate(held_at_entry);
    }

    fn walk_expr(
        e: &Expr,
        rel: &str,
        qual: &str,
        held: &mut Vec<String>,
        edges: &mut BTreeMap<(String, String), (String, Span, String)>,
        keep: bool,
    ) {
        // Sub-blocks get their own scope.
        if let Expr::Block(b) = e {
            walk_block(b, rel, qual, held, edges);
            return;
        }
        if let Expr::MethodCall {
            recv,
            method,
            args,
            span,
        } = e
        {
            // Receiver first: `a.lock().x.lock()` acquires left-to-right.
            walk_expr(recv, rel, qual, held, edges, keep);
            for a in args {
                walk_expr(a, rel, qual, held, edges, keep);
            }
            if ACQUIRE_METHODS.contains(&method.as_str()) {
                if let Some(name) = receiver_name(recv) {
                    for h in held.iter() {
                        if h != &name {
                            edges
                                .entry((h.clone(), name.clone()))
                                .or_insert_with(|| (rel.to_string(), *span, qual.to_string()));
                        }
                    }
                    held.push(name);
                }
            }
            return;
        }
        // Generic recursion; closures are walked too (a closure that
        // locks while the caller holds a guard is exactly the hazard).
        let before = held.len();
        syn::walk_exprs(e, &mut |sub| {
            if std::ptr::eq(sub, e) {
                return;
            }
            if let Expr::MethodCall {
                recv, method, span, ..
            } = sub
            {
                if ACQUIRE_METHODS.contains(&method.as_str()) {
                    if let Some(name) = receiver_name(recv) {
                        for h in held.iter() {
                            if h != &name {
                                edges
                                    .entry((h.clone(), name.clone()))
                                    .or_insert_with(|| (rel.to_string(), *span, qual.to_string()));
                            }
                        }
                        held.push(name);
                    }
                }
            }
        });
        if !keep {
            held.truncate(before);
        }
    }
}

/// Record the ordering every load/store/RMW uses, per atomic name.
fn record_atomic_uses(block: &syn::Block, rel: &str, atomics: &mut BTreeMap<String, AtomicUses>) {
    syn::walk_block_exprs(block, &mut |e| {
        let Expr::MethodCall {
            recv,
            method,
            args,
            span,
        } = e
        else {
            return;
        };
        let kind = if LOAD_METHODS.contains(&method.as_str()) {
            0
        } else if STORE_METHODS.contains(&method.as_str()) {
            1
        } else if RMW_METHODS.contains(&method.as_str()) {
            2
        } else {
            return;
        };
        let Some(ordering) = args.iter().find_map(ordering_of) else {
            return; // not an atomic access (e.g. RunCache::store)
        };
        let Some(name) = receiver_name(recv) else {
            return;
        };
        let uses = atomics.entry(name).or_default();
        uses.site.get_or_insert_with(|| (rel.to_string(), *span));
        match kind {
            0 => uses.loads.insert(ordering),
            1 => uses.stores.insert(ordering),
            _ => uses.rmws.insert(ordering),
        };
    });
}

/// `Ordering::Relaxed` / bare `Relaxed` argument → the ordering name.
fn ordering_of(e: &Expr) -> Option<String> {
    if let Expr::Path { segments, .. } = e {
        let last = segments.last()?;
        if ORDERINGS.contains(&last.as_str())
            && (segments.len() == 1 || segments.iter().any(|s| s == "Ordering"))
        {
            return Some(last.clone());
        }
    }
    None
}

/// Coherence rules for one atomic's observed orderings.
fn check_atomic_protocol(name: &str, uses: &AtomicUses, out: &mut Vec<Diagnostic>) {
    let Some((rel, span)) = &uses.site else {
        return;
    };
    let release_write = uses.stores.contains("Release")
        || uses.rmws.contains("Release")
        || uses.rmws.contains("AcqRel");
    let acquire_read = uses.loads.contains("Acquire")
        || uses.rmws.contains("Acquire")
        || uses.rmws.contains("AcqRel");
    let diag = |msg: String| Diagnostic {
        rule: "lock-discipline",
        severity: Severity::Deny,
        file: rel.clone(),
        line: span.line,
        column: span.column,
        message: msg,
    };
    if release_write && !uses.loads.is_empty() && !acquire_read && !uses.loads.contains("SeqCst") {
        out.push(diag(format!(
            "atomic `{name}` is written with Release but read only with \
             {:?} — a Release store publishes nothing to a Relaxed load; \
             pair it with Acquire loads or relax the store",
            uses.loads
        )));
    } else if acquire_read
        && (!uses.stores.is_empty() || !uses.rmws.is_empty())
        && !release_write
        && !uses.stores.contains("SeqCst")
        && !uses.rmws.contains("SeqCst")
    {
        out.push(diag(format!(
            "atomic `{name}` is read with Acquire but written only with \
             {:?} — an Acquire load synchronizes with nothing unless some \
             write releases; use Release writes or relax the load",
            if uses.stores.is_empty() {
                &uses.rmws
            } else {
                &uses.stores
            }
        )));
    }
}
