//! Pass 6 — `thread-escape` (deny).
//!
//! `core::schedule::run_indexed` is the workspace's one thread-spawn
//! point (the lint thread-spawn scan enforces that), so every closure
//! handed to it crosses a thread boundary. rustc's `Sync` bounds catch
//! most races at compile time, but two classes of capture survive the
//! type check and still break the determinism contract ROADMAP item 1
//! depends on:
//!
//! - interior-mutability state (`RefCell`, `Cell`, `Rc`, `UnsafeCell`,
//!   raw pointers) reached through an outer `&` — `Sync` wrappers or
//!   `unsafe impl`s can smuggle these across, and future shard spawn
//!   points may take `dyn`-erased tasks where rustc sees nothing;
//! - `&mut` parameters captured by reference, which a sharded engine
//!   would hand to several workers at once.
//!
//! The pass finds every call to a spawn point, computes each closure
//! argument's free-identifier set (via the expression parser's capture
//! analysis), and denies captures whose local binding is typed or
//! initialized with a risky type. A justified
//! `// xtask-analyze: allow(thread-escape) — <why>` marker is the
//! escape hatch when the capture is provably synchronized.

use std::collections::BTreeMap;

use syn::{Expr, Token};

use crate::analyze::{for_each_fn, Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

pub struct ThreadEscape;

/// Callee names treated as thread-boundary spawn points: the cell
/// scheduler's fan-out, plus the scoped per-shard workers of the
/// intra-run engine (`noc::shard::run_sharded`).
pub const SPAWN_POINTS: [&str; 2] = ["run_indexed", "spawn"];

/// Type names whose capture across a thread boundary is denied.
const RISKY_TYPES: [&str; 5] = ["RefCell", "Cell", "UnsafeCell", "Rc", "OnceCell"];

impl Pass for ThreadEscape {
    fn id(&self) -> &'static str {
        "thread-escape"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            for_each_fn(file, true, &mut |fr| {
                let Some(body) = &fr.item.body else { return };
                let block = syn::parse_block(body);
                let risky = risky_bindings(fr.item, &block);
                if risky.is_empty() {
                    return;
                }
                syn::walk_block_exprs(&block, &mut |e| {
                    let (callee_is_spawn, args) = match e {
                        Expr::Call { callee, args, .. } => match &**callee {
                            Expr::Path { segments, .. } => (
                                segments
                                    .last()
                                    .is_some_and(|s| SPAWN_POINTS.contains(&s.as_str())),
                                args,
                            ),
                            _ => (false, args),
                        },
                        Expr::MethodCall { method, args, .. } => {
                            (SPAWN_POINTS.contains(&method.as_str()), args)
                        }
                        _ => return,
                    };
                    if !callee_is_spawn {
                        return;
                    }
                    for arg in args {
                        let Expr::Closure {
                            params, body, span, ..
                        } = arg
                        else {
                            continue;
                        };
                        let bound = params.iter().cloned().collect();
                        for captured in syn::free_idents(body, &bound) {
                            if let Some(why) = risky.get(&captured) {
                                out.push(Diagnostic {
                                    rule: "thread-escape",
                                    severity: Severity::Deny,
                                    file: file.rel.clone(),
                                    line: span.line,
                                    column: span.column,
                                    message: format!(
                                        "closure passed to a thread spawn point captures \
                                         `{captured}` ({why}) in `{}` — single-threaded \
                                         interior mutability crossing a thread boundary \
                                         breaks the bit-identical-parallelism contract; \
                                         share through the scheduler's indexed slots or an \
                                         atomic/lock, or justify with `// xtask-analyze: \
                                         allow(thread-escape) — <why>`",
                                        fr.qual_name()
                                    ),
                                });
                            }
                        }
                    }
                });
            });
        }
    }
}

/// Bindings in scope whose type makes a cross-thread capture risky:
/// parameters and `let` bindings annotated with (or initialized from) a
/// [`RISKY_TYPES`] constructor, plus `&mut` reference parameters.
fn risky_bindings(func: &syn::ItemFn, block: &syn::Block) -> BTreeMap<String, String> {
    let mut risky = BTreeMap::new();
    for p in &func.sig.inputs {
        let Some(name) = &p.name else { continue };
        if let Some(ty) = risky_type(&p.ty) {
            risky.insert(name.clone(), format!("parameter typed `{ty}`"));
        } else if is_mut_ref(&p.ty) {
            risky.insert(name.clone(), "a `&mut` parameter".to_string());
        }
    }
    collect_risky_lets(block, &mut risky);
    risky
}

fn collect_risky_lets(block: &syn::Block, risky: &mut BTreeMap<String, String>) {
    for stmt in &block.stmts {
        let syn::Stmt::Let {
            idents, ty, init, ..
        } = stmt
        else {
            if let syn::Stmt::Expr(e) = stmt {
                syn::walk_exprs(e, &mut |e| {
                    if let Expr::Block(b) = e {
                        collect_risky_lets(b, risky);
                    }
                });
            }
            continue;
        };
        let reason = ty
            .as_deref()
            .and_then(risky_type)
            .map(|t| format!("binding annotated `{t}`"))
            .or_else(|| {
                init.as_ref().and_then(|e| {
                    constructor_type(e).map(|t| format!("binding initialized from `{t}::…`"))
                })
            });
        if let Some(reason) = reason {
            for id in idents {
                risky.insert(id.clone(), reason.clone());
            }
        }
        if let Some(init) = init {
            syn::walk_exprs(init, &mut |e| {
                if let Expr::Block(b) = e {
                    collect_risky_lets(b, risky);
                }
            });
        }
    }
}

/// The risky type name mentioned in a type-annotation token run, if any
/// — but not through a `&`/`Arc` of atomics (those are the sanctioned
/// sharing forms and never match RISKY_TYPES anyway).
fn risky_type(ty: &[Token]) -> Option<&'static str> {
    let mut hit = None;
    syn::walk_tokens(ty, &mut |t| {
        if let Some(id) = t.ident() {
            if let Some(&r) = RISKY_TYPES.iter().find(|&&r| r == id) {
                hit.get_or_insert(r);
            }
        }
    });
    // Raw pointers: `*mut T` / `*const T`.
    if hit.is_none() {
        for (i, t) in ty.iter().enumerate() {
            if t.is_punct("*")
                && matches!(
                    ty.get(i + 1).and_then(Token::ident),
                    Some("mut") | Some("const")
                )
            {
                return Some("raw pointer");
            }
        }
    }
    hit
}

/// True for `&mut T` annotations.
fn is_mut_ref(ty: &[Token]) -> bool {
    ty.first().is_some_and(|t| t.is_punct("&")) && ty.get(1).and_then(Token::ident) == Some("mut")
}

/// `RefCell::new(..)`-style initializer → `RefCell`.
fn constructor_type(e: &Expr) -> Option<&'static str> {
    match e {
        Expr::Call { callee, .. } => match &**callee {
            Expr::Path { segments, .. } => segments
                .iter()
                .find_map(|s| RISKY_TYPES.iter().find(|&&r| r == s).copied()),
            _ => None,
        },
        _ => None,
    }
}
