//! Pass 5 — `float-compare` (warn).
//!
//! Exact `==` / `!=` on floating-point values in the reporting and
//! statistics code is almost always a latent bug: the quantities are
//! accumulated sums, ratios, or model outputs whose bit patterns depend
//! on summation order. The pass is scoped to the report/stats surface
//! (experiments tables, stats/histogram/observation, energy/DSENT
//! models, ML metrics) — elsewhere float equality can be a legitimate
//! sentinel check and the cache layer round-trips bit patterns on
//! purpose.
//!
//! Detection is token-local: a `==`/`!=` whose either operand is a
//! float literal or an identifier locally typed `f32`/`f64` (parameter
//! or annotated `let`).

use syn::{Tok, Token};

use crate::analyze::{for_each_fn, for_each_level, mentions_ident, typed_idents, Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

pub struct FloatCompare;

/// File-stem substrings that put a file in the report/stats scope.
const SCOPE_STEMS: [&str; 8] = [
    "stats",
    "histogram",
    "observation",
    "energy",
    "dsent",
    "metrics",
    "report",
    "table",
];

fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/experiments/")
        || rel
            .rsplit('/')
            .next()
            .is_some_and(|stem| SCOPE_STEMS.iter().any(|s| stem.contains(s)))
}

impl Pass for FloatCompare {
    fn id(&self) -> &'static str {
        "float-compare"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.files.iter().filter(|f| in_scope(&f.rel)) {
            for_each_fn(file, true, &mut |fr| {
                let Some(body) = &fr.item.body else { return };
                let floats = typed_idents(fr.item, &|ty| mentions_ident(ty, &["f32", "f64"]));
                for_each_level(body, &mut |level| {
                    for (i, t) in level.iter().enumerate() {
                        let op = match &t.tok {
                            Tok::Punct(p) if p == "==" || p == "!=" => p,
                            _ => continue,
                        };
                        let floaty = |tk: Option<&Token>| {
                            tk.is_some_and(|tk| match &tk.tok {
                                Tok::Float(_) => true,
                                Tok::Ident(id) => floats.contains(id),
                                _ => false,
                            })
                        };
                        if floaty(i.checked_sub(1).and_then(|p| level.get(p)))
                            || floaty(level.get(i + 1))
                        {
                            out.push(Diagnostic {
                                rule: "float-compare",
                                severity: Severity::Warn,
                                file: file.rel.clone(),
                                line: t.span.line,
                                column: t.span.column,
                                message: format!(
                                    "exact `{op}` on a floating-point value in `{}` — \
                                     compare against a tolerance, or suppress with a \
                                     justification if bit-exactness is the point",
                                    fr.qual_name()
                                ),
                            });
                        }
                    }
                });
            });
        }
    }
}
