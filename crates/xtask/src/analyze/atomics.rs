//! Pass 3 — `atomic-ordering` (deny).
//!
//! `Ordering::Relaxed` gives no happens-before edges, so every use must
//! argue why none are needed. Exactly one module has that argument
//! baked into its design: the work-stealing cell scheduler
//! (`crates/core/src/schedule.rs`), whose injector counter is a pure
//! monotonic ticket — the module documents why relaxed is sufficient.
//! Everywhere else a `Ordering::Relaxed` token pair must carry a
//! justified `// xtask-analyze: allow(atomic-ordering) — <why>` marker,
//! which keeps the argument next to the code instead of in a reviewer's
//! head.
//!
//! The pass scans the raw token stream (not just function bodies) so
//! relaxed orderings in statics, consts, and macro arguments are seen
//! too.

use crate::analyze::{for_each_level, Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

pub struct AtomicOrdering;

impl Pass for AtomicOrdering {
    fn id(&self) -> &'static str {
        "atomic-ordering"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            // The scheduler's waiver lives in the shared exemption
            // table (diag::EXEMPTIONS) next to the lint thread-spawn
            // waiver; the lock-discipline pass still pair-checks its
            // orderings for internal consistency.
            if crate::diag::is_exempt("atomic-ordering", &file.rel) {
                continue;
            }
            // Lex the whole file: item-level token trees would miss
            // occurrences inside items the parser keeps verbatim.
            let Ok(tokens) = syn::lex(&file.src) else {
                continue; // the loader already reported the parse error
            };
            for_each_level(&tokens, &mut |level| {
                for (i, t) in level.iter().enumerate() {
                    if t.ident() == Some("Ordering")
                        && level.get(i + 1).is_some_and(|x| x.is_punct("::"))
                        && level.get(i + 2).and_then(|x| x.ident()) == Some("Relaxed")
                    {
                        out.push(Diagnostic {
                            rule: "atomic-ordering",
                            severity: Severity::Deny,
                            file: file.rel.clone(),
                            line: t.span.line,
                            column: t.span.column,
                            message: "`Ordering::Relaxed` outside the exempt scheduler module — \
                                 justify why no \
                                 happens-before edge is needed with `// xtask-analyze: \
                                 allow(atomic-ordering) — <why>`, or use Acquire/Release"
                                .to_string(),
                        });
                    }
                }
            });
        }
    }
}
