//! Workspace call graph over the expression-level AST.
//!
//! PR 5's panic-reachability pass built a per-crate, token-adjacency
//! call graph inline; the dataflow passes need the same reachability
//! primitive across several crates and with parsed (not token-matched)
//! call sites, so this module hoists it into a reusable structure.
//!
//! Resolution is by *simple name*: a call to `foo(..)`, `Type::foo(..)`
//! or `.foo(..)` is an edge to every in-scope function named `foo`.
//! That deliberately over-approximates (two unrelated `get`s alias) —
//! for taint-style passes over-approximation is the safe direction, and
//! the scope hook lets a pass trim the graph to the crates where the
//! precision/recall trade-off works (the engine crates; the CLI layer
//! in `experiments` is where env reads and wall clocks legitimately
//! live).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use syn::{Block, Delim, Expr, Tok};

use crate::analyze::{for_each_fn, SourceFile, Workspace};

/// One function node: where it is and what it calls.
pub struct FnNode {
    /// `Type::name` or bare `name`.
    pub qual: String,
    /// The unqualified name calls resolve against.
    pub simple: String,
    /// Root-relative file path.
    pub rel: String,
    /// Crate directory name.
    pub krate: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Simple names of everything this function calls.
    pub calls: BTreeSet<String>,
    /// The parsed body, for passes that walk reachable functions.
    pub body: Option<Block>,
}

/// Simple-name-resolved call graph over a subset of workspace files.
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    by_simple: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build from every file `scope` admits. Test functions and
    /// `#[cfg(test)]` modules are excluded — they are not part of any
    /// engine path.
    pub fn build(ws: &Workspace, scope: &dyn Fn(&SourceFile) -> bool) -> CallGraph {
        let mut nodes = Vec::new();
        for file in ws.files.iter().filter(|f| scope(f)) {
            for_each_fn(file, true, &mut |fr| {
                let body = fr.item.body.as_deref().map(syn::parse_block);
                let calls = body.as_ref().map(called_names).unwrap_or_default();
                nodes.push(FnNode {
                    qual: fr.qual_name(),
                    simple: fr.item.sig.ident.clone(),
                    rel: file.rel.clone(),
                    krate: file.krate.clone(),
                    line: fr.item.span.line,
                    calls,
                    body,
                });
            });
        }
        let by_simple = nodes.iter().enumerate().fold(
            BTreeMap::new(),
            |mut m: BTreeMap<String, Vec<usize>>, (i, n)| {
                m.entry(n.simple.clone()).or_default().push(i);
                m
            },
        );
        CallGraph { nodes, by_simple }
    }

    /// Indices of every function with this simple name.
    pub fn by_simple(&self, name: &str) -> &[usize] {
        self.by_simple.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Node indices reachable from any root matched by qualified or
    /// simple name, roots included.
    pub fn reachable_from(&self, roots: &[&str]) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| roots.contains(&n.qual.as_str()) || roots.contains(&n.simple.as_str()))
            .map(|(i, _)| i)
            .collect();
        while let Some(i) = queue.pop_front() {
            if !seen.insert(i) {
                continue;
            }
            for callee in &self.nodes[i].calls {
                for &j in self.by_simple(callee) {
                    if !seen.contains(&j) {
                        queue.push_back(j);
                    }
                }
            }
        }
        seen
    }
}

/// Simple names of every call in a block: parsed `Call`/`MethodCall`
/// expressions, plus `ident (…)` adjacency inside verbatim token runs
/// (macro arguments, struct-literal tails) so degraded parses still
/// contribute edges.
pub fn called_names(block: &Block) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    syn::walk_block_exprs(block, &mut |e| match e {
        Expr::Call { callee, .. } => {
            if let Expr::Path { segments, .. } = &**callee {
                if let Some(last) = segments.last() {
                    names.insert(last.clone());
                }
            }
        }
        Expr::MethodCall { method, .. } => {
            names.insert(method.clone());
        }
        Expr::Verbatim { tokens, .. } => {
            let mut scan = |level: &[syn::Token]| {
                for (i, t) in level.iter().enumerate() {
                    if let Some(id) = t.ident() {
                        if matches!(
                            level.get(i + 1).map(|n| &n.tok),
                            Some(Tok::Group(Delim::Paren, _))
                        ) {
                            names.insert(id.to_string());
                        }
                    }
                }
            };
            crate::analyze::for_each_level(tokens, &mut scan);
        }
        _ => {}
    });
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (krate, rel, src) in files {
            ws.add_source(*krate, *rel, (*src).to_string());
        }
        assert!(ws.parse_errors.is_empty(), "{:?}", ws.parse_errors);
        ws
    }

    #[test]
    fn reachability_follows_calls_across_files() {
        let ws = ws(&[
            (
                "noc",
                "crates/noc/src/a.rs",
                "pub fn root() { helper(); }\n",
            ),
            (
                "core",
                "crates/core/src/b.rs",
                "pub fn helper() { leaf(); }\npub fn leaf() {}\npub fn unrelated() {}\n",
            ),
        ]);
        let g = CallGraph::build(&ws, &|_| true);
        let reach = g.reachable_from(&["root"]);
        let names: Vec<&str> = reach.iter().map(|&i| g.nodes[i].simple.as_str()).collect();
        assert_eq!(names, vec!["root", "helper", "leaf"]);
    }

    #[test]
    fn scope_trims_the_graph() {
        let ws = ws(&[
            (
                "noc",
                "crates/noc/src/a.rs",
                "pub fn root() { helper(); }\n",
            ),
            (
                "experiments",
                "crates/experiments/src/b.rs",
                "pub fn helper() {}\n",
            ),
        ]);
        let g = CallGraph::build(&ws, &|f| f.krate != "experiments");
        let reach = g.reachable_from(&["root"]);
        assert_eq!(reach.len(), 1, "out-of-scope helper must not be a node");
    }

    #[test]
    fn method_calls_and_macro_args_are_edges() {
        let ws = ws(&[(
            "core",
            "crates/core/src/a.rs",
            "impl T { pub fn run(&self) { self.step(); println!(\"{}\", cost(1)); } }\n\
             impl T { pub fn step(&self) {} }\n\
             pub fn cost(x: u64) -> u64 { x }\n",
        )]);
        let g = CallGraph::build(&ws, &|_| true);
        let reach = g.reachable_from(&["T::run"]);
        let names: Vec<&str> = reach.iter().map(|&i| g.nodes[i].simple.as_str()).collect();
        assert!(names.contains(&"step"), "method edge missing: {names:?}");
        assert!(names.contains(&"cost"), "macro-arg edge missing: {names:?}");
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let ws = ws(&[(
            "core",
            "crates/core/src/a.rs",
            "#[test]\nfn t() { root(); }\npub fn root() {}\n\
             #[cfg(test)]\nmod tests { pub fn helper() {} }\n",
        )]);
        let g = CallGraph::build(&ws, &|_| true);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].simple, "root");
    }
}
