//! Pass 9 — `unit-flow` (deny).
//!
//! The unit-consistency pass (PR 5) checks tick/cycle hygiene *inside*
//! one expression; this pass propagates unit facts *across* function
//! boundaries. Every function signature is summarized into unit
//! families — **Tick** (`SimTime`, `TickDelta`: base-clock ticks) vs
//! **Cycle** (`DomainCycles`: per-domain cycles) — for each parameter
//! and the return type. At every call site, an argument whose family is
//! known (a binding with a unit-typed annotation, or a call returning a
//! unit type) is checked against the parameter's family; passing
//! cycles where ticks are expected is exactly the bug class the sealed
//! newtypes exist to stop, and item-level analysis structurally cannot
//! see it once the values flow through helper functions.
//!
//! Resolution is conservative: a call is only checked when *every*
//! same-name summary of matching arity agrees on the parameter's
//! family, and an argument only carries a family the local evidence
//! proves. Unknown stays unknown; silence is never a finding.

use std::collections::BTreeMap;

use syn::{Expr, Token};

use crate::analyze::{for_each_fn, mentions_ident, typed_idents, Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

pub struct UnitFlow;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Base-clock ticks: `SimTime`, `TickDelta`.
    Tick,
    /// Per-domain cycles: `DomainCycles`.
    Cycle,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::Tick => "ticks",
            Family::Cycle => "domain cycles",
        }
    }
}

const TICK_TYPES: [&str; 2] = ["SimTime", "TickDelta"];
const CYCLE_TYPES: [&str; 1] = ["DomainCycles"];

/// Unit families of one function's parameters (self included, always
/// unknown) and return type.
struct Summary {
    simple: String,
    params: Vec<Option<Family>>,
    has_self: bool,
    ret: Option<Family>,
}

impl Pass for UnitFlow {
    fn id(&self) -> &'static str {
        "unit-flow"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        // Phase 1: summaries from the whole tree (the conversion fns in
        // crates/types anchor the return families).
        let mut by_simple: BTreeMap<String, Vec<Summary>> = BTreeMap::new();
        for file in &ws.files {
            for_each_fn(file, true, &mut |fr| {
                let has_self = fr
                    .item
                    .sig
                    .inputs
                    .first()
                    .is_some_and(|p| p.name.as_deref() == Some("self"));
                let s = Summary {
                    simple: fr.item.sig.ident.clone(),
                    params: fr
                        .item
                        .sig
                        .inputs
                        .iter()
                        .map(|p| family_of(&p.ty))
                        .collect(),
                    has_self,
                    ret: family_of(&fr.item.sig.output),
                };
                by_simple.entry(s.simple.clone()).or_default().push(s);
            });
        }

        // Phase 2: check call sites everywhere but crates/types (the
        // conversion implementations legitimately cross families).
        for file in &ws.files {
            if file.krate == "types" {
                continue;
            }
            for_each_fn(file, true, &mut |fr| {
                let Some(body) = &fr.item.body else { return };
                let tick_local =
                    typed_idents(fr.item, &|ty| is_unit_ty(ty, &TICK_TYPES, &CYCLE_TYPES));
                let cycle_local =
                    typed_idents(fr.item, &|ty| is_unit_ty(ty, &CYCLE_TYPES, &TICK_TYPES));
                let block = syn::parse_block(body);
                syn::walk_block_exprs(&block, &mut |e| {
                    let (name, args, recv, span) = match e {
                        Expr::Call { callee, args, span } => match &**callee {
                            Expr::Path { segments, .. } => match segments.last() {
                                Some(last) => (last.clone(), args, false, *span),
                                None => return,
                            },
                            _ => return,
                        },
                        Expr::MethodCall {
                            method, args, span, ..
                        } => (method.clone(), args, true, *span),
                        _ => return,
                    };
                    let Some(summaries) = by_simple.get(&name) else {
                        return;
                    };
                    for (ai, arg) in args.iter().enumerate() {
                        let Some(got) = arg_family(arg, &tick_local, &cycle_local, &by_simple)
                        else {
                            continue;
                        };
                        let Some(want) = expected_family(summaries, ai, recv, args.len()) else {
                            continue;
                        };
                        if got != want {
                            out.push(Diagnostic {
                                rule: "unit-flow",
                                severity: Severity::Deny,
                                file: file.rel.clone(),
                                line: span.line,
                                column: span.column,
                                message: format!(
                                    "argument {} of `{name}(..)` in `{}` carries {} but the \
                                     callee expects {} — convert through \
                                     DomainCycles::to_ticks / from_ticks_ceil so the unit \
                                     change is named",
                                    ai + 1,
                                    fr.qual_name(),
                                    got.name(),
                                    want.name()
                                ),
                            });
                        }
                    }
                });
            });
        }
    }
}

/// Family a parameter position expects, when every matching summary
/// agrees on it. `method` selects self-taking summaries (argument `ai`
/// maps to parameter `ai + 1`); free calls match by plain arity.
fn expected_family(summaries: &[Summary], ai: usize, method: bool, arity: usize) -> Option<Family> {
    let mut agreed: Option<Family> = None;
    for s in summaries {
        let pi = if method {
            if !s.has_self || s.params.len() != arity + 1 {
                return None; // a non-matching overload → too ambiguous
            }
            ai + 1
        } else {
            if s.params.len() != arity {
                return None;
            }
            ai
        };
        match s.params.get(pi).copied().flatten() {
            Some(f) => match agreed {
                Some(a) if a != f => return None,
                _ => agreed = Some(f),
            },
            // One overload with an unknown family at this position means
            // the call may be to it: stay silent.
            None => return None,
        }
    }
    agreed
}

/// Family of an argument expression, when the local evidence proves it.
fn arg_family(
    e: &Expr,
    tick_local: &std::collections::BTreeSet<String>,
    cycle_local: &std::collections::BTreeSet<String>,
    by_simple: &BTreeMap<String, Vec<Summary>>,
) -> Option<Family> {
    match e {
        Expr::Path { segments, .. } if segments.len() == 1 => {
            let id = &segments[0];
            if tick_local.contains(id) {
                Some(Family::Tick)
            } else if cycle_local.contains(id) {
                Some(Family::Cycle)
            } else {
                None
            }
        }
        Expr::Reference { expr, .. } => arg_family(expr, tick_local, cycle_local, by_simple),
        Expr::Call { callee, .. } => match &**callee {
            Expr::Path { segments, .. } => {
                // `SimTime::new(..)`-style: the type segment is proof
                // enough; otherwise fall back to agreeing summaries.
                if segments.iter().any(|s| TICK_TYPES.contains(&s.as_str())) {
                    return Some(Family::Tick);
                }
                if segments.iter().any(|s| CYCLE_TYPES.contains(&s.as_str())) {
                    return Some(Family::Cycle);
                }
                let name = segments.last()?;
                ret_family(by_simple.get(name)?)
            }
            _ => None,
        },
        Expr::MethodCall { method, .. } => ret_family(by_simple.get(method)?),
        _ => None,
    }
}

/// Return family shared by every summary of a name, if they all agree.
fn ret_family(summaries: &[Summary]) -> Option<Family> {
    let mut agreed: Option<Family> = None;
    for s in summaries {
        match s.ret {
            Some(f) => match agreed {
                Some(a) if a != f => return None,
                _ => agreed = Some(f),
            },
            None => return None,
        }
    }
    agreed
}

/// Family mentioned by a type-annotation token run; `None` when the
/// other family (or neither) appears, so conversion signatures like
/// `fn to_ticks(&self) -> SimTime` stay unambiguous per position.
fn family_of(ty: &[Token]) -> Option<Family> {
    let tick = mentions_ident(ty, &TICK_TYPES);
    let cycle = mentions_ident(ty, &CYCLE_TYPES);
    match (tick, cycle) {
        (true, false) => Some(Family::Tick),
        (false, true) => Some(Family::Cycle),
        _ => None,
    }
}

/// True when `ty` mentions one family's types and not the other's.
fn is_unit_ty(ty: &[Token], yes: &[&str], no: &[&str]) -> bool {
    mentions_ident(ty, yes) && !mentions_ident(ty, no)
}
