//! Pass 8 — `determinism-taint` (deny).
//!
//! The engine's contract — goldens in `tests/determinism.rs`, the run
//! cache's content addressing, ROADMAP item 1's bit-identical sharding
//! — all assume a simulation's output is a pure function of its config.
//! This pass walks the workspace call graph from the engine roots
//! (`Network::run`, `run_model`, `Campaign::run_cells`) and denies any
//! reachable function that touches a nondeterminism source:
//!
//! - wall clocks: `Instant::now`, `SystemTime`;
//! - ambient process state: `std::env` reads;
//! - hash-order iteration: `HashMap`/`HashSet` (engine code must use
//!   `BTreeMap`/`BTreeSet` or vectors — iteration order is seeded
//!   per-process since Rust 1.x and differs across runs);
//! - OS randomness: `thread_rng`/`rand::random` (seeded `XorShift64`
//!   streams are the sanctioned source).
//!
//! Scope: the engine crates only. The `experiments` CLI layer and the
//! bench harness legitimately read env vars and clocks *around* the
//! engine; the measurement region (`core/src/measure.rs`) is the one
//! in-scope module that reads clocks by design and carries a standing
//! waiver in the shared exemption table ([`crate::diag::EXEMPTIONS`]).

use syn::{Expr, Span};

use crate::analyze::callgraph::CallGraph;
use crate::analyze::{Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

pub struct DeterminismTaint;

/// Engine entry points the taint walk starts from.
pub const ROOTS: [&str; 3] = ["Network::run", "run_model", "Campaign::run_cells"];

/// Crates whose code can be reached from inside a simulation. The CLI
/// layer (`experiments`) and the bench harness sit outside the engine
/// region and are allowed ambient effects.
pub const ENGINE_CRATES: [&str; 8] = [
    "types", "topology", "power", "ml", "traffic", "noc", "core", "dozznoc",
];

impl Pass for DeterminismTaint {
    fn id(&self) -> &'static str {
        "determinism-taint"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let graph = CallGraph::build(ws, &|f| ENGINE_CRATES.contains(&f.krate.as_str()));
        let roots: Vec<&str> = ROOTS.to_vec();
        for i in graph.reachable_from(&roots) {
            let node = &graph.nodes[i];
            if crate::diag::is_exempt("determinism-taint", &node.rel) {
                continue;
            }
            let Some(body) = &node.body else { continue };
            for (span, what, fix) in taint_sites(body) {
                out.push(Diagnostic {
                    rule: "determinism-taint",
                    severity: Severity::Deny,
                    file: node.rel.clone(),
                    line: span.line,
                    column: span.column,
                    message: format!(
                        "{what} in `{}` (reachable from the engine roots {ROOTS:?}) — \
                         simulation output must be a pure function of its config or the \
                         determinism goldens and the content-addressed run cache both \
                         break; {fix}",
                        node.qual
                    ),
                });
            }
        }
    }
}

/// Every nondeterminism source in a body: `(site, what, fix)`.
pub fn taint_sites(block: &syn::Block) -> Vec<(Span, String, &'static str)> {
    let mut sites = Vec::new();
    syn::walk_block_exprs(block, &mut |e| {
        match e {
            Expr::Path { segments, .. } => {
                scan_segments(segments, e.span(), &mut sites);
            }
            Expr::MethodCall { method, span, .. } if method == "elapsed" => {
                // `.elapsed()` only exists on Instant/SystemTime;
                // catching it covers clocks smuggled in as values.
                sites.push((
                    *span,
                    "`.elapsed()` (a wall-clock read)".to_string(),
                    "thread timing through core::measure (exempt by design) and keep \
                     readings out of simulation state",
                ));
            }
            Expr::Verbatim { tokens, .. } => {
                // Degraded parses (macro args, struct literals) still
                // carry the token evidence.
                let mut segs: Vec<String> = Vec::new();
                let mut span = Span::default();
                syn::walk_tokens(tokens, &mut |t| {
                    if let Some(id) = t.ident() {
                        if segs.is_empty() {
                            span = t.span;
                        }
                        segs.push(id.to_string());
                    }
                });
                scan_segments(&segs, span, &mut sites);
            }
            _ => {}
        }
    });
    sites
}

fn scan_segments(segments: &[String], span: Span, sites: &mut Vec<(Span, String, &'static str)>) {
    for (i, s) in segments.iter().enumerate() {
        match s.as_str() {
            "Instant" | "SystemTime" => {
                sites.push((
                    span,
                    format!("`{s}` (a wall clock)"),
                    "thread timing through core::measure (exempt by design) and keep \
                     readings out of simulation state",
                ));
            }
            "HashMap" | "HashSet" => {
                sites.push((
                    span,
                    format!("`{s}` (seeded, run-varying iteration order)"),
                    "use BTreeMap/BTreeSet or an index-keyed Vec",
                ));
            }
            "thread_rng" | "random" => {
                sites.push((
                    span,
                    format!("`{s}` (OS-seeded randomness)"),
                    "draw from a seeded XorShift64 stream carried in the config",
                ));
            }
            "env" => {
                // `env::var(..)` / `std::env::var_os(..)`: the next
                // segment is the read.
                if matches!(
                    segments.get(i + 1).map(String::as_str),
                    Some("var") | Some("var_os") | Some("vars") | Some("vars_os")
                ) {
                    sites.push((
                        span,
                        "`std::env` read (ambient process state)".to_string(),
                        "read the variable at construction/CLI time and pass the value \
                         through the config",
                    ));
                }
            }
            _ => {}
        }
    }
}
