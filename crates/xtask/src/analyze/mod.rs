//! `cargo xtask analyze` — AST-level workspace analyzer.
//!
//! Parses every workspace crate with the vendored `syn` stand-in and
//! runs typed semantic passes over the item/token trees. Where
//! `cargo xtask lint`'s string scans see characters, these passes see
//! structure: token adjacency, function signatures, attributes, and an
//! intra-crate call graph. Ten passes ship (see the submodules):
//!
//! | rule               | severity       | what it catches                         |
//! |--------------------|----------------|-----------------------------------------|
//! | `unit-consistency` | deny           | raw-u64 escapes from sealed time types  |
//! | `panic-reachability` | deny/advisory | panics reachable from the sim hot path |
//! | `atomic-ordering`  | deny           | undocumented `Ordering::Relaxed`        |
//! | `must-use-builder` | warn           | builder fns missing `#[must_use]`       |
//! | `float-compare`    | warn           | `==`/`!=` on floats in report code      |
//! | `thread-escape`    | deny           | risky captures crossing spawn points    |
//! | `lock-discipline`  | deny           | lock-order cycles, incoherent atomics   |
//! | `determinism-taint`| deny           | clocks/env/hash-order in the engine     |
//! | `unit-flow`        | deny           | tick/cycle mixing across call sites     |
//! | `sync-facade`      | deny           | raw `std::sync`/`std::thread` outside the facade |
//!
//! The last four run on the expression-level AST (`syn::parse_block`)
//! and the workspace call graph (`callgraph`) — they gate the upcoming
//! sharded engine (ROADMAP item 1, DESIGN.md §9 pre-sharding
//! checklist).
//!
//! Findings flow through the shared diagnostics engine (`crate::diag`):
//! `// xtask-analyze: allow(<rule>) — <why>` suppressions, the
//! checked-in baseline (`crates/xtask/analyze-baseline.json`), and the
//! deny/warn exit gate.

pub mod atomics;
pub mod callgraph;
pub mod determinism;
pub mod escape;
pub mod float_cmp;
pub mod locks;
pub mod must_use;
pub mod panic_reach;
pub mod sync_facade;
pub mod unit_consistency;
pub mod unit_flow;

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use syn::{Delim, Item, ItemFn, Tok, Token};

use crate::diag::{apply_suppressions, Baseline, Diagnostic, Report, Severity};

/// Rule IDs the analyzer can emit; suppression markers must name one.
pub const ANALYZE_RULES: [&str; 12] = [
    "parse-error",
    "unit-consistency",
    "panic-reachability",
    "atomic-ordering",
    "must-use-builder",
    "float-compare",
    "thread-escape",
    "lock-discipline",
    "determinism-taint",
    "unit-flow",
    "sync-facade",
    "suppression-hygiene",
];

/// Default baseline location, workspace-root relative.
pub const BASELINE_REL: &str = "crates/xtask/analyze-baseline.json";

/// One parsed source file.
pub struct SourceFile {
    /// Root-relative forward-slash path.
    pub rel: String,
    /// Crate directory name (`types`, `noc`, …; the root crate is `dozznoc`).
    pub krate: String,
    pub src: String,
    pub ast: syn::File,
}

/// Every parsed file of the workspace (or a fixture subset).
#[derive(Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// Files that failed to parse, already shaped as diagnostics.
    pub parse_errors: Vec<Diagnostic>,
}

impl Workspace {
    /// Parse every `.rs` under `crates/*/src` (xtask itself excluded —
    /// its fixtures seed deliberately forbidden code) and the root `src/`.
    pub fn load(root: &Path) -> Workspace {
        let mut ws = Workspace::default();
        for rel in crate::scans::rust_sources(root) {
            let path = root.join(&rel);
            let src = match fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    ws.parse_errors.push(Diagnostic {
                        rule: "parse-error",
                        severity: Severity::Deny,
                        file: rel.clone(),
                        line: 0,
                        column: 0,
                        message: format!("unreadable: {e}"),
                    });
                    continue;
                }
            };
            ws.add_source(crate_of(&rel), rel, src);
        }
        ws
    }

    /// Parse one in-memory file into the workspace (fixtures, tests).
    pub fn add_source(&mut self, krate: impl Into<String>, rel: impl Into<String>, src: String) {
        let rel = rel.into();
        match syn::parse_file(&src) {
            Ok(ast) => self.files.push(SourceFile {
                rel,
                krate: krate.into(),
                src,
                ast,
            }),
            Err(e) => self.parse_errors.push(Diagnostic {
                rule: "parse-error",
                severity: Severity::Deny,
                file: rel,
                line: e.span.line,
                column: e.span.column,
                message: format!("parse error: {}", e.msg),
            }),
        }
    }
}

/// Crate directory name for a root-relative source path.
fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("dozznoc")
        .to_string()
}

/// One semantic pass over the parsed workspace.
pub trait Pass {
    /// Stable rule ID (also the suppression key).
    fn id(&self) -> &'static str;
    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// All shipped passes, in report order.
pub fn passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(unit_consistency::UnitConsistency),
        Box::new(panic_reach::PanicReachability),
        Box::new(atomics::AtomicOrdering),
        Box::new(must_use::MustUseBuilders),
        Box::new(float_cmp::FloatCompare),
        Box::new(escape::ThreadEscape),
        Box::new(locks::LockDiscipline),
        Box::new(determinism::DeterminismTaint),
        Box::new(unit_flow::UnitFlow),
        Box::new(sync_facade::SyncFacade),
    ]
}

/// Run every pass plus suppression and baseline filtering.
pub fn run(root: &Path) -> Result<Report, String> {
    let ws = Workspace::load(root);
    let baseline = Baseline::load(&root.join(BASELINE_REL))?;
    Ok(run_on(&ws, baseline))
}

/// Analyze an already-loaded workspace (fixtures use this directly).
pub fn run_on(ws: &Workspace, mut baseline: Baseline) -> Report {
    let mut findings = ws.parse_errors.clone();
    let mut report = Report::default();
    for pass in passes() {
        let started = std::time::Instant::now();
        pass.run(ws, &mut findings);
        report
            .timings
            .push((pass.id().to_string(), started.elapsed().as_secs_f64() * 1e3));
    }
    let findings = apply_suppressions(
        findings,
        &|rel| {
            ws.files
                .iter()
                .find(|f| f.rel == rel)
                .map(|f| f.src.clone())
        },
        &ANALYZE_RULES,
        &mut report,
    );
    let mut findings = baseline.filter(findings, &mut report);
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    report.findings = findings;
    report
}

// ---------------------------------------------------------------------------
// Shared walking helpers for the passes.

/// A function together with the impl/trait type it belongs to, if any.
pub struct FnRef<'a> {
    pub self_ty: Option<&'a str>,
    pub item: &'a ItemFn,
}

impl FnRef<'_> {
    /// `Type::name` or bare `name`.
    pub fn qual_name(&self) -> String {
        match self.self_ty {
            Some(t) => format!("{t}::{}", self.item.sig.ident),
            None => self.item.sig.ident.clone(),
        }
    }
}

/// Visit every function item in a file, recursing through impls and
/// inline modules. `#[cfg(test)]` modules and functions (and `#[test]`
/// functions) are skipped when `skip_tests` is set.
pub fn for_each_fn<'a>(file: &'a SourceFile, skip_tests: bool, f: &mut dyn FnMut(&FnRef<'a>)) {
    fn walk<'a>(
        items: &'a [Item],
        self_ty: Option<&'a str>,
        skip_tests: bool,
        f: &mut dyn FnMut(&FnRef<'a>),
    ) {
        for item in items {
            match item {
                Item::Fn(func) => {
                    let testish = func
                        .attrs
                        .iter()
                        .any(|a| a.path == "test" || a.is_cfg_test());
                    if !(skip_tests && testish) {
                        f(&FnRef {
                            self_ty,
                            item: func,
                        });
                    }
                }
                Item::Impl(imp) => walk(&imp.items, Some(&imp.self_ty), skip_tests, f),
                Item::Mod(m) => {
                    if skip_tests && m.attrs.iter().any(|a| a.is_cfg_test()) {
                        continue;
                    }
                    if let Some(items) = &m.items {
                        walk(items, None, skip_tests, f);
                    }
                }
                Item::Verbatim(_) => {}
            }
        }
    }
    walk(&file.ast.items, None, skip_tests, f);
}

/// True when any identifier in the token tree matches one of `names`.
pub fn mentions_ident(tokens: &[Token], names: &[&str]) -> bool {
    let mut found = false;
    syn::walk_tokens(tokens, &mut |t| {
        if let Some(id) = t.ident() {
            if names.contains(&id) {
                found = true;
            }
        }
    });
    found
}

/// Identifiers bound with a type matching `matches_ty` inside a
/// function: typed parameters plus `let [mut] name: Ty` bindings at any
/// nesting depth. Used by the unit-consistency and float-compare passes
/// for lightweight local type tracking.
pub fn typed_idents(func: &ItemFn, matches_ty: &dyn Fn(&[Token]) -> bool) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for p in &func.sig.inputs {
        if let Some(name) = &p.name {
            if matches_ty(&p.ty) {
                set.insert(name.clone());
            }
        }
    }
    let Some(body) = &func.body else { return set };

    fn scan_lets(
        tokens: &[Token],
        matches_ty: &dyn Fn(&[Token]) -> bool,
        set: &mut BTreeSet<String>,
    ) {
        let mut i = 0usize;
        while i < tokens.len() {
            if let Tok::Group(_, inner) = &tokens[i].tok {
                scan_lets(inner, matches_ty, set);
                i += 1;
                continue;
            }
            if tokens[i].ident() == Some("let") {
                let mut j = i + 1;
                if tokens.get(j).and_then(Token::ident) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = tokens.get(j).and_then(Token::ident) {
                    if tokens.get(j + 1).is_some_and(|t| t.is_punct(":")) {
                        // Type annotation: tokens until `=` or `;`.
                        let start = j + 2;
                        let mut end = start;
                        while end < tokens.len()
                            && !tokens[end].is_punct("=")
                            && !tokens[end].is_punct(";")
                        {
                            end += 1;
                        }
                        if matches_ty(&tokens[start..end]) {
                            set.insert(name.to_string());
                        }
                        i = end;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    scan_lets(body, matches_ty, &mut set);
    set
}

/// Flattened view used by adjacency scans: yields each token level with
/// its slice so passes can look at same-level neighbours.
pub fn for_each_level<'a>(tokens: &'a [Token], f: &mut dyn FnMut(&'a [Token])) {
    f(tokens);
    for t in tokens {
        if let Tok::Group(_, inner) = &t.tok {
            for_each_level(inner, f);
        }
    }
}

/// The trailing identifiers of a token's "operand context": for an
/// ident, itself; for a group, the identifiers inside it. Used by the
/// unit-consistency mixing check to look through parentheses.
pub fn operand_idents(t: &Token) -> Vec<&str> {
    match &t.tok {
        Tok::Ident(s) => vec![s.as_str()],
        Tok::Group(Delim::Paren, inner) => {
            let mut ids = Vec::new();
            syn::walk_tokens(inner, &mut |t| {
                if let Some(id) = t.ident() {
                    ids.push(id);
                }
            });
            ids
        }
        _ => Vec::new(),
    }
}
