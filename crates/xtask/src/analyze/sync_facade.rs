//! Pass 10 — `sync-facade` (deny).
//!
//! The model checker (`cargo xtask model-check`) can only permute
//! interleavings at operations it can see, and it sees exactly the
//! `dozz_sync` facade: `Mutex`, the atomics, `thread::{scope, spawn,
//! yield_now}`, `hint::spin_loop`. A raw `std::sync` primitive anywhere
//! else in the workspace is a synchronization point the checker silently
//! skips — its harness results would claim coverage they do not have.
//! This pass turns that coverage guarantee into a build gate: outside
//! `crates/sync` (the facade's own implementation necessarily wraps the
//! std primitives) every use of
//!
//! - `std::sync::<anything>` (Mutex, atomics, Condvar, Barrier, mpsc, …),
//! - `std::thread::{spawn, scope, Builder, yield_now, sleep, park}`,
//! - `std::hint::spin_loop`
//!
//! is denied. `std::thread::{available_parallelism, current, panicking}`
//! stay allowed — they observe the host, create no synchronization, and
//! the facade re-exports them untouched. `std::panic` is likewise out of
//! scope (unwinding is modeled at thread boundaries, not call sites).
//!
//! The scan runs on the lexed token stream, so `use` imports, fully
//! qualified calls, and macro arguments are all seen. Its known blind
//! spot — `use std::thread;` followed by unqualified `thread::spawn` —
//! is closed by the `thread-spawn` string scan in `cargo xtask lint`,
//! which matches the unqualified form (and whose exemption table this
//! pass shares; `diag::EXEMPTIONS` keeps the two from drifting).

use crate::analyze::{for_each_level, Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

/// `std::thread` members that synchronize or create threads. Everything
/// not in [`THREAD_OBSERVERS`] is treated as denied even if unlisted
/// here — new std surface should default to "route through the facade".
const THREAD_OBSERVERS: [&str; 3] = ["available_parallelism", "current", "panicking"];

pub struct SyncFacade;

impl Pass for SyncFacade {
    fn id(&self) -> &'static str {
        "sync-facade"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            // The facade crate is the one place allowed to touch the
            // std primitives: it is what makes them model-visible.
            if file.krate == "sync" {
                continue;
            }
            // The model-check runtime sits *below* the facade (it
            // implements the instrumentation the facade calls into);
            // its own state lock/condvar must be real std primitives.
            if crate::diag::is_exempt("sync-facade", &file.rel) {
                continue;
            }
            let Ok(tokens) = syn::lex(&file.src) else {
                continue; // the loader already reported the parse error
            };
            for_each_level(&tokens, &mut |level| {
                for (i, t) in level.iter().enumerate() {
                    if t.ident() != Some("std")
                        || !level.get(i + 1).is_some_and(|x| x.is_punct("::"))
                    {
                        continue;
                    }
                    let module = level.get(i + 2).and_then(|x| x.ident());
                    let member = (level.get(i + 3).is_some_and(|x| x.is_punct("::")))
                        .then(|| level.get(i + 4).and_then(|x| x.ident()))
                        .flatten();
                    let denied = match module {
                        Some("sync") => Some("std::sync"),
                        Some("hint") if member == Some("spin_loop") => Some("std::hint::spin_loop"),
                        Some("thread") => match member {
                            Some(m) if THREAD_OBSERVERS.contains(&m) => None,
                            // A bare `use std::thread;` gives local
                            // unqualified access to spawn/scope — deny
                            // the import itself.
                            _ => Some("std::thread"),
                        },
                        _ => None,
                    };
                    if let Some(what) = denied {
                        out.push(Diagnostic {
                            rule: "sync-facade",
                            severity: Severity::Deny,
                            file: file.rel.clone(),
                            line: t.span.line,
                            column: t.span.column,
                            message: format!(
                                "`{what}` outside crates/sync — the model checker cannot \
                                 see raw std primitives, so this synchronization point \
                                 escapes `cargo xtask model-check`; use the `dozz_sync` \
                                 facade (or `// xtask-analyze: allow(sync-facade) — <why>` \
                                 with the coverage argument)"
                            ),
                        });
                    }
                }
            });
        }
    }
}
