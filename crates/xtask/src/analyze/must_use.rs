//! Pass 4 — `must-use-builder` (warn).
//!
//! The config builders are by-value: `cfg.try_with_radix(6)?` returns
//! the *updated* builder and leaves the receiver consumed. Calling one
//! and dropping the result is therefore always a bug — the update is
//! silently lost — but rustc only warns when the function is marked
//! `#[must_use]` (or returns `Result`, whose own must-use triggers on
//! the outer type only). This pass requires the attribute on every
//! builder-shaped method: a `with_*` / `try_with_*` method in an impl
//! block whose return type mentions `Self` (or the impl type), with or
//! without a `Result` wrapper.

use crate::analyze::{for_each_fn, mentions_ident, Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

pub struct MustUseBuilders;

impl Pass for MustUseBuilders {
    fn id(&self) -> &'static str {
        "must-use-builder"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            for_each_fn(file, true, &mut |fr| {
                let name = fr.item.sig.ident.as_str();
                if !(name.starts_with("with_") || name.starts_with("try_with_")) {
                    return;
                }
                // Only impl-block methods: a free `with_capacity`-style
                // helper is not a builder chain.
                let Some(self_ty) = fr.self_ty else { return };
                if fr.item.body.is_none() {
                    return; // trait declaration — the impls are checked
                }
                let returns_self = mentions_ident(&fr.item.sig.output, &["Self", self_ty]);
                if !returns_self {
                    return;
                }
                if fr.item.attrs.iter().any(|a| a.path == "must_use") {
                    return;
                }
                out.push(Diagnostic {
                    rule: "must-use-builder",
                    severity: Severity::Warn,
                    file: file.rel.clone(),
                    line: fr.item.span.line,
                    column: fr.item.span.column,
                    message: format!(
                        "builder `{}` returns the updated `{self_ty}` but is not \
                         `#[must_use]` — a dropped return value silently discards the \
                         update (use `#[must_use = \"...\"]` on Result returns to avoid \
                         clippy::double_must_use)",
                        fr.qual_name()
                    ),
                });
            });
        }
    }
}
