//! Pass 2 — `panic-reachability` (deny / advisory).
//!
//! Builds an intra-crate call graph per simulator crate by simple-name
//! resolution (an identifier directly followed by a call-argument group
//! is an edge to every same-crate function of that name — a deliberate
//! over-approximation) and walks it from the hot-path roots:
//!
//! - `Network::run` in `crates/noc` (the event loop),
//! - `run_model` in `crates/core` (the per-benchmark driver), and
//! - `PolicyRegistry::build` in `crates/core` (every registered policy
//!   factory — builders run inside campaign workers, so a panicking
//!   factory aborts a whole shard exactly like a panicking simulator).
//!
//! In every reachable function body, `panic!` and `.unwrap()` are denied
//! (a panic mid-run aborts a whole campaign shard), while `.expect(..)`
//! and slice indexing are reported as advisories — both are allowed when
//! they name or embody a structural invariant, but new ones deserve
//! eyes. This pass supersedes the old string scan over the two hot-path
//! files: it follows calls instead of trusting a module list.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use syn::{Delim, ItemFn, Tok, Token};

use crate::analyze::{for_each_fn, for_each_level, Pass, Workspace};
use crate::diag::{Diagnostic, Severity};

pub struct PanicReachability;

/// (crate, root) pairs the graph is walked from. A root is matched by
/// its qualified `Type::name` or bare name.
const ROOTS: [(&str, &str); 3] = [
    ("noc", "Network::run"),
    ("core", "run_model"),
    ("core", "PolicyRegistry::build"),
];

/// Identifier keywords that can precede a `[` without it being indexing.
const NON_INDEX_PREV: [&str; 8] = [
    "if", "match", "while", "return", "in", "else", "break", "loop",
];

struct Node<'a> {
    qual: String,
    simple: &'a str,
    rel: &'a str,
    item: &'a ItemFn,
}

impl Pass for PanicReachability {
    fn id(&self) -> &'static str {
        "panic-reachability"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (krate, root) in ROOTS {
            let mut nodes: Vec<Node<'_>> = Vec::new();
            for file in ws.files.iter().filter(|f| f.krate == krate) {
                for_each_fn(file, true, &mut |fr| {
                    nodes.push(Node {
                        qual: fr.qual_name(),
                        simple: &fr.item.sig.ident,
                        rel: &file.rel,
                        item: fr.item,
                    });
                });
            }
            let by_simple: BTreeMap<&str, Vec<usize>> =
                nodes
                    .iter()
                    .enumerate()
                    .fold(BTreeMap::new(), |mut m, (i, n)| {
                        m.entry(n.simple).or_default().push(i);
                        m
                    });

            // BFS from the root(s) along simple-name call edges.
            let mut reachable: BTreeSet<usize> = BTreeSet::new();
            let mut queue: VecDeque<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.qual == root || n.simple == root)
                .map(|(i, _)| i)
                .collect();
            while let Some(i) = queue.pop_front() {
                if !reachable.insert(i) {
                    continue;
                }
                let Some(body) = &nodes[i].item.body else {
                    continue;
                };
                for callee in call_targets(body) {
                    for &j in by_simple.get(callee.as_str()).into_iter().flatten() {
                        if !reachable.contains(&j) {
                            queue.push_back(j);
                        }
                    }
                }
            }

            for &i in &reachable {
                let n = &nodes[i];
                let Some(body) = &n.item.body else { continue };
                scan_reachable_body(body, n, root, out);
            }
        }
    }
}

/// Simple names of everything called in a body: any identifier directly
/// followed by a parenthesized argument group. Macro invocations have a
/// `!` between name and group, so they never match.
fn call_targets(body: &[Token]) -> BTreeSet<String> {
    let mut targets = BTreeSet::new();
    for_each_level(body, &mut |level| {
        for (i, t) in level.iter().enumerate() {
            if let Some(id) = t.ident() {
                if matches!(
                    level.get(i + 1).map(|n| &n.tok),
                    Some(Tok::Group(Delim::Paren, _))
                ) && !NON_INDEX_PREV.contains(&id)
                {
                    targets.insert(id.to_string());
                }
            }
        }
    });
    targets
}

fn scan_reachable_body(body: &[Token], n: &Node<'_>, root: &str, out: &mut Vec<Diagnostic>) {
    let mut indexing = 0usize;
    let mut first_index_span = syn::Span::default();
    for_each_level(body, &mut |level| {
        for (i, t) in level.iter().enumerate() {
            match &t.tok {
                // `.unwrap()` / `.expect(..)` — the leading `.` rules out
                // free functions that happen to share the name.
                Tok::Ident(id) if i > 0 && level[i - 1].is_punct(".") => {
                    let is_call = matches!(
                        level.get(i + 1).map(|x| &x.tok),
                        Some(Tok::Group(Delim::Paren, _))
                    );
                    if !is_call {
                        continue;
                    }
                    if id == "unwrap" || id == "unwrap_err" {
                        out.push(diag(
                            n.rel,
                            t.span,
                            Severity::Deny,
                            format!(
                                "`.{id}()` in `{}` (reachable from `{root}`) — a panic here \
                                 aborts the whole campaign shard; name the invariant with \
                                 `.expect(..)` or handle the None/Err arm",
                                n.qual
                            ),
                        ));
                    } else if id == "expect" || id == "expect_err" {
                        out.push(diag(
                            n.rel,
                            t.span,
                            Severity::Advisory,
                            format!(
                                "`.{id}(..)` in `{}` (reachable from `{root}`) — allowed \
                                 when it names a structural invariant; keep the message \
                                 specific",
                                n.qual
                            ),
                        ));
                    }
                }
                // `panic!(..)` and friends.
                Tok::Ident(id)
                    if (id == "panic" || id == "todo" || id == "unimplemented")
                        && level.get(i + 1).is_some_and(|x| x.is_punct("!")) =>
                {
                    out.push(diag(
                        n.rel,
                        t.span,
                        Severity::Deny,
                        format!(
                            "`{id}!` in `{}` (reachable from `{root}`) — return a SimError \
                             instead of aborting the simulation",
                            n.qual
                        ),
                    ));
                }
                // Slice indexing: `expr[..]` where the previous token ends
                // an expression. Aggregated per function to keep the
                // advisory readable.
                Tok::Group(Delim::Bracket, _) if i > 0 => {
                    let prev = &level[i - 1];
                    let expr_end = match &prev.tok {
                        Tok::Ident(id) => !NON_INDEX_PREV.contains(&id.as_str()),
                        Tok::Group(Delim::Paren | Delim::Bracket, _) => true,
                        _ => false,
                    };
                    if expr_end {
                        if indexing == 0 {
                            first_index_span = t.span;
                        }
                        indexing += 1;
                    }
                }
                _ => {}
            }
        }
    });
    if indexing > 0 {
        out.push(diag(
            n.rel,
            first_index_span,
            Severity::Advisory,
            format!(
                "{indexing} slice-indexing site(s) in `{}` (reachable from `{root}`) — \
                 bounds are expected to hold by construction; prefer `get` when they are \
                 not",
                n.qual
            ),
        ));
    }
}

fn diag(rel: &str, span: syn::Span, severity: Severity, message: String) -> Diagnostic {
    Diagnostic {
        rule: "panic-reachability",
        severity,
        file: rel.to_string(),
        line: span.line,
        column: span.column,
        message,
    }
}
