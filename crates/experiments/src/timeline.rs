//! `dozz-repro timeline` — per-router mode/energy time-series for one
//! (benchmark, policy) cell, captured through the telemetry subsystem.
//!
//! Runs the selected policy over the selected benchmark trace with an
//! in-memory [`TimelineSink`], then writes two CSVs under `--out`:
//!
//! * `timeline_<bench>_<policy>.csv` — one row per router per epoch:
//!   mode, IBU, off-fraction, flit counts, and the energy spent in that
//!   epoch split by component;
//! * `timeline_<bench>_<policy>_transitions.csv` — one row per power
//!   transition (gate-off, wakeup start/done, mode switch) with its
//!   tick timestamp.
//!
//! `--model` accepts any registered policy spec — paper slugs and
//! aliases (`dozznoc`, `power-gated`, …) as well as parameterized
//! plug-ins like `rl-buffer?epsilon=0.2&seed=9`. Unknown names list the
//! full registry instead of panicking.

use dozznoc_core::{run_policy_with_telemetry, ModelSuite, PolicyRegistry, PolicySpec};
use dozznoc_ml::{FeatureSet, TrainedModel};
use dozznoc_noc::TimelineSink;
use dozznoc_topology::Topology;
use dozznoc_traffic::{Benchmark, TraceGenerator, ALL_BENCHMARKS};

use crate::ctx::{banner, Ctx};
use crate::suite::suite_for;

fn parse_bench(name: &str) -> Benchmark {
    ALL_BENCHMARKS
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let known: Vec<&str> = ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
            panic!("unknown benchmark `{name}` (known: {})", known.join(", "))
        })
}

/// Parse `--model` against the policy registry, exiting with the full
/// name/alias listing on failure (the registry's `PolicyError` renders
/// it).
fn parse_policy(name: &str) -> PolicySpec {
    match PolicyRegistry::global().parse(name) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// A spec slug flattened for filenames: `rl-buffer?epsilon=0.2` has
/// `?`/`=`/`&`, which shells and filesystems mangle.
fn file_slug(spec: &PolicySpec) -> String {
    spec.slug()
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '-' | '_' | '.' => c,
            _ => '-',
        })
        .collect()
}

/// A suite of do-nothing models for the non-ML policies, so `timeline
/// --model baseline` does not pay for training it will never consult.
fn untrained_suite() -> ModelSuite {
    let zero = TrainedModel::new(FeatureSet::Reduced5, vec![0.0; 5], 500, 0.0, 0.0);
    ModelSuite {
        dozznoc: zero.clone(),
        lead: zero.clone(),
        turbo: zero,
    }
}

/// Capture and write the time-series for one (benchmark, policy) cell.
pub fn run(ctx: &Ctx) {
    let bench = parse_bench(ctx.bench.as_deref().unwrap_or("blackscholes"));
    let registry = PolicyRegistry::global();
    let spec = parse_policy(ctx.model.as_deref().unwrap_or("dozznoc"));
    let factory = registry
        .resolve(spec.name())
        .expect("parsed specs resolve by construction");

    banner(&format!(
        "Timeline — {} on {} (8×8 mesh, epoch 500)",
        factory.label(),
        bench.name()
    ));
    let topo = Topology::mesh8x8();
    let suite = if factory.uses_ml() {
        suite_for(ctx, topo, 500, FeatureSet::Reduced5)
    } else {
        untrained_suite()
    };
    let trace = TraceGenerator::new(topo)
        .with_duration_ns(ctx.duration_ns())
        .with_seed(ctx.seed)
        .generate(bench);

    let mut sink = TimelineSink::new();
    let cfg = dozznoc_noc::NocConfig::paper(topo);
    let report = match run_policy_with_telemetry(cfg, &trace, &spec, registry, &suite, &mut sink) {
        Ok(report) => report,
        Err(e) => {
            // Bad parameter values surface here (the name was already
            // validated by parse_policy).
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let epoch_rows: Vec<String> = sink
        .epochs
        .iter()
        .map(|s| {
            format!(
                "{},{},{},{},{:.6},{:.6},{},{},{},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}",
                s.router.idx(),
                s.epoch,
                s.cycles,
                s.mode.index(),
                s.ibu,
                s.off_fraction,
                s.flits_injected,
                s.flits_ejected,
                s.hops,
                s.energy.static_j,
                s.energy.dynamic_j,
                s.energy.ml_j,
                s.energy.transition_j,
                s.energy.total_j(),
            )
        })
        .collect();
    ctx.write_csv(
        &format!("timeline_{}_{}.csv", bench.name(), file_slug(&spec)),
        "router,epoch,cycles,mode,ibu,off_fraction,flits_injected,flits_ejected,hops,static_j,dynamic_j,ml_j,transition_j,total_j",
        &epoch_rows,
    );

    let transition_rows: Vec<String> = sink
        .transitions
        .iter()
        .map(|e| format!("{},{},{}", e.at.ticks(), e.router.idx(), e.kind.tag()))
        .collect();
    ctx.write_csv(
        &format!(
            "timeline_{}_{}_transitions.csv",
            bench.name(),
            file_slug(&spec)
        ),
        "tick,router,event",
        &transition_rows,
    );

    println!(
        "{} epochs across {} routers, {} transitions",
        sink.epochs.len(),
        topo.num_routers(),
        sink.transitions.len()
    );
    println!(
        "injected {} / ejected {} flits, {:.3} µJ total ({:.1} % time gated off)",
        sink.total_injected(),
        sink.total_ejected(),
        sink.total_energy_j() * 1e6,
        report.energy.off_fraction() * 100.0
    );
}
