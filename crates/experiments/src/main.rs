//! `dozz-repro` — regenerate every table and figure of the DozzNoC paper.
//!
//! ```text
//! dozz-repro <command> [--quick] [--out DIR] [--seed N] [--jobs N] [--shards N] [--no-cache]
//!
//! commands:
//!   table1            LDO dropout ranges (Table I)
//!   table2            measured switch-latency matrix (Table II)
//!   table3            T-Switch/T-Wakeup/T-Breakeven cycle costs (Table III)
//!   table4            the reduced feature set (Table IV)
//!   table5            DSENT static/dynamic cost model (Table V)
//!   fig5              LDO transient waveforms (Fig. 5)
//!   fig6              SIMO vs baseline power efficiency (Fig. 6)
//!   fig7              DVFS mode distribution per benchmark (Fig. 7)
//!   fig8              throughput + normalized energy, compressed & uncompressed (Fig. 8)
//!   fig9              single-feature mode-selection accuracy (Fig. 9)
//!   headline          §IV-B summary numbers, mesh + cmesh
//!   sweep-epoch       epoch-size sweep 100–1000 (§IV-B)
//!   overhead          ML label-generation overhead (§III-D)
//!   ablation-features DOZZNOC-5 vs DOZZNOC-41 (§IV-B.1)
//!   ablation-gating   wake-punch and T-Idle mechanism ablations
//!   ablation-proactive reactive vs ML vs oracle mode selection
//!   scale             8×8-trained model on 4×4…16×16 meshes
//!   ablation-online   offline ridge vs online-adaptive RLS under drift
//!   latency           network-latency percentiles per model
//!   timeline          per-router mode/energy time-series via telemetry
//!   tournament        every registered policy ranked head-to-head
//!   check             run the evaluation matrix under the invariant sanitizer
//!   bench-cell        one measured cell of the `cargo xtask bench` regime matrix
//!   transition-cost   rail-transition energy vs the savings it erodes
//!   routing           XY vs YX dimension-order sensitivity
//!   all               everything above, sharing one training pass
//! ```
//!
//! `--quick` shortens traces (4 µs instead of 50 µs) for smoke runs.
//! Campaign matrices run on `--jobs N` worker threads (default: every
//! available core, or the `DOZZ_JOBS` env var) and replay previously
//! simulated cells from the content-addressed run cache under
//! `<out>/.runcache/`; `--no-cache` forces every cell to simulate.
//! `--shards N` (or `DOZZ_SHARDS`) splits each simulated cell across N
//! spatially-sharded worker threads — bit-identical results, so use it
//! to speed up lone saturation runs rather than wide matrices (the two
//! knobs multiply).
//! Results print as paper-style rows and are also written as CSV under
//! `--out` (default `results/`).

mod ablations;
mod bench_cell;
mod check;
mod ctx;
mod engine;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod headline;
mod latency;
mod overhead;
mod scale;
mod suite;
mod sweep;
mod tables;
mod timeline;
mod tournament;

use ctx::Ctx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    if command == "bench-cell" {
        // Parses its own (disjoint) flag surface; bypasses Ctx, which
        // treats unknown flags as fatal.
        bench_cell::run(&args[1..]);
        return;
    }
    let ctx = Ctx::from_args(&args[1.min(args.len())..]);

    let started = std::time::Instant::now();
    match command {
        "table1" => tables::table1(&ctx),
        "table2" => tables::table2(&ctx),
        "table3" => tables::table3(&ctx),
        "table4" => tables::table4(&ctx),
        "table5" => tables::table5(&ctx),
        "fig5" => fig5::run(&ctx),
        "fig6" => fig6::run(&ctx),
        "fig7" => fig7::run(&ctx),
        "fig8" => fig8::run(&ctx),
        "fig9" => fig9::run(&ctx),
        "headline" => headline::run(&ctx),
        "sweep-epoch" => sweep::run(&ctx),
        "overhead" => overhead::run(&ctx),
        "transition-cost" => overhead::transitions(&ctx),
        "ablation-features" => headline::ablation_features(&ctx),
        "ablation-gating" => ablations::gating(&ctx),
        "ablation-proactive" => ablations::proactive(&ctx),
        "scale" => scale::run(&ctx),
        "ablation-online" => ablations::online(&ctx),
        "routing" => ablations::routing(&ctx),
        "latency" => latency::run(&ctx),
        "timeline" => timeline::run(&ctx),
        "tournament" => tournament::run(&ctx),
        "check" => check::run(&ctx),
        "all" => {
            tables::table1(&ctx);
            tables::table2(&ctx);
            tables::table3(&ctx);
            tables::table4(&ctx);
            tables::table5(&ctx);
            fig5::run(&ctx);
            fig6::run(&ctx);
            overhead::run(&ctx);
            fig7::run(&ctx);
            fig8::run(&ctx);
            fig9::run(&ctx);
            headline::run(&ctx);
            headline::ablation_features(&ctx);
            ablations::gating(&ctx);
            ablations::proactive(&ctx);
            scale::run(&ctx);
            ablations::online(&ctx);
            latency::run(&ctx);
            overhead::transitions(&ctx);
            ablations::routing(&ctx);
            sweep::run(&ctx);
        }
        "help" | "--help" | "-h" => {
            eprint!("{}", HELP);
            return;
        }
        other => {
            eprintln!("unknown command `{other}`\n{HELP}");
            std::process::exit(2);
        }
    }
    eprintln!("\n[{command} finished in {:.1?}]", started.elapsed());
}

const HELP: &str = "\
dozz-repro — regenerate the DozzNoC paper's tables and figures

usage: dozz-repro <command> [--quick] [--out DIR] [--seed N] [--jobs N] [--shards N] [--no-cache]
       dozz-repro timeline [--bench NAME] [--model NAME] [flags above]
       dozz-repro tournament [flags above]
       dozz-repro check [--bench NAME] [flags above]
       dozz-repro bench-cell --regime R --topo T --jobs N [--shards N] [--duration-ns D] [--seed S] [--traces K]

--model accepts any registered policy: paper slugs and aliases plus
plug-in specs like `rl-buffer?epsilon=0.2&seed=9`; `tournament` ranks
all of them (energy, latency, throughput, EDP, per-benchmark wins).

campaign matrices run on --jobs N workers (default: all cores, or the
DOZZ_JOBS env var) with a content-addressed run cache under
<out>/.runcache/; --no-cache forces every cell to simulate. --shards N
(or DOZZ_SHARDS) splits each cell across N spatially-sharded workers —
bit-identical results, purely a wall-clock knob.

commands: table1 table2 table3 table4 table5 fig5 fig6 fig7 fig8 fig9
          headline sweep-epoch overhead ablation-features ablation-gating
          ablation-proactive ablation-online scale latency timeline
          tournament check transition-cost routing all
";
