//! Fig. 8: (a) throughput on the compressed mesh; (b, c) static and
//! dynamic energy normalized to the baseline, compressed and
//! uncompressed.
//!
//! "Compressed" scales injection times to ⅔ (1.5× offered load, near
//! saturation during busy phases); uncompressed runs the raw traces.

use dozznoc_core::model::ALL_MODELS;
use dozznoc_core::{Campaign, CampaignResult, ModelKind};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

use crate::ctx::{banner, Ctx};
use crate::engine;
use crate::suite::suite_for;

/// Regenerate all three panels.
pub fn run(ctx: &Ctx) {
    banner("Fig. 8 — throughput and normalized energy (8×8 mesh, epoch 500)");
    let topo = Topology::mesh8x8();
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);

    let campaign = Campaign::new(topo)
        .with_duration_ns(ctx.duration_ns())
        .with_seed(ctx.seed)
        .try_with_load_scale(2, 3)
        .expect("2/3 compression is valid");
    let compressed = engine::run_campaign(ctx, &campaign, &TEST_BENCHMARKS, &suite);
    let campaign = Campaign::new(topo)
        .with_duration_ns(ctx.duration_ns())
        .with_seed(ctx.seed);
    let uncompressed = engine::run_campaign(ctx, &campaign, &TEST_BENCHMARKS, &suite);

    println!("\n(a) throughput, compressed traces (flits/ns)");
    print_panel(
        ctx,
        &compressed,
        "fig8a_throughput_compressed.csv",
        |r, base| {
            (
                r.report.stats.throughput_flits_per_ns(),
                r.report.throughput_vs(&base.report),
            )
        },
    );

    println!("\n(b) energy normalized to baseline, compressed traces");
    energy_panel(ctx, &compressed, "fig8b_energy_compressed.csv");

    println!("\n(c) energy normalized to baseline, uncompressed traces");
    energy_panel(ctx, &uncompressed, "fig8c_energy_uncompressed.csv");
}

fn baseline_of<'a>(results: &'a [CampaignResult], benchmark: &str) -> &'a CampaignResult {
    results
        .iter()
        .find(|r| r.model == ModelKind::Baseline && r.benchmark == benchmark)
        .expect("baseline row exists")
}

fn print_panel(
    ctx: &Ctx,
    results: &[CampaignResult],
    csv: &str,
    metric: impl Fn(&CampaignResult, &CampaignResult) -> (f64, f64),
) {
    println!(
        "{:<14} {:<22} {:>12} {:>12}",
        "benchmark", "model", "absolute", "vs baseline"
    );
    let mut rows = Vec::new();
    for r in results {
        let base = baseline_of(results, &r.benchmark);
        let (abs, rel) = metric(r, base);
        println!(
            "{:<14} {:<22} {:>12.3} {:>12.3}",
            r.benchmark,
            r.model.label(),
            abs,
            rel
        );
        rows.push(format!("{},{},{abs},{rel}", r.benchmark, r.model.label()));
    }
    ctx.write_csv(csv, "benchmark,model,absolute,vs_baseline", &rows);
}

fn energy_panel(ctx: &Ctx, results: &[CampaignResult], csv: &str) {
    println!(
        "{:<14} {:<22} {:>10} {:>10}",
        "benchmark", "model", "static", "dynamic"
    );
    let mut rows = Vec::new();
    for r in results {
        let base = baseline_of(results, &r.benchmark);
        let s = r.report.static_energy_vs(&base.report);
        let d = r.report.dynamic_energy_vs(&base.report);
        println!(
            "{:<14} {:<22} {:>10.3} {:>10.3}",
            r.benchmark,
            r.model.label(),
            s,
            d
        );
        rows.push(format!("{},{},{s},{d}", r.benchmark, r.model.label()));
    }
    // Per-model means across benchmarks (the bars the paper summarizes).
    println!("{:-<60}", "");
    for model in ALL_MODELS {
        let rs: Vec<_> = results.iter().filter(|r| r.model == model).collect();
        let n = rs.len().max(1) as f64;
        let s: f64 = rs
            .iter()
            .map(|r| {
                r.report
                    .static_energy_vs(&baseline_of(results, &r.benchmark).report)
            })
            .sum::<f64>()
            / n;
        let d: f64 = rs
            .iter()
            .map(|r| {
                r.report
                    .dynamic_energy_vs(&baseline_of(results, &r.benchmark).report)
            })
            .sum::<f64>()
            / n;
        println!(
            "{:<14} {:<22} {:>10.3} {:>10.3}",
            "MEAN",
            model.label(),
            s,
            d
        );
    }
    ctx.write_csv(
        csv,
        "benchmark,model,static_vs_baseline,dynamic_vs_baseline",
        &rows,
    );
}
