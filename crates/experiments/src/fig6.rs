//! Fig. 6: SIMO/LDO power efficiency vs. the conventional
//! switching-regulator/LDO array.

use dozznoc_power::EfficiencyCurve;

use crate::ctx::{banner, Ctx};

/// Regenerate the efficiency comparison.
pub fn run(ctx: &Ctx) {
    banner("Fig. 6 — regulator power efficiency");

    let curve = EfficiencyCurve::sample(40);
    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "Vout", "SIMO", "baseline", "gain"
    );
    let mut rows = Vec::new();
    for p in &curve.points {
        // Print every other sample; CSV gets them all.
        rows.push(format!("{:.3},{:.4},{:.4}", p.vout, p.simo, p.baseline));
    }
    for p in curve.points.iter().step_by(4) {
        println!(
            "{:<8} {:>9.1}% {:>9.1}% {:>7.1}%",
            format!("{:.2} V", p.vout),
            p.simo * 100.0,
            p.baseline * 100.0,
            p.improvement() * 100.0
        );
    }

    let paper_points = EfficiencyCurve::paper_comparison_points();
    let (max_gain, at) = paper_points.max_improvement();
    println!(
        "\nmean improvement at the paper's 4 comparison points: {:.1}% (paper: ~15%)",
        paper_points.mean_improvement() * 100.0
    );
    println!(
        "max improvement: {:.1}% at {:.1} V (paper: almost 25% at 0.9 V)",
        max_gain * 100.0,
        at
    );
    ctx.write_csv("fig6_efficiency.csv", "vout,simo,baseline", &rows);
}
