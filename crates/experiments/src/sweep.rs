//! The §IV-B epoch-size sweep: train and evaluate DOZZNOC at epoch sizes
//! 100–1000. The paper settles on 500 as the balance between model
//! responsiveness and training-data volume; each epoch size gets its own
//! separately trained model.

use dozznoc_core::experiment::summarize;
use dozznoc_core::{Campaign, ModelKind};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

use crate::ctx::{banner, Ctx};
use crate::engine;
use crate::suite::suite_for;

/// Epoch sizes swept (paper: "multiple epoch sizes (100 – 1000)").
pub const EPOCH_SIZES: [u64; 4] = [100, 250, 500, 1000];

/// Regenerate the epoch-size trade-off.
pub fn run(ctx: &Ctx) {
    banner("Epoch sweep — DOZZNOC at epoch sizes 100–1000 (mesh, uncompressed)");
    let topo = Topology::mesh8x8();
    println!(
        "{:>8} {:>12} {:>12} {:>11} {:>10} {:>12}",
        "epoch", "static-save", "dyn-save", "tput-loss", "lat-incr", "val-MSE"
    );
    let mut rows = Vec::new();
    for epoch in EPOCH_SIZES {
        let suite = suite_for(ctx, topo, epoch, FeatureSet::Reduced5);
        let campaign = Campaign::new(topo)
            .try_with_epoch_cycles(epoch)
            .expect("sweep epoch sizes are valid")
            .with_duration_ns(ctx.duration_ns())
            .with_seed(ctx.seed)
            .try_with_models(&[ModelKind::Baseline, ModelKind::DozzNoc])
            .expect("non-empty model set");
        let results = engine::run_campaign(ctx, &campaign, &TEST_BENCHMARKS, &suite);
        let s = summarize(&results)
            .into_iter()
            .find(|s| s.model == ModelKind::DozzNoc)
            .expect("dozznoc summarized");
        println!(
            "{:>8} {:>11.1}% {:>11.1}% {:>10.1}% {:>9.1}% {:>12.6}",
            epoch,
            s.static_savings_pct(),
            s.dynamic_savings_pct(),
            s.throughput_loss_pct(),
            s.latency_increase_pct(),
            suite.dozznoc.validation_mse
        );
        rows.push(format!(
            "{epoch},{:.4},{:.4},{:.4},{:.4},{:.6}",
            s.static_savings_pct(),
            s.dynamic_savings_pct(),
            s.throughput_loss_pct(),
            s.latency_increase_pct(),
            suite.dozznoc.validation_mse
        ));
    }
    println!("(paper selects epoch 500)");
    ctx.write_csv(
        "sweep_epoch.csv",
        "epoch,static_save_pct,dyn_save_pct,tput_loss_pct,lat_incr_pct,val_mse",
        &rows,
    );
}
