//! Scalability extension (§III-A claim): "As the proposed approach does
//! not require global coordination to select voltage level, we can scale
//! to large number of routers."
//!
//! Every feature the model consumes is router-local and normalized, so a
//! model trained on the 8×8 mesh should transfer to other mesh sizes
//! unchanged. This experiment runs the *8×8-trained* DOZZNOC model on
//! 4×4 … 16×16 meshes and reports whether the savings story survives
//! the transfer.

use dozznoc_core::{run_model, ModelKind};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::{Benchmark, TraceGenerator};

use crate::ctx::{banner, Ctx};
use crate::suite::suite_for;

/// Mesh side lengths swept.
pub const MESH_SIDES: [u16; 4] = [4, 8, 12, 16];

/// Run the mesh-size sweep with the 8×8-trained model.
pub fn run(ctx: &Ctx) {
    banner("Scalability — 8×8-trained DOZZNOC on 4×4…16×16 meshes");
    let suite = suite_for(ctx, Topology::mesh8x8(), 500, FeatureSet::Reduced5);

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>11} {:>11}",
        "mesh", "routers", "static-save", "dyn-save", "tput-loss", "lat-incr"
    );
    let mut rows = Vec::new();
    for side in MESH_SIDES {
        let topo = Topology::new(side, side, 1);
        let cfg = dozznoc_noc::NocConfig::paper(topo);
        let trace = TraceGenerator::new(topo)
            .with_duration_ns(ctx.duration_ns())
            .with_seed(ctx.seed)
            .generate(Benchmark::Fft);
        let base = run_model(cfg, &trace, ModelKind::Baseline, &suite);
        let dozz = run_model(cfg, &trace, ModelKind::DozzNoc, &suite);
        let s = (1.0 - dozz.static_energy_vs(&base)) * 100.0;
        let d = (1.0 - dozz.dynamic_energy_vs(&base)) * 100.0;
        let t = (1.0 - dozz.throughput_vs(&base)) * 100.0;
        let l = (dozz.latency_vs(&base) - 1.0) * 100.0;
        println!(
            "{:>6} {:>8} {:>11.1}% {:>11.1}% {:>10.1}% {:>10.1}%",
            format!("{side}×{side}"),
            topo.num_routers(),
            s,
            d,
            t,
            l
        );
        rows.push(format!(
            "{side},{},{s:.4},{d:.4},{t:.4},{l:.4}",
            topo.num_routers()
        ));
    }
    println!("(the model is trained on the 8×8 mesh only — local features transfer)");
    ctx.write_csv(
        "scale_mesh.csv",
        "side,routers,static_save_pct,dyn_save_pct,tput_loss_pct,lat_incr_pct",
        &rows,
    );
}
