//! Mechanism ablations for the design choices DESIGN.md calls out:
//!
//! * **wake punching** — the Power Punch-style full-path wake at
//!   injection vs. only the one-hop look-ahead wake. The paper's
//!   "partially non-blocking" property rests on this.
//! * **T-Idle** — the gate-off idle threshold. The paper argues 4 cycles
//!   balances savings against break-even violations; the sweep makes the
//!   trade-off measurable.

use dozznoc_core::{run_model, Adaptive, ModelKind, Oracle, Proactive, Reactive};
use dozznoc_ml::FeatureSet;
use dozznoc_noc::{Network, NocConfig, PowerPolicy, RunReport};
use dozznoc_topology::Topology;
use dozznoc_traffic::{TraceGenerator, TEST_BENCHMARKS};

use crate::ctx::{banner, Ctx};
use crate::suite::suite_for;

/// Run the gating-mechanism ablations.
pub fn gating(ctx: &Ctx) {
    banner("Ablation — wake punching and T-Idle (mesh, PG+DVFS, uncompressed)");
    let topo = Topology::mesh8x8();
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
    let traces: Vec<_> = TEST_BENCHMARKS
        .iter()
        .map(|&b| {
            TraceGenerator::new(topo)
                .with_duration_ns(ctx.duration_ns())
                .with_seed(ctx.seed)
                .generate(b)
        })
        .collect();

    let variants: Vec<(String, NocConfig)> = vec![
        ("paper (punch, T-Idle 4)".into(), NocConfig::paper(topo)),
        (
            "no wake punch".into(),
            NocConfig::paper(topo).without_wake_punch(),
        ),
        ("T-Idle 2".into(), NocConfig::paper(topo).with_t_idle(2)),
        ("T-Idle 16".into(), NocConfig::paper(topo).with_t_idle(16)),
        ("T-Idle 64".into(), NocConfig::paper(topo).with_t_idle(64)),
    ];

    println!(
        "{:<26} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "variant", "static-save", "net-lat +%", "off-frac", "be-violations", "wakeups"
    );
    let mut rows = Vec::new();
    for (name, cfg) in &variants {
        // Aggregate over the test set against each trace's own baseline.
        let (mut s, mut l, mut off) = (0.0, 0.0, 0.0);
        let (mut viol, mut wakes) = (0u64, 0u64);
        for trace in &traces {
            let base = run_model(NocConfig::paper(topo), trace, ModelKind::Baseline, &suite);
            let r = run_model(*cfg, trace, ModelKind::DozzNoc, &suite);
            s += 1.0 - r.static_energy_vs(&base);
            l += r.latency_vs(&base) - 1.0;
            off += r.energy.off_fraction();
            viol += r.energy.breakeven_violations;
            wakes += r.energy.wakeups;
        }
        let n = traces.len() as f64;
        println!(
            "{:<26} {:>11.1}% {:>11.1}% {:>10.3} {:>12} {:>10}",
            name,
            s / n * 100.0,
            l / n * 100.0,
            off / n,
            viol,
            wakes
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{viol},{wakes}",
            name,
            s / n * 100.0,
            l / n * 100.0,
            off / n
        ));
    }
    ctx.write_csv(
        "ablation_gating.csv",
        "variant,static_save_pct,net_lat_incr_pct,off_fraction,breakeven_violations,wakeups",
        &rows,
    );
}

/// Reactive vs. proactive (ML) vs. oracle: how much of the staleness gap
/// does the paper's ridge predictor close?
pub fn proactive(ctx: &Ctx) {
    banner("Ablation — reactive vs ML-proactive vs oracle (mesh, DVFS-only)");
    let topo = Topology::mesh8x8();
    let cfg = NocConfig::paper(topo);
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);

    println!(
        "{:<12} {:<10} {:>11} {:>11} {:>10} {:>9}",
        "benchmark", "selector", "net-lat ns", "dyn-save %", "static %", "tput f/ns"
    );
    let mut rows = Vec::new();
    for &bench in &TEST_BENCHMARKS {
        let trace = TraceGenerator::new(topo)
            .with_duration_ns(ctx.duration_ns())
            .with_seed(ctx.seed)
            .generate(bench);
        let base = run_model(cfg, &trace, ModelKind::Baseline, &suite);

        let mut run = |name: &str, policy: &mut dyn PowerPolicy| -> RunReport {
            let r = Network::new(cfg).run(&trace, policy).expect("ablation run");
            println!(
                "{:<12} {:<10} {:>11.1} {:>11.1} {:>10.1} {:>9.2}",
                bench.name(),
                name,
                r.stats.avg_net_latency_ns(),
                (1.0 - r.dynamic_energy_vs(&base)) * 100.0,
                (1.0 - r.static_energy_vs(&base)) * 100.0,
                r.stats.throughput_flits_per_ns(),
            );
            rows.push(format!(
                "{},{},{:.2},{:.4},{:.4},{:.4}",
                bench.name(),
                name,
                r.stats.avg_net_latency_ns(),
                (1.0 - r.dynamic_energy_vs(&base)) * 100.0,
                (1.0 - r.static_energy_vs(&base)) * 100.0,
                r.stats.throughput_flits_per_ns()
            ));
            r
        };

        run("reactive", &mut Reactive::lead());
        run("ml", &mut Proactive::lead(suite.lead.clone()));
        let mut oracle = Oracle::record(cfg, &trace, false);
        run("oracle", &mut oracle);
    }
    println!(
        "\n(gating disabled for all three so the comparison isolates mode *selection*;\n\
         the oracle knows each epoch's recorded future IBU exactly)"
    );
    ctx.write_csv(
        "ablation_proactive.csv",
        "benchmark,selector,net_lat_ns,dyn_save_pct,static_save_pct,tput_flits_per_ns",
        &rows,
    );
}

/// Offline vs. online-adaptive prediction under workload drift: deploy
/// on traces generated with a seed the offline model never saw.
pub fn online(ctx: &Ctx) {
    banner("Extension — offline ridge vs online-adaptive RLS under drift");
    let topo = Topology::mesh8x8();
    let cfg = NocConfig::paper(topo);
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
    // Drifted deployment: same benchmarks, different generator seed.
    let drift_seed = ctx.seed.wrapping_add(0xD05E);

    println!(
        "{:<12} {:<16} {:>11} {:>11} {:>10}",
        "benchmark", "selector", "net-lat ns", "dyn-save %", "static %"
    );
    let mut rows = Vec::new();
    for &bench in &TEST_BENCHMARKS {
        let trace = TraceGenerator::new(topo)
            .with_duration_ns(ctx.duration_ns())
            .with_seed(drift_seed)
            .generate(bench);
        let base = run_model(cfg, &trace, ModelKind::Baseline, &suite);
        let mut run = |name: &str, policy: &mut dyn PowerPolicy| {
            let r = Network::new(cfg)
                .run(&trace, policy)
                .expect("online ablation run");
            println!(
                "{:<12} {:<16} {:>11.1} {:>11.1} {:>10.1}",
                bench.name(),
                name,
                r.stats.avg_net_latency_ns(),
                (1.0 - r.dynamic_energy_vs(&base)) * 100.0,
                (1.0 - r.static_energy_vs(&base)) * 100.0,
            );
            rows.push(format!(
                "{},{},{:.2},{:.4},{:.4}",
                bench.name(),
                name,
                r.stats.avg_net_latency_ns(),
                (1.0 - r.dynamic_energy_vs(&base)) * 100.0,
                (1.0 - r.static_energy_vs(&base)) * 100.0
            ));
        };
        run("offline", &mut Proactive::dozznoc(suite.dozznoc.clone()));
        run(
            "online-warm",
            &mut Adaptive::from_offline(&suite.dozznoc, topo.num_routers(), true),
        );
        run(
            "online-cold",
            &mut Adaptive::cold(FeatureSet::Reduced5, topo.num_routers(), true),
        );
    }
    ctx.write_csv(
        "ablation_online.csv",
        "benchmark,selector,net_lat_ns,dyn_save_pct,static_save_pct",
        &rows,
    );
}

/// Routing-sensitivity extension: the paper argues DozzNoC needs only a
/// deterministic look-ahead route (XY DOR); YX is an equally valid order
/// and shows how much the results depend on that choice.
pub fn routing(ctx: &Ctx) {
    use dozznoc_topology::DimOrder;

    banner("Extension — routing sensitivity: XY vs YX dimension order");
    let topo = Topology::mesh8x8();
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);

    println!(
        "{:<12} {:<6} {:>12} {:>12} {:>11} {:>12}",
        "benchmark", "order", "static-save", "dyn-save", "tput-loss", "net-lat ns"
    );
    let mut rows = Vec::new();
    for &bench in &TEST_BENCHMARKS {
        let trace = TraceGenerator::new(topo)
            .with_duration_ns(ctx.duration_ns())
            .with_seed(ctx.seed)
            .generate(bench);
        for (name, order) in [("XY", DimOrder::Xy), ("YX", DimOrder::Yx)] {
            let cfg = NocConfig::paper(topo).with_routing(order);
            let base = run_model(cfg, &trace, ModelKind::Baseline, &suite);
            let r = run_model(cfg, &trace, ModelKind::DozzNoc, &suite);
            let s = (1.0 - r.static_energy_vs(&base)) * 100.0;
            let d = (1.0 - r.dynamic_energy_vs(&base)) * 100.0;
            let t = (1.0 - r.throughput_vs(&base)) * 100.0;
            let l = r.stats.avg_net_latency_ns();
            println!(
                "{:<12} {:<6} {:>11.1}% {:>11.1}% {:>10.1}% {:>12.1}",
                bench.name(),
                name,
                s,
                d,
                t,
                l
            );
            rows.push(format!(
                "{},{name},{s:.4},{d:.4},{t:.4},{l:.2}",
                bench.name()
            ));
        }
    }
    println!("(the DozzNoC story must not hinge on the specific DOR order)");
    ctx.write_csv(
        "routing_sensitivity.csv",
        "benchmark,order,static_save_pct,dyn_save_pct,tput_loss_pct,net_lat_ns",
        &rows,
    );
}
