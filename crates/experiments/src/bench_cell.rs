//! `dozz-repro bench-cell` — one cell of the `cargo xtask bench`
//! regime matrix, measured in its own process.
//!
//! The harness (`crates/xtask/src/bench`) spawns this command once per
//! (regime × topology × jobs) cell so every measurement gets process
//! isolation: a fresh allocator, a peak-RSS reading that belongs to
//! this cell alone, and no JIT-style warm-up bleed between cells. The
//! command:
//!
//! 1. builds the regime's synthetic traces ([`dozznoc_bench::regimes`])
//!    and trains a small model suite — all *outside* the timed region;
//! 2. resets the process RSS high-water mark, then drives the traces ×
//!    a fixed three-policy spec mix (`baseline`, `power-gated`,
//!    `dozznoc` — no-ML, gating, and ML+DVFS hot paths) through the
//!    real engine, [`Campaign::run_trace_cells`], with the run cache
//!    disabled and per-cell measurement enabled;
//! 3. prints one JSON object on stdout (logs go to stderr) for the
//!    harness to collect.
//!
//! The stdout contract is versioned ([`BENCH_CELL_SCHEMA`]); bump it
//! whenever a field changes meaning, and keep `crates/xtask/src/bench`
//! in lockstep.

use std::num::NonZeroUsize;
use std::time::Instant;

use dozznoc_bench::regimes::{regime_trace, Regime};
use dozznoc_core::{measure, Campaign, EngineOptions, ModelSuite, PolicyRegistry, PolicySpec};
use dozznoc_core::{PolicyCellRun, Trainer};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::Trace;

/// Version of the JSON object this command prints. The xtask harness
/// refuses to ingest any other version. v2 added the `shards` field
/// (spatial shards per engine run; 1 = sequential engine).
pub const BENCH_CELL_SCHEMA: u64 = 2;

/// Paper-agnostic spec mix every bench cell runs: the no-ML baseline,
/// the gating-heavy policy and the full ML+DVFS policy, so the yardstick
/// covers the engine's three distinct per-epoch hot paths.
const SPEC_MIX: [&str; 3] = ["baseline", "power-gated", "dozznoc"];

struct Args {
    regime: Regime,
    topo_name: String,
    jobs: NonZeroUsize,
    shards: usize,
    duration_ns: u64,
    seed: u64,
    traces: usize,
}

/// Entry point: parses its own flags (the shared [`crate::ctx::Ctx`]
/// rejects unknown flags, and this command's surface is disjoint).
/// Exits 2 on usage errors.
pub fn run(raw: &[String]) {
    let args = parse(raw).unwrap_or_else(|e| {
        eprintln!("bench-cell: {e}");
        eprintln!(
            "usage: dozz-repro bench-cell --regime <light|saturation|pathological-hotspot> \
             --topo <mesh8x8|cmesh4x4> --jobs N [--shards N] [--duration-ns D] [--seed S] \
             [--traces K]"
        );
        std::process::exit(2);
    });
    let topo = match args.topo_name.as_str() {
        "mesh8x8" => Topology::mesh8x8(),
        "cmesh4x4" => Topology::cmesh4x4(),
        other => {
            eprintln!("bench-cell: unknown topology `{other}` (mesh8x8|cmesh4x4)");
            std::process::exit(2);
        }
    };

    // ---- setup (untimed): traces, suite, spec validation ----
    let traces: Vec<Trace> = (0..args.traces)
        .map(|k| regime_trace(args.regime, &topo, args.duration_ns, args.seed + k as u64))
        .collect();
    let packets: usize = traces.iter().map(Trace::len).sum();
    eprintln!(
        "bench-cell: {} × {} × jobs={} × shards={} — {} traces, {packets} packets",
        args.regime, args.topo_name, args.jobs, args.shards, args.traces
    );
    let suite = ModelSuite::train(
        &Trainer::new(topo).with_duration_ns(2_000),
        FeatureSet::Reduced5,
    );
    let specs: Vec<PolicySpec> = SPEC_MIX.iter().copied().map(PolicySpec::new).collect();
    let campaign = Campaign::new(topo);
    let opts = EngineOptions {
        jobs: Some(args.jobs),
        shards: args.shards,
        cache: None, // the yardstick always simulates
        sanitize: false,
        measure: true,
    };

    // ---- measured region: the engine run only ----
    measure::reset_max_rss();
    let cpu0 = measure::process_cpu_ns();
    let wall = Instant::now();
    let runs = campaign
        .run_trace_cells(&traces, &specs, &suite, PolicyRegistry::global(), &opts)
        .expect("bench spec mix is registered");
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let cpu_ns = measure::process_cpu_ns().saturating_sub(cpu0);
    let max_rss = measure::max_rss_bytes();

    println!("{}", render(&args, &runs, wall_ns, cpu_ns, max_rss));
}

/// Aggregate the engine cells into the flat JSON object the harness
/// ingests. "Simulated cycles" are base-clock ticks
/// ([`dozznoc_types::BASE_CLOCK_GHZ`] per ns): the finest clock the
/// simulator advances, summed over every cell's finish time.
fn render(args: &Args, runs: &[PolicyCellRun], wall_ns: u64, cpu_ns: u64, max_rss: u64) -> String {
    let sim_cycles: u64 = runs
        .iter()
        .map(|r| r.result.report.finished_at.ticks())
        .sum();
    let flits: u64 = runs
        .iter()
        .map(|r| r.result.report.stats.flits_delivered)
        .sum();
    let cell_cpu_ns: u64 = runs
        .iter()
        .filter_map(|r| r.measure.as_ref().map(|m| m.cpu_ns))
        .sum();
    let wall_s = (wall_ns as f64 / 1e9).max(f64::MIN_POSITIVE);
    let v = serde_json::json!({
        "bench_cell_schema": BENCH_CELL_SCHEMA,
        "regime": args.regime.name(),
        "topology": args.topo_name.as_str(),
        "jobs": args.jobs.get() as u64,
        "shards": args.shards.max(1) as u64,
        "traces": args.traces as u64,
        "duration_ns": args.duration_ns,
        "seed": args.seed,
        "engine_cells": runs.len() as u64,
        "wall_ms": wall_ns as f64 / 1e6,
        "cpu_s": cpu_ns as f64 / 1e9,
        "cell_cpu_s": cell_cpu_ns as f64 / 1e9,
        "max_rss_bytes": max_rss,
        "sim_cycles": sim_cycles,
        "flits": flits,
        "sim_cycles_per_sec": sim_cycles as f64 / wall_s,
        "flits_per_sec": flits as f64 / wall_s,
    });
    serde_json::to_string(&v).expect("bench-cell JSON is a plain tree")
}

fn parse(raw: &[String]) -> Result<Args, String> {
    let mut regime = None;
    let mut topo_name = None;
    let mut jobs = NonZeroUsize::MIN;
    let mut shards = 0;
    let mut duration_ns = 8_000;
    let mut seed = 0;
    let mut traces = 6;
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--regime" => {
                let v = value("--regime")?;
                regime = Some(Regime::parse(v).ok_or_else(|| format!("unknown regime `{v}`"))?);
            }
            "--topo" => topo_name = Some(value("--topo")?.clone()),
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs a positive integer".to_string())?;
            }
            "--shards" => {
                shards = value("--shards")?
                    .parse::<NonZeroUsize>()
                    .map_err(|_| "--shards needs a positive integer".to_string())?
                    .get();
            }
            "--duration-ns" => {
                duration_ns = value("--duration-ns")?
                    .parse()
                    .map_err(|_| "--duration-ns needs an integer".to_string())?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--traces" => {
                traces = value("--traces")?
                    .parse()
                    .map_err(|_| "--traces needs a positive integer".to_string())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if traces == 0 {
        return Err("--traces must be ≥ 1".into());
    }
    Ok(Args {
        regime: regime.ok_or("--regime is required")?,
        topo_name: topo_name.ok_or("--topo is required")?,
        jobs,
        shards,
        duration_ns,
        seed,
        traces,
    })
}
