//! Trained-model suite management with on-disk caching.
//!
//! Training takes simulation time, so each (topology, epoch, feature-set)
//! suite is trained once and cached as JSON under the output directory;
//! later commands (and re-runs) load the cache. Delete `results/*.json`
//! to force retraining.

use dozznoc_core::{ModelSuite, Trainer};
use dozznoc_ml::{FeatureSet, TrainedModel};
use dozznoc_topology::Topology;

use crate::ctx::Ctx;

/// Load or train the model suite for a configuration.
pub fn suite_for(
    ctx: &Ctx,
    topo: Topology,
    epoch_cycles: u64,
    feature_set: FeatureSet,
) -> ModelSuite {
    let key = format!(
        "suite-{}-e{}-{}{}.json",
        topo.kind(),
        epoch_cycles,
        feature_set,
        if ctx.quick { "-quick" } else { "" }
    );
    let path = ctx.cache_path(&key);
    if let Some(suite) = load(&path) {
        eprintln!("  loaded cached models from {}", path.display());
        return suite;
    }
    eprintln!(
        "  training {} suite (epoch {epoch_cycles}, {feature_set})…",
        topo.kind()
    );
    let trainer = trainer_for(ctx, topo, epoch_cycles);
    let suite = ModelSuite::train(&trainer, feature_set);
    save(ctx, &path, &suite);
    suite
}

/// The trainer every experiment shares.
pub fn trainer_for(ctx: &Ctx, topo: Topology, epoch_cycles: u64) -> Trainer {
    Trainer::new(topo)
        .try_with_epoch_cycles(epoch_cycles)
        .expect("experiment epoch sizes are valid")
        .with_duration_ns(ctx.duration_ns())
        .with_seed(ctx.seed)
}

fn load(path: &std::path::Path) -> Option<ModelSuite> {
    let raw = std::fs::read_to_string(path).ok()?;
    let v: serde_json::Value = serde_json::from_str(&raw).ok()?;
    let get =
        |k: &str| -> Option<TrainedModel> { TrainedModel::from_json(&v.get(k)?.to_string()).ok() };
    Some(ModelSuite {
        dozznoc: get("dozznoc")?,
        lead: get("lead")?,
        turbo: get("turbo")?,
    })
}

fn save(ctx: &Ctx, path: &std::path::Path, suite: &ModelSuite) {
    std::fs::create_dir_all(&ctx.out_dir).expect("create results dir");
    let v = serde_json::json!({
        "dozznoc": serde_json::from_str::<serde_json::Value>(&suite.dozznoc.to_json()).unwrap(),
        "lead": serde_json::from_str::<serde_json::Value>(&suite.lead.to_json()).unwrap(),
        "turbo": serde_json::from_str::<serde_json::Value>(&suite.turbo.to_json()).unwrap(),
    });
    std::fs::write(path, serde_json::to_string_pretty(&v).unwrap()).expect("save suite");
    eprintln!("  cached models at {}", path.display());
}
