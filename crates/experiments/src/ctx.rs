//! Shared experiment context: output directory, quick mode, seed,
//! engine parallelism and run-cache control.

use std::fs;
use std::io::Write;
use std::num::NonZeroUsize;
use std::path::PathBuf;

use dozznoc_core::{EngineOptions, RunCache};

/// Parsed command-line context shared by every experiment.
pub struct Ctx {
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Quick mode: short traces for smoke runs.
    pub quick: bool,
    /// Trace-generator seed.
    pub seed: u64,
    /// Benchmark selector (`--bench`), for commands that run one trace.
    pub bench: Option<String>,
    /// Model selector (`--model`), for commands that run one policy.
    pub model: Option<String>,
    /// Worker threads for campaign matrices (`--jobs N`, or the
    /// `DOZZ_JOBS` env var). `None` uses every available core.
    pub jobs: Option<NonZeroUsize>,
    /// Spatial shards *within* each simulated cell (`--shards N`, or
    /// the `DOZZ_SHARDS` env var). `0`/`1` run the sequential engine;
    /// the sharded engine is bit-identical, so this is purely a
    /// wall-clock knob. Orthogonal to `--jobs`: the two multiply, so
    /// shard lone saturation runs, not wide matrices.
    pub shards: usize,
    /// Disable the content-addressed run cache (`--no-cache`): every
    /// cell simulates even when a stored report exists.
    pub no_cache: bool,
}

impl Ctx {
    /// Parse `--quick`, `--out DIR`, `--seed N`, `--bench NAME`,
    /// `--model NAME`, `--jobs N`, `--shards N`, `--no-cache` from the
    /// argument list. When `--jobs` (`--shards`) is absent, the
    /// `DOZZ_JOBS` (`DOZZ_SHARDS`) environment variable is consulted.
    pub fn from_args(args: &[String]) -> Ctx {
        let mut ctx = Ctx {
            out_dir: PathBuf::from("results"),
            quick: false,
            seed: 0,
            bench: None,
            model: None,
            jobs: None,
            shards: 0,
            no_cache: false,
        };
        let parse_jobs = |s: &str, origin: &str| -> NonZeroUsize {
            s.parse()
                .unwrap_or_else(|_| panic!("{origin} needs a positive integer, got `{s}`"))
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => ctx.quick = true,
                "--no-cache" => ctx.no_cache = true,
                "--out" => {
                    ctx.out_dir =
                        PathBuf::from(it.next().expect("--out needs a directory argument"))
                }
                "--seed" => {
                    ctx.seed = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer")
                }
                "--jobs" => {
                    let v = it.next().expect("--jobs needs a worker count");
                    ctx.jobs = Some(parse_jobs(v, "--jobs"));
                }
                "--shards" => {
                    let v = it.next().expect("--shards needs a shard count");
                    ctx.shards = parse_jobs(v, "--shards").get();
                }
                "--bench" => {
                    ctx.bench = Some(it.next().expect("--bench needs a benchmark name").clone())
                }
                "--model" => {
                    ctx.model = Some(it.next().expect("--model needs a model name").clone())
                }
                other => panic!("unknown flag `{other}`"),
            }
        }
        if ctx.jobs.is_none() {
            if let Ok(v) = std::env::var("DOZZ_JOBS") {
                ctx.jobs = Some(parse_jobs(&v, "DOZZ_JOBS"));
            }
        }
        if ctx.shards == 0 {
            if let Ok(v) = std::env::var("DOZZ_SHARDS") {
                ctx.shards = parse_jobs(&v, "DOZZ_SHARDS").get();
            }
        }
        ctx
    }

    /// Trace horizon in nanoseconds (shortened by `--quick`).
    pub fn duration_ns(&self) -> u64 {
        if self.quick {
            4_000
        } else {
            50_000
        }
    }

    /// The run cache campaign commands share, under
    /// `<out>/.runcache/` — or `None` with `--no-cache`.
    pub fn run_cache(&self) -> Option<RunCache> {
        (!self.no_cache).then(|| RunCache::open(self.out_dir.join(".runcache")))
    }

    /// Engine options for a campaign run: `--jobs` workers, `--shards`
    /// spatial shards per cell and the given cache handle.
    pub fn engine_opts<'a>(&self, cache: Option<&'a RunCache>) -> EngineOptions<'a> {
        EngineOptions {
            jobs: self.jobs,
            shards: self.shards,
            cache,
            sanitize: false,
            measure: false,
        }
    }

    /// Write a CSV artifact, creating the output directory on demand.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        fs::create_dir_all(&self.out_dir)
            .unwrap_or_else(|e| panic!("cannot create {:?}: {e}", self.out_dir));
        let path = self.out_dir.join(name);
        let mut f =
            fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path:?}: {e}"));
        writeln!(f, "{header}").expect("csv write");
        for row in rows {
            writeln!(f, "{row}").expect("csv write");
        }
        eprintln!("  wrote {}", path.display());
    }

    /// Path for cached artifacts (trained model suites).
    pub fn cache_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
