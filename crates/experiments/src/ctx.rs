//! Shared experiment context: output directory, quick mode, seed.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Parsed command-line context shared by every experiment.
pub struct Ctx {
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Quick mode: short traces for smoke runs.
    pub quick: bool,
    /// Trace-generator seed.
    pub seed: u64,
    /// Benchmark selector (`--bench`), for commands that run one trace.
    pub bench: Option<String>,
    /// Model selector (`--model`), for commands that run one policy.
    pub model: Option<String>,
}

impl Ctx {
    /// Parse `--quick`, `--out DIR`, `--seed N`, `--bench NAME`,
    /// `--model NAME` from the argument list.
    pub fn from_args(args: &[String]) -> Ctx {
        let mut ctx = Ctx {
            out_dir: PathBuf::from("results"),
            quick: false,
            seed: 0,
            bench: None,
            model: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => ctx.quick = true,
                "--out" => {
                    ctx.out_dir =
                        PathBuf::from(it.next().expect("--out needs a directory argument"))
                }
                "--seed" => {
                    ctx.seed = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer")
                }
                "--bench" => {
                    ctx.bench = Some(it.next().expect("--bench needs a benchmark name").clone())
                }
                "--model" => {
                    ctx.model = Some(it.next().expect("--model needs a model name").clone())
                }
                other => panic!("unknown flag `{other}`"),
            }
        }
        ctx
    }

    /// Trace horizon in nanoseconds (shortened by `--quick`).
    pub fn duration_ns(&self) -> u64 {
        if self.quick {
            4_000
        } else {
            50_000
        }
    }

    /// Write a CSV artifact, creating the output directory on demand.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        fs::create_dir_all(&self.out_dir)
            .unwrap_or_else(|e| panic!("cannot create {:?}: {e}", self.out_dir));
        let path = self.out_dir.join(name);
        let mut f =
            fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path:?}: {e}"));
        writeln!(f, "{header}").expect("csv write");
        for row in rows {
            writeln!(f, "{row}").expect("csv write");
        }
        eprintln!("  wrote {}", path.display());
    }

    /// Path for cached artifacts (trained model suites).
    pub fn cache_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
