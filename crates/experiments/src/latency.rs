//! Latency-distribution report (extension): P50/P95/P99 network latency
//! per model. Mean latency hides exactly the tail where DozzNoC's costs
//! (T-Wakeup stalls, low-mode epochs) concentrate; the percentiles make
//! the trade-off the paper prices implicitly visible.

use dozznoc_core::model::ALL_MODELS;
use dozznoc_core::Campaign;
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

use crate::ctx::{banner, Ctx};
use crate::engine;
use crate::suite::suite_for;

/// Regenerate the latency-percentile table.
pub fn run(ctx: &Ctx) {
    banner("Latency distribution — network latency percentiles (mesh, uncompressed)");
    let topo = Topology::mesh8x8();
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
    let campaign = Campaign::new(topo)
        .with_duration_ns(ctx.duration_ns())
        .with_seed(ctx.seed);
    let results = engine::run_campaign(ctx, &campaign, &TEST_BENCHMARKS, &suite);

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "model", "mean ns", "P50 ns", "P95 ns", "P99 ns", "max ns"
    );
    let mut rows = Vec::new();
    for model in ALL_MODELS {
        // One merged RunStats per model: sums, maxima and histograms
        // fold benchmark-by-benchmark, so the mean is packet-weighted
        // (a mean of per-benchmark means would over-weight short
        // benchmarks) and the max/percentiles come from one
        // distribution.
        let mut stats = dozznoc_noc::RunStats::default();
        for r in results.iter().filter(|r| r.model == model) {
            stats.merge(&r.report.stats);
        }
        let mean = stats.avg_net_latency_ns();
        let max = stats.net_latency_max_ticks as f64 / dozznoc_types::TICKS_PER_NS as f64;
        let hist = &stats.net_latency_hist;
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            model.label(),
            mean,
            hist.percentile_ns(0.5),
            hist.percentile_ns(0.95),
            hist.percentile_ns(0.99),
            max
        );
        rows.push(format!(
            "{},{mean:.2},{:.2},{:.2},{:.2},{max:.2}",
            model.label(),
            hist.percentile_ns(0.5),
            hist.percentile_ns(0.95),
            hist.percentile_ns(0.99)
        ));
    }
    println!("(percentile values are log₂-bucket upper bounds: ≤2× resolution)");
    ctx.write_csv(
        "latency_percentiles.csv",
        "model,mean_ns,p50_ns,p95_ns,p99_ns,max_ns",
        &rows,
    );
}
