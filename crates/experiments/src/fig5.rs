//! Fig. 5: LDO transient waveforms for power-gating wake-up and DVFS
//! voltage switching.

use dozznoc_power::regulator::waveform::{fig5a_wakeup, fig5b_switch};

use crate::ctx::{banner, Ctx};

/// Regenerate both waveforms as time series and report settling times.
pub fn run(ctx: &Ctx) {
    banner("Fig. 5 — LDO transient waveforms");

    let wake = fig5a_wakeup();
    let switch = fig5b_switch();

    println!(
        "(a) T-Wakeup  0.0 V → 0.8 V : settles in {:.2} ns (measured 8.5 ns), overshoot {:.1} mV",
        wake.settling_time_ns(),
        wake.overshoot_v() * 1e3
    );
    println!(
        "(b) T-Switch  0.8 V → 1.2 V : settles in {:.2} ns (measured 6.7 ns), overshoot {:.1} mV",
        switch.settling_time_ns(),
        switch.overshoot_v() * 1e3
    );

    let mut rows = Vec::new();
    for (t, v) in wake.series(20.0, 400) {
        rows.push(format!("wakeup,{t:.4},{v:.5}"));
    }
    for (t, v) in switch.series(20.0, 400) {
        rows.push(format!("switch,{t:.4},{v:.5}"));
    }
    ctx.write_csv("fig5_waveforms.csv", "transition,t_ns,volts", &rows);
}
