//! `dozz-repro tournament` — every registered policy, head to head.
//!
//! Runs the full registry (the five paper models plus every plug-in
//! policy, seven builtins today) over the five held-out test benchmarks
//! on the work-stealing engine with the content-addressed run cache,
//! then ranks policies by mean energy-delay product against the
//! baseline. Per-benchmark EDP wins break the narrative down further:
//! a policy can lose the average yet own a workload.
//!
//! Output: a ranked stdout table and `tournament.csv` under `--out`.

use dozznoc_core::experiment::edp;
use dozznoc_core::{Campaign, PolicyRegistry, PolicyResult};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

use crate::ctx::{banner, Ctx};
use crate::engine;
use crate::suite::suite_for;

/// One policy's aggregate standing across the benchmark matrix.
struct Standing {
    name: String,
    label: String,
    energy_ratio: f64,
    latency_ratio: f64,
    throughput_ratio: f64,
    edp_ratio: f64,
    wins: usize,
}

/// Run the all-policies tournament and write the ranked report.
pub fn run(ctx: &Ctx) {
    let registry = PolicyRegistry::global();
    let specs = registry.default_specs();
    banner(&format!(
        "Tournament — {} policies × {} benchmarks (8×8 mesh, epoch 500)",
        specs.len(),
        TEST_BENCHMARKS.len()
    ));

    let topo = Topology::mesh8x8();
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
    let campaign = Campaign::new(topo)
        .with_duration_ns(ctx.duration_ns())
        .with_seed(ctx.seed);

    let cache = ctx.run_cache();
    let cells = campaign
        .run_policy_cells(
            &TEST_BENCHMARKS,
            &specs,
            &suite,
            registry,
            &ctx.engine_opts(cache.as_ref()),
        )
        .expect("registry default specs always build");
    let hits = cells.iter().filter(|c| c.cache_hit).count();
    engine::log_cache(cache.as_ref(), hits, cells.len());
    let results: Vec<PolicyResult> = cells.into_iter().map(|c| c.result).collect();

    let standings = rank(registry, &specs, &results);
    print_table(&standings);
    ctx.write_csv(
        "tournament.csv",
        "rank,policy,label,energy_vs_baseline,latency_vs_baseline,\
         throughput_vs_baseline,edp_vs_baseline,benchmark_wins",
        &standings
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "{},{},{},{:.4},{:.4},{:.4},{:.4},{}",
                    i + 1,
                    s.name,
                    s.label,
                    s.energy_ratio,
                    s.latency_ratio,
                    s.throughput_ratio,
                    s.edp_ratio,
                    s.wins
                )
            })
            .collect::<Vec<_>>(),
    );
}

/// Aggregate per-policy ratios vs. the baseline rows and sort by mean
/// EDP (best first). Ties break on the registry's registration order,
/// which `specs` preserves, so the ranking is deterministic.
fn rank(
    registry: &PolicyRegistry,
    specs: &[dozznoc_core::PolicySpec],
    results: &[PolicyResult],
) -> Vec<Standing> {
    let baselines: Vec<&PolicyResult> = results
        .iter()
        .filter(|r| r.policy.name() == "baseline")
        .collect();
    let base_for = |bench: &str| baselines.iter().find(|b| b.benchmark == bench);

    // Per-benchmark winner: the policy with the lowest EDP on it.
    let mut wins: Vec<usize> = vec![0; specs.len()];
    for base in &baselines {
        let best = results
            .iter()
            .filter(|r| r.benchmark == base.benchmark)
            .min_by(|a, b| edp(&a.report).total_cmp(&edp(&b.report)));
        if let Some(best) = best {
            if let Some(i) = specs.iter().position(|s| s == &best.policy) {
                wins[i] += 1;
            }
        }
    }

    let mut standings: Vec<Standing> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut n = 0.0;
            let (mut en, mut lat, mut tput, mut ed) = (0.0, 0.0, 0.0, 0.0);
            for r in results.iter().filter(|r| &r.policy == spec) {
                let Some(base) = base_for(&r.benchmark) else {
                    continue;
                };
                let total = |rep: &dozznoc_noc::RunReport| {
                    rep.energy.static_j + rep.energy.dynamic_with_ml_j()
                };
                en += total(&r.report) / total(&base.report).max(f64::MIN_POSITIVE);
                lat += r.report.latency_vs(&base.report);
                tput += r.report.throughput_vs(&base.report);
                ed += edp(&r.report) / edp(&base.report).max(f64::MIN_POSITIVE);
                n += 1.0;
            }
            let n = if n > 0.0 { n } else { 1.0 };
            let label = match registry.resolve(spec.name()) {
                Ok(f) => f.label().to_string(),
                Err(_) => spec.name().to_string(), // unreachable: spec came from the registry
            };
            Standing {
                name: spec.slug(),
                label,
                energy_ratio: en / n,
                latency_ratio: lat / n,
                throughput_ratio: tput / n,
                edp_ratio: ed / n,
                wins: wins[i],
            }
        })
        .collect();
    standings.sort_by(|a, b| a.edp_ratio.total_cmp(&b.edp_ratio));
    standings
}

/// Ranked stdout table, ratios relative to baseline (lower is better
/// except throughput).
fn print_table(standings: &[Standing]) {
    println!(
        "{:<5} {:<14} {:<24} {:>8} {:>8} {:>8} {:>8} {:>5}",
        "rank", "policy", "label", "energy", "latency", "tput", "EDP", "wins"
    );
    for (i, s) in standings.iter().enumerate() {
        println!(
            "{:<5} {:<14} {:<24} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>5}",
            i + 1,
            s.name,
            s.label,
            s.energy_ratio,
            s.latency_ratio,
            s.throughput_ratio,
            s.edp_ratio,
            s.wins
        );
    }
}
