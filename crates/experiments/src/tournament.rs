//! `dozz-repro tournament` — every registered policy, head to head.
//!
//! Runs the full registry (the five paper models plus every plug-in
//! policy, seven builtins today) over the five held-out test benchmarks
//! on the work-stealing engine with the content-addressed run cache,
//! then ranks policies by mean energy-delay product against the
//! baseline. Per-benchmark EDP wins break the narrative down further:
//! a policy can lose the average yet own a workload.
//!
//! Output: a ranked stdout table and `tournament.csv` under `--out`.
//! Ratio columns are relative to the baseline policy: energy, latency
//! and EDP are lower-is-better (↓), throughput is higher-is-better (↑).
//! A policy with no comparable rows (its runs all failed, or no
//! baseline row exists for its benchmarks) reports `NaN` ratios —
//! rendered `n/a` in the table — and ranks last instead of first.

use dozznoc_core::experiment::edp;
use dozznoc_core::{Campaign, PolicyRegistry, PolicyResult};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

use crate::ctx::{banner, Ctx};
use crate::engine;
use crate::suite::suite_for;

/// One policy's aggregate standing across the benchmark matrix.
struct Standing {
    name: String,
    label: String,
    energy_ratio: f64,
    latency_ratio: f64,
    throughput_ratio: f64,
    edp_ratio: f64,
    wins: usize,
}

/// Run the all-policies tournament and write the ranked report.
pub fn run(ctx: &Ctx) {
    let registry = PolicyRegistry::global();
    let specs = registry.default_specs();
    banner(&format!(
        "Tournament — {} policies × {} benchmarks (8×8 mesh, epoch 500)",
        specs.len(),
        TEST_BENCHMARKS.len()
    ));

    let topo = Topology::mesh8x8();
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
    let campaign = Campaign::new(topo)
        .with_duration_ns(ctx.duration_ns())
        .with_seed(ctx.seed);

    let cache = ctx.run_cache();
    let cells = campaign
        .run_policy_cells(
            &TEST_BENCHMARKS,
            &specs,
            &suite,
            registry,
            &ctx.engine_opts(cache.as_ref()),
        )
        .expect("registry default specs always build");
    let hits = cells.iter().filter(|c| c.cache_hit).count();
    engine::log_cache(cache.as_ref(), hits, cells.len());
    let results: Vec<PolicyResult> = cells.into_iter().map(|c| c.result).collect();

    let standings = rank(registry, &specs, &results);
    print_table(&standings);
    // Column semantics: `*_vs_baseline` ratios where energy, latency
    // and EDP are lower-is-better and throughput is higher-is-better;
    // a policy with no comparable results writes `n/a`.
    ctx.write_csv(
        "tournament.csv",
        "rank,policy,label,energy_vs_baseline,latency_vs_baseline,\
         throughput_vs_baseline,edp_vs_baseline,benchmark_wins",
        &standings
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "{},{},{},{},{},{},{},{}",
                    i + 1,
                    s.name,
                    s.label,
                    fmt_ratio(s.energy_ratio, 4),
                    fmt_ratio(s.latency_ratio, 4),
                    fmt_ratio(s.throughput_ratio, 4),
                    fmt_ratio(s.edp_ratio, 4),
                    s.wins
                )
            })
            .collect::<Vec<_>>(),
    );
}

/// Aggregate per-policy ratios vs. the baseline rows and sort by mean
/// EDP (best first). Ties break on the registry's registration order,
/// which `specs` preserves, so the ranking is deterministic.
///
/// A spec with zero comparable results gets `NaN` ratios and sorts
/// last: averaging zero rows used to yield 0.0 ratios, which crowned
/// any crashed-out policy tournament champion.
fn rank(
    registry: &PolicyRegistry,
    specs: &[dozznoc_core::PolicySpec],
    results: &[PolicyResult],
) -> Vec<Standing> {
    let baselines: Vec<&PolicyResult> = results
        .iter()
        .filter(|r| r.policy.name() == "baseline")
        .collect();
    let base_for = |bench: &str| baselines.iter().find(|b| b.benchmark == bench);

    // Per-benchmark winner: the policy with the lowest EDP on it.
    let mut wins: Vec<usize> = vec![0; specs.len()];
    for base in &baselines {
        let best = results
            .iter()
            .filter(|r| r.benchmark == base.benchmark)
            .min_by(|a, b| edp(&a.report).total_cmp(&edp(&b.report)));
        if let Some(best) = best {
            if let Some(i) = specs.iter().position(|s| s == &best.policy) {
                wins[i] += 1;
            }
        }
    }

    let mut standings: Vec<Standing> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut n = 0.0;
            let (mut en, mut lat, mut tput, mut ed) = (0.0, 0.0, 0.0, 0.0);
            for r in results.iter().filter(|r| &r.policy == spec) {
                let Some(base) = base_for(&r.benchmark) else {
                    continue;
                };
                let total = |rep: &dozznoc_noc::RunReport| {
                    rep.energy.static_j + rep.energy.dynamic_with_ml_j()
                };
                en += total(&r.report) / total(&base.report).max(f64::MIN_POSITIVE);
                lat += r.report.latency_vs(&base.report);
                tput += r.report.throughput_vs(&base.report);
                ed += edp(&r.report) / edp(&base.report).max(f64::MIN_POSITIVE);
                n += 1.0;
            }
            // No comparable rows → NaN, not a divide-by-one 0.0 that
            // would sort ahead of every real ratio.
            let mean = |sum: f64| if n > 0.0 { sum / n } else { f64::NAN };
            let label = match registry.resolve(spec.name()) {
                Ok(f) => f.label().to_string(),
                Err(_) => spec.name().to_string(), // unreachable: spec came from the registry
            };
            Standing {
                name: spec.slug(),
                label,
                energy_ratio: mean(en),
                latency_ratio: mean(lat),
                throughput_ratio: mean(tput),
                edp_ratio: mean(ed),
                wins: wins[i],
            }
        })
        .collect();
    // NaN standings (no comparable results) explicitly rank last.
    // `total_cmp` alone would sort a *negative* NaN first.
    standings.sort_by(|a, b| {
        a.edp_ratio
            .is_nan()
            .cmp(&b.edp_ratio.is_nan())
            .then(a.edp_ratio.total_cmp(&b.edp_ratio))
    });
    standings
}

/// Render one ratio cell: `n/a` when the policy had no comparable
/// results, else a fixed-point ratio.
fn fmt_ratio(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{x:.decimals$}")
    }
}

/// Ranked stdout table. All ratio columns are relative to baseline;
/// the (↓)/(↑) markers say which direction wins: energy, latency and
/// EDP ratios are lower-is-better, the throughput ratio is
/// higher-is-better.
fn print_table(standings: &[Standing]) {
    println!("ratios vs baseline — ↓ lower is better, ↑ higher is better");
    println!(
        "{:<5} {:<14} {:<24} {:>9} {:>10} {:>8} {:>8} {:>5}",
        "rank", "policy", "label", "energy(↓)", "latency(↓)", "tput(↑)", "EDP(↓)", "wins"
    );
    for (i, s) in standings.iter().enumerate() {
        println!(
            "{:<5} {:<14} {:<24} {:>9} {:>10} {:>8} {:>8} {:>5}",
            i + 1,
            s.name,
            s.label,
            fmt_ratio(s.energy_ratio, 3),
            fmt_ratio(s.latency_ratio, 3),
            fmt_ratio(s.throughput_ratio, 3),
            fmt_ratio(s.edp_ratio, 3),
            s.wins
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dozznoc_core::PolicySpec;
    use dozznoc_noc::{RunReport, RunStats};
    use dozznoc_power::EnergyReport;
    use dozznoc_types::{SimTime, TICKS_PER_NS};

    /// Synthesize one result with a controlled EDP:
    /// `edp = energy_j × latency_ns` (one delivered packet).
    fn result(policy: &str, bench: &str, energy_j: f64, latency_ns: f64) -> PolicyResult {
        let stats = RunStats {
            packets_delivered: 1,
            net_latency_sum_ticks: (latency_ns * TICKS_PER_NS as f64) as u128,
            ..RunStats::default()
        };
        PolicyResult {
            benchmark: bench.to_string(),
            policy: PolicySpec::new(policy),
            report: RunReport {
                policy: policy.to_string(),
                trace: bench.to_string(),
                finished_at: SimTime::ZERO,
                stats,
                energy: EnergyReport {
                    static_j: energy_j,
                    ..EnergyReport::default()
                },
                per_router: Vec::new(),
            },
        }
    }

    /// Regression: a spec with zero comparable results used to average
    /// to an EDP ratio of 0.0 and take rank 1. It must report NaN and
    /// rank last.
    #[test]
    fn zero_result_policy_ranks_last_not_first() {
        let registry = PolicyRegistry::global();
        let specs = vec![
            PolicySpec::new("baseline"),
            PolicySpec::new("dozznoc"),
            PolicySpec::new("ghost"), // no results at all
        ];
        let results = vec![
            result("baseline", "x264", 2.0, 10.0),
            result("dozznoc", "x264", 1.0, 10.0),
        ];
        let standings = rank(registry, &specs, &results);
        assert_eq!(standings[0].name, "dozznoc");
        assert!((standings[0].edp_ratio - 0.5).abs() < 1e-12);
        assert_eq!(standings[1].name, "baseline");
        let ghost = &standings[2];
        assert_eq!(ghost.name, "ghost");
        assert!(ghost.edp_ratio.is_nan(), "ghost EDP must be NaN");
        assert!(ghost.energy_ratio.is_nan());
        assert!(ghost.latency_ratio.is_nan());
        assert!(ghost.throughput_ratio.is_nan());
        assert_eq!(ghost.wins, 0);
    }

    /// A policy whose benchmarks have no baseline row is just as
    /// incomparable as one with no rows.
    #[test]
    fn policy_without_baseline_rows_is_incomparable() {
        let registry = PolicyRegistry::global();
        let specs = vec![PolicySpec::new("baseline"), PolicySpec::new("dozznoc")];
        let results = vec![
            result("baseline", "x264", 2.0, 10.0),
            // dozznoc only ran a benchmark the baseline never did.
            result("dozznoc", "bodytrack", 1.0, 10.0),
        ];
        let standings = rank(registry, &specs, &results);
        assert_eq!(standings[0].name, "baseline");
        assert_eq!(standings[1].name, "dozznoc");
        assert!(standings[1].edp_ratio.is_nan());
    }

    /// Per-benchmark wins still go to the lowest-EDP policy, and the
    /// comparable ratios average normally.
    #[test]
    fn wins_and_ratios_survive_the_nan_policy() {
        let registry = PolicyRegistry::global();
        let specs = vec![
            PolicySpec::new("baseline"),
            PolicySpec::new("dozznoc"),
            PolicySpec::new("ghost"),
        ];
        let results = vec![
            result("baseline", "x264", 2.0, 10.0),
            result("dozznoc", "x264", 1.0, 5.0),
            result("baseline", "ferret", 4.0, 10.0),
            result("dozznoc", "ferret", 1.0, 10.0),
        ];
        let standings = rank(registry, &specs, &results);
        let dozz = &standings[0];
        assert_eq!(dozz.name, "dozznoc");
        assert_eq!(dozz.wins, 2);
        // x264: edp 5/20 = 0.25; ferret: 10/40 = 0.25 → mean 0.25.
        assert!((dozz.edp_ratio - 0.25).abs() < 1e-12);
        assert_eq!(standings[2].name, "ghost");
    }

    #[test]
    fn nan_ratio_renders_as_na() {
        assert_eq!(fmt_ratio(f64::NAN, 3), "n/a");
        assert_eq!(fmt_ratio(0.5, 3), "0.500");
        assert_eq!(fmt_ratio(1.25, 4), "1.2500");
    }
}
