//! §III-D: ML label-generation overhead for the 5- and 41-feature sets.

use dozznoc_power::MlOverhead;

use crate::ctx::{banner, Ctx};

/// Regenerate the overhead comparison.
pub fn run(ctx: &Ctx) {
    banner("§III-D — ML label-generation overhead");
    println!(
        "{:>10} {:>14} {:>12} {:>10}",
        "features", "energy (pJ)", "area (mm²)", "cycles"
    );
    let mut rows = Vec::new();
    for n in [5usize, 41] {
        let o = MlOverhead::for_features(n);
        println!(
            "{:>10} {:>14.1} {:>12.3} {:>10}",
            n, o.energy_pj, o.area_mm2, o.latency_cycles
        );
        rows.push(format!(
            "{n},{},{},{}",
            o.energy_pj, o.area_mm2, o.latency_cycles
        ));
    }
    println!("(paper: 7.1 pJ / 0.013 mm² for 5; 61.1 pJ / 0.122 mm² for 41; 3–4 cycles)");
    ctx.write_csv(
        "overhead.csv",
        "features,energy_pj,area_mm2,latency_cycles",
        &rows,
    );
}

/// Transition-energy study (extension): how big is the wake/switch
/// charge cost the paper's accounting ignores?
pub fn transitions(ctx: &crate::ctx::Ctx) {
    use dozznoc_core::{run_model, ModelKind};
    use dozznoc_ml::FeatureSet;
    use dozznoc_topology::Topology;
    use dozznoc_traffic::{TraceGenerator, TEST_BENCHMARKS};

    banner("Extension — rail-transition energy vs the paper's accounting");
    let topo = Topology::mesh8x8();
    let cfg = dozznoc_noc::NocConfig::paper(topo);
    let suite = crate::suite::suite_for(ctx, topo, 500, FeatureSet::Reduced5);

    println!(
        "{:<12} {:<22} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "model", "static µJ", "saved µJ", "transition µJ", "share"
    );
    let mut rows = Vec::new();
    for &bench in &TEST_BENCHMARKS {
        let trace = TraceGenerator::new(topo)
            .with_duration_ns(ctx.duration_ns())
            .with_seed(ctx.seed)
            .generate(bench);
        let base = run_model(cfg, &trace, ModelKind::Baseline, &suite);
        for kind in [ModelKind::PowerGated, ModelKind::DozzNoc] {
            let r = run_model(cfg, &trace, kind, &suite);
            let saved = (base.energy.static_j - r.energy.static_j).max(0.0);
            let share = r.energy.transition_j / saved.max(f64::MIN_POSITIVE);
            println!(
                "{:<12} {:<22} {:>12.2} {:>12.2} {:>12.3} {:>9.1}%",
                bench.name(),
                kind.label(),
                r.energy.static_j * 1e6,
                saved * 1e6,
                r.energy.transition_j * 1e6,
                share * 100.0
            );
            rows.push(format!(
                "{},{},{:.4e},{:.4e},{:.4e},{:.4}",
                bench.name(),
                kind.label(),
                r.energy.static_j,
                saved,
                r.energy.transition_j,
                share
            ));
        }
    }
    println!(
        "(share = transition energy / static energy saved; small shares justify\n\
         the paper's choice to account transitions in time but not charge)"
    );
    ctx.write_csv(
        "transition_energy.csv",
        "benchmark,model,static_j,saved_j,transition_j,share_of_savings",
        &rows,
    );
}
