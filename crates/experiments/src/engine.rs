//! Shared campaign execution for the matrix commands.
//!
//! Every command that evaluates a (benchmark × model) matrix funnels
//! through [`run_campaign`]: cells run on the work-stealing scheduler
//! (`--jobs N` workers, default every core), previously simulated cells
//! replay from the content-addressed run cache under
//! `<out>/.runcache/`, and the cache outcome is logged so warm reruns
//! are visible. `--no-cache` forces every cell to simulate.

use dozznoc_core::{Campaign, CampaignResult, ModelSuite, RunCache};
use dozznoc_traffic::Benchmark;

use crate::ctx::Ctx;

/// Run a campaign through the shared engine and return its results in
/// presentation order.
pub fn run_campaign(
    ctx: &Ctx,
    campaign: &Campaign,
    benches: &[Benchmark],
    suite: &ModelSuite,
) -> Vec<CampaignResult> {
    let cache = ctx.run_cache();
    let cells = campaign.run_cells(benches, suite, &ctx.engine_opts(cache.as_ref()));
    let hits = cells.iter().filter(|c| c.cache_hit).count();
    log_cache(cache.as_ref(), hits, cells.len());
    cells.into_iter().map(|cell| cell.result).collect()
}

/// One consistent line about a campaign's cache outcome.
pub fn log_cache(cache: Option<&RunCache>, hits: usize, cells: usize) {
    match cache {
        Some(cache) => eprintln!(
            "  run cache: {hits}/{cells} cells replayed, {sims} simulated ({dir})",
            sims = cells - hits,
            dir = cache.dir().display()
        ),
        None => eprintln!("  run cache: disabled (--no-cache), {cells} cells simulated"),
    }
}
