//! Tables I–V: regenerated directly from the substrate models.

use dozznoc_ml::metrics::MODE_THRESHOLDS;
use dozznoc_ml::FeatureSet;
use dozznoc_power::regulator::delay::RegState;
use dozznoc_power::{DsentCosts, SimoRegulator, SwitchDelayTable, VfTable};
use dozznoc_types::ACTIVE_MODES;

use crate::ctx::{banner, Ctx};

/// Table I: LDO dropout ranges for the three SIMO rails.
pub fn table1(ctx: &Ctx) {
    banner("Table I — LDO voltage dropout per SIMO rail");
    let simo = SimoRegulator::default();
    println!(
        "{:<10} {:<18} {:<14}",
        "LDO Vin", "LDO Vout range", "dropout range"
    );
    let mut rows = Vec::new();
    for (rail, lo, hi) in [(0.9, 0.8, 0.9), (1.1, 1.0, 1.1), (1.2, 1.2, 1.2)] {
        let drop_lo = simo.ldo_for(hi).dropout();
        let drop_hi = simo.ldo_for(lo).dropout();
        println!(
            "{:<10} {:<18} {:<14}",
            format!("{rail:.1} V"),
            format!("{lo:.1} V – {hi:.1} V"),
            format!("{drop_lo:.1} V – {drop_hi:.1} V"),
        );
        rows.push(format!("{rail},{lo},{hi},{drop_lo},{drop_hi}"));
        assert!(drop_hi <= 0.1 + 1e-12, "design envelope violated");
    }
    println!(
        "worst dropout over all modes: {:.3} V (envelope 0.1 V)",
        simo.max_dropout_over_range()
    );
    ctx.write_csv(
        "table1.csv",
        "rail_v,vout_lo,vout_hi,dropout_lo,dropout_hi",
        &rows,
    );
}

/// Table II: measured 6×6 switch-latency matrix.
pub fn table2(ctx: &Ctx) {
    banner("Table II — measured mode-switch latency (ns)");
    let t = SwitchDelayTable::paper();
    print!("{:<8}", "from\\to");
    for s in RegState::all() {
        print!("{:>8}", s.to_string());
    }
    println!();
    let mut rows = Vec::new();
    for from in RegState::all() {
        print!("{:<8}", from.to_string());
        let mut cells = vec![from.to_string()];
        for to in RegState::all() {
            let ns = t.latency_ns(from, to);
            print!("{ns:>8.1}");
            cells.push(format!("{ns}"));
        }
        println!();
        rows.push(cells.join(","));
    }
    println!(
        "worst wake-up {:.1} ns, worst switch {:.1} ns",
        t.worst_wakeup_ns(),
        t.worst_switch_ns()
    );
    ctx.write_csv("table2.csv", "from,PG,0.8V,0.9V,1.0V,1.1V,1.2V", &rows);
}

/// Table III: per-mode cycle costs.
pub fn table3(ctx: &Ctx) {
    banner("Table III — T-Switch / T-Wakeup / T-Breakeven (cycles)");
    let t = VfTable::paper();
    println!(
        "{:<8} {:<10} {:>10} {:>10} {:>12}",
        "Volt.", "Freq.", "T-Switch", "T-Wakeup", "T-Breakeven"
    );
    let mut rows = Vec::new();
    for m in ACTIVE_MODES {
        let r = t.timings(m);
        println!(
            "{:<8} {:<10} {:>10} {:>10} {:>12}",
            format!("{:.1} V", m.voltage()),
            format!("{} GHz", m.freq_ghz()),
            r.t_switch_cycles.count(),
            r.t_wakeup_cycles.count(),
            r.t_breakeven_cycles.count()
        );
        rows.push(format!(
            "{},{},{},{},{}",
            m.voltage(),
            m.freq_ghz(),
            r.t_switch_cycles.count(),
            r.t_wakeup_cycles.count(),
            r.t_breakeven_cycles.count()
        ));
    }
    ctx.write_csv(
        "table3.csv",
        "volt,freq_ghz,t_switch,t_wakeup,t_breakeven",
        &rows,
    );
}

/// Table IV: the reduced feature set, plus the mode-selection thresholds
/// the label drives.
pub fn table4(ctx: &Ctx) {
    banner("Table IV — reduced feature set");
    let ids = FeatureSet::Reduced5.ids();
    let mut rows = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        println!("Feature {}: {}", i + 1, id.name());
        rows.push(format!("{},{}", i + 1, id.name()));
    }
    println!("Label:     future input buffer utilization");
    println!("\nmode thresholds (Fig. 3(b)):");
    for (thr, mode) in MODE_THRESHOLDS {
        println!("  IBU < {:>4.0}% → M{}", thr * 100.0, mode.index());
    }
    println!("  IBU ≥  25% → M7");
    ctx.write_csv("table4.csv", "index,feature", &rows);
}

/// Table V: the DSENT-derived cost model.
pub fn table5(ctx: &Ctx) {
    banner("Table V — static power & dynamic energy (22 nm, 128-bit flits)");
    let c = DsentCosts::paper();
    println!(
        "{:<8} {:<10} {:>14} {:>14} {:>16}",
        "Volt.", "Freq.", "Static (J/s)", "Static (cyc)", "Dynamic (pJ/hop)"
    );
    let mut rows = Vec::new();
    for m in ACTIVE_MODES {
        let r = c.costs(m);
        println!(
            "{:<8} {:<10} {:>14.3} {:>14.3} {:>16.1}",
            format!("{:.1} V", m.voltage()),
            format!("{} GHz", m.freq_ghz()),
            r.static_power_w,
            r.static_per_cycle,
            r.dynamic_pj_per_hop
        );
        rows.push(format!(
            "{},{},{},{},{}",
            m.voltage(),
            m.freq_ghz(),
            r.static_power_w,
            r.static_per_cycle,
            r.dynamic_pj_per_hop
        ));
    }
    ctx.write_csv(
        "table5.csv",
        "volt,freq_ghz,static_w,static_per_cycle,dynamic_pj_per_hop",
        &rows,
    );
}
