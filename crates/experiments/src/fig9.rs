//! Fig. 9 (called "Fig. 11" in the paper's body text): mode-selection
//! accuracy of single-feature models across the five test traces.
//!
//! For each candidate feature we train a ridge model on [bias, feature]
//! alone, then measure how often its prediction picks the same DVFS mode
//! as the true future IBU on held-out test data. The paper finds current
//! IBU ≈ 80% and router-off-time / core-traffic ≈ 40%.

use dozznoc_core::training::ReactiveKind;
use dozznoc_ml::{mode_selection_accuracy, FeatureSet, RidgeRegression};
use dozznoc_topology::Topology;
use dozznoc_traffic::{TEST_BENCHMARKS, TRAIN_BENCHMARKS, VALIDATION_BENCHMARKS};

use crate::ctx::{banner, Ctx};
use crate::suite::trainer_for;

/// The candidate features the study compares (Table IV minus the bias),
/// identified by their Full-41 column.
fn candidates() -> Vec<(String, usize)> {
    let full = FeatureSet::Full41.ids();
    FeatureSet::Reduced5
        .columns_in_full41()
        .into_iter()
        .skip(1) // skip the bias
        .map(|col| (full[col].name(), col))
        .collect()
}

/// Regenerate the single-feature accuracy study.
pub fn run(ctx: &Ctx) {
    banner("Fig. 9 — single-feature mode-selection accuracy");
    let topo = Topology::mesh8x8();
    let trainer = trainer_for(ctx, topo, 500);

    eprintln!("  collecting train/validation/test datasets…");
    let train41 = trainer.collect(ReactiveKind::Gated, &TRAIN_BENCHMARKS);
    let val41 = trainer.collect(ReactiveKind::Gated, &VALIDATION_BENCHMARKS);
    let tests: Vec<_> = TEST_BENCHMARKS
        .iter()
        .map(|&b| (b.name(), trainer.collect(ReactiveKind::Gated, &[b])))
        .collect();

    let mut rows = Vec::new();
    println!(
        "{:<28} {}",
        "feature",
        TEST_BENCHMARKS
            .map(|b| format!("{:>10}", b.name()))
            .join("")
    );
    for (name, col) in candidates() {
        let weights = trainer.train_single_feature(&train41, &val41, col);
        let mut cells = Vec::new();
        let mut accs = Vec::new();
        for (bench, ds41) in &tests {
            let ds = ds41.project(&[0, col]);
            let pred = RidgeRegression::predict(&weights, &ds);
            let acc = mode_selection_accuracy(&pred, ds.labels());
            cells.push(format!("{:>9.1}%", acc * 100.0));
            accs.push(acc);
            rows.push(format!("{name},{bench},{acc:.4}"));
        }
        let avg = accs.iter().sum::<f64>() / accs.len() as f64;
        println!("{name:<28} {}   avg {:.1}%", cells.join(""), avg * 100.0);
    }
    ctx.write_csv(
        "fig9_single_feature_accuracy.csv",
        "feature,benchmark,accuracy",
        &rows,
    );
}
