//! The §IV-B headline numbers: per-model average savings vs. baseline on
//! mesh and cmesh, compared against the paper's quoted figures — plus
//! the DOZZNOC-5 vs DOZZNOC-41 feature ablation.

use dozznoc_core::experiment::summarize;
use dozznoc_core::{Campaign, ModelKind};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

use crate::ctx::{banner, Ctx};
use crate::engine;
use crate::suite::suite_for;

/// Paper-quoted values for the comparison printout:
/// (model, static savings %, dynamic savings %, throughput loss %,
/// latency increase %).
const PAPER_MESH: [(ModelKind, f64, f64, f64, f64); 4] = [
    (ModelKind::PowerGated, 47.0, 0.0, 9.0, 5.0),
    (ModelKind::LeadDvfs, 25.0, 25.0, 3.0, 1.0),
    (ModelKind::DozzNoc, 53.0, 25.0, 7.0, 3.0),
    (ModelKind::MlTurbo, 52.0, 21.0, 7.0, 3.0),
];

/// cmesh: the paper quotes DozzNoC only (39% static, 18% dynamic, −5%
/// throughput, +2% latency).
const PAPER_CMESH_DOZZNOC: (f64, f64, f64, f64) = (39.0, 18.0, 5.0, 2.0);

/// Regenerate the headline summary for both topologies.
pub fn run(ctx: &Ctx) {
    for topo in [Topology::mesh8x8(), Topology::cmesh4x4()] {
        banner(&format!(
            "§IV-B headline — {} (epoch 500, uncompressed)",
            topo.kind()
        ));
        let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
        let campaign = Campaign::new(topo)
            .with_duration_ns(ctx.duration_ns())
            .with_seed(ctx.seed);
        let results = engine::run_campaign(ctx, &campaign, &TEST_BENCHMARKS, &suite);
        let summaries = summarize(&results);

        println!(
            "{:<22} {:>12} {:>12} {:>11} {:>10} {:>10}",
            "model", "static-save", "dyn-save", "tput-loss", "lat-incr", "EDP"
        );
        let mut rows = Vec::new();
        for s in &summaries {
            println!(
                "{:<22} {:>11.1}% {:>11.1}% {:>10.1}% {:>9.1}% {:>9.1}%",
                s.model.label(),
                s.static_savings_pct(),
                s.dynamic_savings_pct(),
                s.throughput_loss_pct(),
                s.latency_increase_pct(),
                s.edp_change_pct()
            );
            rows.push(format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                s.model.label(),
                s.static_savings_pct(),
                s.dynamic_savings_pct(),
                s.throughput_loss_pct(),
                s.latency_increase_pct(),
                s.edp_change_pct()
            ));
        }

        println!("\npaper-reported values for comparison:");
        match topo.kind() {
            dozznoc_topology::TopologyKind::Mesh => {
                for (m, s, d, t, l) in PAPER_MESH {
                    println!(
                        "{:<22} {:>11.1}% {:>11.1}% {:>10.1}% {:>9.1}%",
                        m.label(),
                        s,
                        d,
                        t,
                        l
                    );
                }
            }
            dozznoc_topology::TopologyKind::CMesh => {
                let (s, d, t, l) = PAPER_CMESH_DOZZNOC;
                println!(
                    "{:<22} {:>11.1}% {:>11.1}% {:>10.1}% {:>9.1}%",
                    ModelKind::DozzNoc.label(),
                    s,
                    d,
                    t,
                    l
                );
            }
        }
        ctx.write_csv(
            &format!("headline_{}.csv", topo.kind()),
            "model,static_save_pct,dyn_save_pct,tput_loss_pct,lat_incr_pct,edp_change_pct",
            &rows,
        );
    }
}

/// DOZZNOC-5 vs DOZZNOC-41 (§IV-B.1): reducing 41 features to 5 should
/// cost almost nothing.
pub fn ablation_features(ctx: &Ctx) {
    banner("Feature ablation — DOZZNOC-5 vs DOZZNOC-41 (mesh, epoch 500)");
    let topo = Topology::mesh8x8();
    let mut rows = Vec::new();
    for fs in [FeatureSet::Reduced5, FeatureSet::Full41] {
        let suite = suite_for(ctx, topo, 500, fs);
        let campaign = Campaign::new(topo)
            .with_duration_ns(ctx.duration_ns())
            .with_seed(ctx.seed)
            .try_with_models(&[ModelKind::Baseline, ModelKind::DozzNoc])
            .expect("non-empty model set");
        let results = engine::run_campaign(ctx, &campaign, &TEST_BENCHMARKS, &suite);
        let summary = summarize(&results)
            .into_iter()
            .find(|s| s.model == ModelKind::DozzNoc)
            .expect("dozznoc summarized");
        println!(
            "DOZZNOC-{:<3} static-save {:>5.1}%  dyn-save {:>5.1}%  tput-loss {:>5.1}%  lat-incr {:>6.1}%  (λ={:.3}, val-MSE={:.5})",
            fs.len(),
            summary.static_savings_pct(),
            summary.dynamic_savings_pct(),
            summary.throughput_loss_pct(),
            summary.latency_increase_pct(),
            suite.dozznoc.lambda,
            suite.dozznoc.validation_mse,
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            fs.len(),
            summary.static_savings_pct(),
            summary.dynamic_savings_pct(),
            summary.throughput_loss_pct(),
            summary.latency_increase_pct()
        ));
    }
    println!("(paper: almost no difference between the two)");
    ctx.write_csv(
        "ablation_features.csv",
        "features,static_save_pct,dyn_save_pct,tput_loss_pct,lat_incr_pct",
        &rows,
    );
}
