//! Fig. 7: distribution of predicted DVFS modes for the three ML models
//! over the five test benchmarks (8×8 mesh, uncompressed, epoch 500).

use dozznoc_core::{Campaign, ModelKind};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::TEST_BENCHMARKS;

use crate::ctx::{banner, Ctx};
use crate::engine;
use crate::suite::suite_for;

const ML_MODELS: [ModelKind; 3] = [ModelKind::DozzNoc, ModelKind::LeadDvfs, ModelKind::MlTurbo];

/// Regenerate the per-benchmark mode-residency breakdown.
pub fn run(ctx: &Ctx) {
    banner("Fig. 7 — DVFS mode distribution (8×8 mesh, uncompressed, epoch 500)");
    let topo = Topology::mesh8x8();
    let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
    let campaign = Campaign::new(topo)
        .with_duration_ns(ctx.duration_ns())
        .with_seed(ctx.seed)
        .try_with_models(&ML_MODELS)
        .expect("non-empty model set");
    let results = engine::run_campaign(ctx, &campaign, &TEST_BENCHMARKS, &suite);

    let mut rows = Vec::new();
    for model in ML_MODELS {
        println!("\n{}", model.label());
        println!(
            "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "benchmark", "M3", "M4", "M5", "M6", "M7"
        );
        for r in results.iter().filter(|r| r.model == model) {
            let d = r.report.stats.mode_distribution();
            println!(
                "{:<14} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                r.benchmark,
                d[0] * 100.0,
                d[1] * 100.0,
                d[2] * 100.0,
                d[3] * 100.0,
                d[4] * 100.0
            );
            rows.push(format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                model.label(),
                r.benchmark,
                d[0],
                d[1],
                d[2],
                d[3],
                d[4]
            ));
        }
    }
    ctx.write_csv(
        "fig7_mode_distribution.csv",
        "model,benchmark,m3,m4,m5,m6,m7",
        &rows,
    );
}
