//! `dozz-repro check` — run the evaluation matrix under the runtime
//! invariant sanitizer.
//!
//! Every (topology, benchmark, model) cell runs with a fresh
//! [`SimSanitizer`] sweeping the simulator's flow-control, conservation
//! and scheduling invariants after every event tick (the catalogue is
//! in `DESIGN.md`). A healthy build reports zero violations everywhere;
//! any violation prints its structured detail and fails the process
//! with exit code 1, which is what makes this subcommand CI-able.
//!
//! `--bench NAME` restricts the matrix to one benchmark; `--quick`
//! shortens the traces. Results are also written to
//! `sanitizer_check.csv` under `--out`.

use dozznoc_core::model::ALL_MODELS;
use dozznoc_core::run_model_sanitized;
use dozznoc_ml::FeatureSet;
use dozznoc_noc::{NocConfig, NullSink, SimSanitizer};
use dozznoc_topology::Topology;
use dozznoc_traffic::{Benchmark, TraceGenerator, ALL_BENCHMARKS, TEST_BENCHMARKS};

use crate::ctx::{banner, Ctx};
use crate::suite::suite_for;

fn parse_bench(name: &str) -> Benchmark {
    ALL_BENCHMARKS
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let known: Vec<&str> = ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
            panic!("unknown benchmark `{name}` (known: {})", known.join(", "))
        })
}

/// Run every cell of the evaluation matrix under the sanitizer.
pub fn run(ctx: &Ctx) {
    banner("Sanitizer check — invariant sweep over the evaluation matrix");
    let benches: Vec<Benchmark> = match ctx.bench.as_deref() {
        Some(name) => vec![parse_bench(name)],
        None => TEST_BENCHMARKS.to_vec(),
    };

    let mut rows = Vec::new();
    let mut total_violations = 0u64;
    let mut cells = 0u64;
    println!(
        "{:<10} {:<14} {:<10} {:>12} {:>10}",
        "topology", "benchmark", "model", "sweeps", "violations"
    );
    for topo in [Topology::mesh8x8(), Topology::cmesh4x4()] {
        let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
        for &bench in &benches {
            let trace = TraceGenerator::new(topo)
                .with_duration_ns(ctx.duration_ns())
                .with_seed(ctx.seed)
                .generate(bench);
            for model in ALL_MODELS {
                let mut san = SimSanitizer::default();
                let report = run_model_sanitized(
                    NocConfig::paper(topo),
                    &trace,
                    model,
                    &suite,
                    &mut NullSink,
                    &mut san,
                );
                let sr = san.report();
                cells += 1;
                total_violations += sr.total_violations;
                println!(
                    "{:<10} {:<14} {:<10} {:>12} {:>10}",
                    topo.kind(),
                    bench.name(),
                    model.slug(),
                    sr.sweeps,
                    sr.total_violations
                );
                for v in &sr.violations {
                    eprintln!("    VIOLATION @ tick {}: {:?}", v.tick, v.kind);
                }
                rows.push(format!(
                    "{},{},{},{},{},{}",
                    topo.kind(),
                    bench.name(),
                    model.slug(),
                    sr.sweeps,
                    sr.total_violations,
                    report.stats.packets_delivered
                ));
            }
        }
    }
    ctx.write_csv(
        "sanitizer_check.csv",
        "topology,benchmark,model,sweeps,violations,packets_delivered",
        &rows,
    );
    if total_violations > 0 {
        eprintln!("\nFAIL: {total_violations} invariant violation(s) across {cells} cells");
        std::process::exit(1);
    }
    println!("\nOK: {cells} cells, zero invariant violations");
}
