//! `dozz-repro check` — run the evaluation matrix under the runtime
//! invariant sanitizer.
//!
//! The matrix routes through the shared cell engine with
//! [`EngineOptions::sanitize`] set: every simulated
//! (topology, benchmark, model) cell runs with a fresh `SimSanitizer`
//! sweeping the simulator's flow-control, conservation and scheduling
//! invariants after every event tick (the catalogue is in `DESIGN.md`).
//! A healthy build reports zero violations everywhere; any violation
//! prints its structured detail and fails the process with exit code 1,
//! which is what makes this subcommand CI-able.
//!
//! Cells replayed from the run cache were simulated before and skip the
//! sanitizer (their sweep and violation counts print as 0); pass
//! `--no-cache` to force a full sweep of every cell. `--bench NAME`
//! restricts the matrix to one benchmark; `--quick` shortens the
//! traces; `--jobs N` sets the worker count. Results are also written
//! to `sanitizer_check.csv` under `--out`.

use dozznoc_core::{Campaign, EngineOptions};
use dozznoc_ml::FeatureSet;
use dozznoc_topology::Topology;
use dozznoc_traffic::{Benchmark, ALL_BENCHMARKS, TEST_BENCHMARKS};

use crate::ctx::{banner, Ctx};
use crate::engine;
use crate::suite::suite_for;

fn parse_bench(name: &str) -> Benchmark {
    ALL_BENCHMARKS
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let known: Vec<&str> = ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
            panic!("unknown benchmark `{name}` (known: {})", known.join(", "))
        })
}

/// Run every cell of the evaluation matrix under the sanitizer.
pub fn run(ctx: &Ctx) {
    banner("Sanitizer check — invariant sweep over the evaluation matrix");
    let benches: Vec<Benchmark> = match ctx.bench.as_deref() {
        Some(name) => vec![parse_bench(name)],
        None => TEST_BENCHMARKS.to_vec(),
    };

    let cache = ctx.run_cache();
    let opts = EngineOptions {
        sanitize: true,
        ..ctx.engine_opts(cache.as_ref())
    };

    let mut rows = Vec::new();
    let mut total_violations = 0u64;
    let mut cells = 0u64;
    let mut hits = 0usize;
    println!(
        "{:<10} {:<14} {:<10} {:>12} {:>10}",
        "topology", "benchmark", "model", "sweeps", "violations"
    );
    for topo in [Topology::mesh8x8(), Topology::cmesh4x4()] {
        let suite = suite_for(ctx, topo, 500, FeatureSet::Reduced5);
        let campaign = Campaign::new(topo)
            .with_duration_ns(ctx.duration_ns())
            .with_seed(ctx.seed);
        for cell in campaign.run_cells(&benches, &suite, &opts) {
            let (sweeps, violations) = cell
                .sanitizer
                .as_ref()
                .map_or((0, 0), |sr| (sr.sweeps, sr.total_violations));
            cells += 1;
            hits += cell.cache_hit as usize;
            total_violations += violations;
            println!(
                "{:<10} {:<14} {:<10} {:>12} {:>10}{}",
                topo.kind(),
                cell.result.benchmark,
                cell.result.model.slug(),
                sweeps,
                violations,
                if cell.cache_hit { "  (cached)" } else { "" }
            );
            if let Some(sr) = &cell.sanitizer {
                for v in &sr.violations {
                    eprintln!("    VIOLATION @ tick {}: {:?}", v.tick, v.kind);
                }
            }
            rows.push(format!(
                "{},{},{},{},{},{}",
                topo.kind(),
                cell.result.benchmark,
                cell.result.model.slug(),
                sweeps,
                violations,
                cell.result.report.stats.packets_delivered
            ));
        }
    }
    engine::log_cache(cache.as_ref(), hits, cells as usize);
    ctx.write_csv(
        "sanitizer_check.csv",
        "topology,benchmark,model,sweeps,violations,packets_delivered",
        &rows,
    );
    if total_violations > 0 {
        eprintln!("\nFAIL: {total_violations} invariant violation(s) across {cells} cells");
        std::process::exit(1);
    }
    println!("\nOK: {cells} cells, zero invariant violations");
}
