//! Property tests for trace generation and transforms.

use proptest::prelude::*;

use dozznoc_topology::Topology;
use dozznoc_traffic::{Benchmark, TraceGenerator, ALL_BENCHMARKS};

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(ALL_BENCHMARKS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every generated trace is well-formed for every benchmark/seed:
    /// sorted, in-range, no self-addressing, deterministic.
    #[test]
    fn traces_well_formed(bench in arb_benchmark(), seed in 0u64..1000) {
        let generator = TraceGenerator::new(Topology::mesh8x8())
            .with_duration_ns(3_000)
            .with_seed(seed);
        let t = generator.generate(bench);
        prop_assert!(!t.is_empty());
        let mut last = 0;
        for p in t.packets() {
            prop_assert!(p.src.idx() < 64);
            prop_assert!(p.dst.idx() < 64);
            prop_assert_ne!(p.src, p.dst);
            prop_assert!(p.inject_time.ticks() >= last);
            last = p.inject_time.ticks();
        }
        prop_assert_eq!(t, generator.generate(bench));
    }

    /// Rescaling preserves packet count and order and scales the
    /// horizon by the ratio (up to integer truncation).
    #[test]
    fn rescale_scales_horizon(bench in arb_benchmark(), num in 1u64..4, den in 1u64..4) {
        let t = TraceGenerator::new(Topology::mesh8x8())
            .with_duration_ns(3_000)
            .generate(bench);
        let r = t.rescale(num, den);
        prop_assert_eq!(r.len(), t.len());
        let expect = t.horizon().ticks() * num / den;
        prop_assert!(r.horizon().ticks().abs_diff(expect) <= den);
        // Load changes by den/num.
        let ratio = r.stats().flits_per_ns / t.stats().flits_per_ns;
        let expect_ratio = den as f64 / num as f64;
        prop_assert!((ratio / expect_ratio - 1.0).abs() < 0.05, "{ratio} vs {expect_ratio}");
    }

    /// Request/response bookkeeping: responses never exceed requests and
    /// both kinds appear in every benchmark's trace.
    #[test]
    fn kind_mix(bench in arb_benchmark()) {
        let t = TraceGenerator::new(Topology::mesh8x8())
            .with_duration_ns(5_000)
            .generate(bench);
        let s = t.stats();
        prop_assert!(s.requests > 0);
        prop_assert!(s.responses > 0);
        prop_assert!(s.responses <= s.requests);
        prop_assert_eq!(s.packets, s.requests + s.responses);
    }
}
