//! Trace container: the paper's record format plus compression.
//!
//! "When a packet is injected into the network, the source, destination,
//! type (request/response) and injection time are all saved as a single
//! entry" (§IV-A). A [`Trace`] is a time-sorted vector of such entries
//! (as [`Packet`]s), with helpers for the statistics the calibration and
//! the feature extractor care about.

use serde::{Deserialize, Serialize};

use dozznoc_types::{CoreId, Packet, PacketId, PacketKind, SimTime, TickDelta};

/// A time-sorted sequence of packets to inject.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable origin (benchmark name, pattern name…).
    pub name: String,
    /// Number of cores the trace addresses.
    pub num_cores: usize,
    packets: Vec<Packet>,
}

impl Trace {
    /// Build a trace from packets, sorting by injection time and
    /// re-assigning dense packet ids in time order.
    pub fn new(name: impl Into<String>, num_cores: usize, mut packets: Vec<Packet>) -> Self {
        packets.sort_by_key(|p| (p.inject_time, p.src, p.dst));
        for (i, p) in packets.iter_mut().enumerate() {
            p.id = PacketId(i as u64);
            assert!(p.src.idx() < num_cores, "source core out of range");
            assert!(p.dst.idx() < num_cores, "destination core out of range");
            assert_ne!(p.src, p.dst, "self-addressed packet");
        }
        Trace {
            name: name.into(),
            num_cores,
            packets,
        }
    }

    /// The packets, ascending by injection time.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the trace injects nothing.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Injection time of the last packet (the trace horizon).
    pub fn horizon(&self) -> SimTime {
        self.packets.last().map_or(SimTime::ZERO, |p| p.inject_time)
    }

    /// Time-compress the trace by an integer `factor`: every injection
    /// time is divided by it, multiplying the offered load. This is the
    /// "compressed traces" configuration of Fig. 8(b).
    pub fn compress(&self, factor: u64) -> Trace {
        assert!(factor >= 1, "compression factor must be ≥ 1");
        self.rescale(1, factor)
    }

    /// Rescale every injection time by `num/den`, changing the offered
    /// load by `den/num` (e.g. `rescale(2, 3)` compresses time to ⅔,
    /// raising load 1.5×). Fractional compression lets the harness place
    /// "compressed" runs near — not hopelessly past — saturation.
    pub fn rescale(&self, num: u64, den: u64) -> Trace {
        assert!(num >= 1 && den >= 1, "rescale needs positive ratio");
        if num == den {
            return self.clone();
        }
        let packets = self
            .packets
            .iter()
            .map(|p| Packet {
                inject_time: SimTime::from_ticks(p.inject_time.ticks() * num / den),
                ..*p
            })
            .collect();
        Trace::new(
            format!("{}-x{:.2}", self.name, den as f64 / num as f64),
            self.num_cores,
            packets,
        )
    }

    /// Stable 64-bit FNV-1a content digest of the trace: name, core
    /// count, and every packet record (injection tick, source,
    /// destination, kind) in time order.
    ///
    /// The digest is a pure function of trace *content* — two traces
    /// built from the same generator inputs (benchmark, seed, duration,
    /// load scale) digest identically across processes and platforms,
    /// which is what lets the run cache key simulations on it. It is
    /// not cryptographic; the cache re-validates the trace name on
    /// every hit.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        };
        for b in self.name.bytes() {
            eat(b);
        }
        let mut eat_u64 = |v: u64| {
            for b in v.to_le_bytes() {
                eat(b);
            }
        };
        eat_u64(self.num_cores as u64);
        eat_u64(self.packets.len() as u64);
        for p in &self.packets {
            eat_u64(p.inject_time.ticks());
            eat_u64(p.src.idx() as u64);
            eat_u64(p.dst.idx() as u64);
            eat_u64(match p.kind {
                PacketKind::Request => 0,
                PacketKind::Response => 1,
            });
        }
        h
    }

    /// Summary statistics used for calibration checks.
    pub fn stats(&self) -> TraceStats {
        let horizon = self.horizon();
        let mut flits = 0u64;
        let mut requests = 0u64;
        let mut per_core_sent = vec![0u64; self.num_cores];
        for p in &self.packets {
            flits += p.flit_count() as u64;
            if p.kind == PacketKind::Request {
                requests += 1;
            }
            per_core_sent[p.src.idx()] += 1;
        }
        let duration_ns = horizon.as_ns().max(1e-9);
        let active_cores = per_core_sent.iter().filter(|&&c| c > 0).count();
        TraceStats {
            packets: self.packets.len() as u64,
            flits,
            requests,
            responses: self.packets.len() as u64 - requests,
            duration: SimTime::ZERO.delta(horizon),
            flits_per_ns: flits as f64 / duration_ns,
            active_cores,
        }
    }
}

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total packets.
    pub packets: u64,
    /// Total flits once serialized.
    pub flits: u64,
    /// Request packets.
    pub requests: u64,
    /// Response packets.
    pub responses: u64,
    /// Injection horizon.
    pub duration: TickDelta,
    /// Offered load in flits per nanosecond across the whole chip.
    pub flits_per_ns: f64,
    /// Cores that inject at least once.
    pub active_cores: usize,
}

/// Convenience constructor for tests and examples.
pub fn packet(src: u16, dst: u16, kind: PacketKind, inject_ns: f64) -> Packet {
    Packet {
        id: PacketId(0),
        src: CoreId(src),
        dst: CoreId(dst),
        kind,
        inject_time: SimTime::from_ns_ceil(inject_ns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "t",
            4,
            vec![
                packet(1, 2, PacketKind::Response, 30.0),
                packet(0, 1, PacketKind::Request, 10.0),
                packet(2, 3, PacketKind::Request, 20.0),
            ],
        )
    }

    #[test]
    fn packets_sorted_and_reindexed() {
        let t = sample();
        let times: Vec<f64> = t.packets().iter().map(|p| p.inject_time.as_ns()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        for (i, p) in t.packets().iter().enumerate() {
            assert_eq!(p.id.0, i as u64);
        }
    }

    #[test]
    fn horizon_is_last_injection() {
        let t = sample();
        assert!((t.horizon().as_ns() - 30.0).abs() < 0.1);
        assert_eq!(Trace::new("e", 4, vec![]).horizon(), SimTime::ZERO);
    }

    #[test]
    fn compression_divides_times() {
        let t = sample();
        let c = t.compress(2);
        assert_eq!(c.len(), t.len());
        for (a, b) in t.packets().iter().zip(c.packets()) {
            assert_eq!(b.inject_time.ticks(), a.inject_time.ticks() / 2);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.kind, b.kind);
        }
        assert!(c.name.ends_with("-x2.00"), "{}", c.name);
    }

    #[test]
    fn compression_raises_offered_load() {
        let t = sample();
        let c = t.compress(4);
        assert!(c.stats().flits_per_ns > t.stats().flits_per_ns * 3.0);
    }

    #[test]
    fn stats_count_kinds_and_flits() {
        let s = sample().stats();
        assert_eq!(s.packets, 3);
        assert_eq!(s.requests, 2);
        assert_eq!(s.responses, 1);
        // 2 requests × 1 flit + 1 response × 5 flits.
        assert_eq!(s.flits, 7);
        assert_eq!(s.active_cores, 3);
    }

    #[test]
    fn digest_is_stable_and_content_addressed() {
        let t = sample();
        // Same content → same digest, every time.
        assert_eq!(t.digest(), sample().digest());
        // Any field change moves the digest: name, load scale, records.
        let renamed = Trace::new("other", 4, t.packets().to_vec());
        assert_ne!(t.digest(), renamed.digest());
        assert_ne!(t.digest(), t.compress(2).digest());
        let fewer = Trace::new("t", 4, t.packets()[..2].to_vec());
        assert_ne!(t.digest(), fewer.digest());
        // Kind matters even when the timing is identical.
        let mut flipped = t.packets().to_vec();
        flipped[0].kind = PacketKind::Response;
        assert_ne!(t.digest(), Trace::new("t", 4, flipped).digest());
    }

    #[test]
    #[should_panic(expected = "self-addressed")]
    fn self_addressed_rejected() {
        Trace::new("bad", 4, vec![packet(1, 1, PacketKind::Request, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_rejected() {
        Trace::new("bad", 2, vec![packet(0, 5, PacketKind::Request, 0.0)]);
    }
}
