//! The paper's benchmark partition: "From a total of 14 trace files, we
//! use a total of six trace files for training purposes, three for
//! validation, and then the final five for testing" (§IV-A).
//!
//! The paper does not publish which benchmark landed in which split; we
//! fix a deterministic assignment with both suites represented in the
//! test set and keep it stable forever (trained models reference it).

use serde::{Deserialize, Serialize};

use crate::synthetic::Benchmark;

/// The six training benchmarks.
pub const TRAIN_BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Blackscholes,
    Benchmark::Bodytrack,
    Benchmark::Canneal,
    Benchmark::Dedup,
    Benchmark::Ferret,
    Benchmark::Fluidanimate,
];

/// The three validation benchmarks (λ tuning).
pub const VALIDATION_BENCHMARKS: [Benchmark; 3] =
    [Benchmark::Freqmine, Benchmark::Swaptions, Benchmark::Vips];

/// The five held-out test benchmarks (all results in Figs. 7–9 are
/// reported on these).
pub const TEST_BENCHMARKS: [Benchmark; 5] = [
    Benchmark::X264,
    Benchmark::Barnes,
    Benchmark::Fft,
    Benchmark::Lu,
    Benchmark::Radix,
];

/// Which split a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkSplit {
    /// Used to fit weights.
    Train,
    /// Used to select λ.
    Validation,
    /// Held out; all reported results.
    Test,
}

impl BenchmarkSplit {
    /// The split a benchmark is assigned to.
    pub fn of(bench: Benchmark) -> BenchmarkSplit {
        if TRAIN_BENCHMARKS.contains(&bench) {
            BenchmarkSplit::Train
        } else if VALIDATION_BENCHMARKS.contains(&bench) {
            BenchmarkSplit::Validation
        } else {
            debug_assert!(TEST_BENCHMARKS.contains(&bench));
            BenchmarkSplit::Test
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::ALL_BENCHMARKS;
    use std::collections::HashSet;

    #[test]
    fn split_sizes_match_paper() {
        assert_eq!(TRAIN_BENCHMARKS.len(), 6);
        assert_eq!(VALIDATION_BENCHMARKS.len(), 3);
        assert_eq!(TEST_BENCHMARKS.len(), 5);
    }

    #[test]
    fn splits_partition_all_fourteen() {
        let mut seen = HashSet::new();
        for b in TRAIN_BENCHMARKS
            .iter()
            .chain(&VALIDATION_BENCHMARKS)
            .chain(&TEST_BENCHMARKS)
        {
            assert!(seen.insert(*b), "{b} in two splits");
        }
        assert_eq!(seen.len(), ALL_BENCHMARKS.len());
        for b in ALL_BENCHMARKS {
            assert!(seen.contains(&b), "{b} unassigned");
        }
    }

    #[test]
    fn of_agrees_with_membership() {
        for b in TRAIN_BENCHMARKS {
            assert_eq!(BenchmarkSplit::of(b), BenchmarkSplit::Train);
        }
        for b in VALIDATION_BENCHMARKS {
            assert_eq!(BenchmarkSplit::of(b), BenchmarkSplit::Validation);
        }
        for b in TEST_BENCHMARKS {
            assert_eq!(BenchmarkSplit::of(b), BenchmarkSplit::Test);
        }
    }

    #[test]
    fn test_set_covers_both_suites() {
        use crate::synthetic::Suite;
        let suites: HashSet<_> = TEST_BENCHMARKS.iter().map(|b| b.profile().suite).collect();
        assert!(suites.contains(&Suite::Parsec));
        assert!(suites.contains(&Suite::Splash2));
    }
}
