//! Trace file I/O.
//!
//! The paper's workflow is trace-file centric: the full-system simulator
//! writes per-core traffic records, the network simulator replays them.
//! This module gives traces two durable representations:
//!
//! * **JSON** — self-describing, diffable, slow; for small traces and
//!   debugging.
//! * **DZTR binary** — a compact little-endian record format for real
//!   campaigns (16 bytes/packet + header), ~20× smaller than JSON.
//!
//! Both round-trip exactly (see the property tests).

use std::io::{self, Read, Write};
use std::path::Path;

use dozznoc_types::{CoreId, Packet, PacketId, PacketKind, SimTime};

use crate::trace::Trace;

/// Magic bytes of the binary trace format.
pub const DZTR_MAGIC: [u8; 4] = *b"DZTR";
/// Current binary format version.
pub const DZTR_VERSION: u16 = 1;

/// Errors while reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a DZTR file, or a corrupt/truncated one.
    Format(String),
    /// JSON parse failure.
    Json(String),
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Format(m) => write!(f, "bad trace file: {m}"),
            TraceIoError::Json(m) => write!(f, "bad trace json: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serialize a trace as pretty JSON.
pub fn to_json(trace: &Trace) -> String {
    serde_json::to_string_pretty(trace).expect("traces always serialize")
}

/// Parse a trace from JSON, re-validating the invariants.
pub fn from_json(json: &str) -> Result<Trace, TraceIoError> {
    let raw: Trace = serde_json::from_str(json).map_err(|e| TraceIoError::Json(e.to_string()))?;
    // Rebuild through the validating constructor (sorting, id density,
    // range checks) so hand-edited files can't smuggle bad records in.
    Ok(Trace::new(
        raw.name.clone(),
        raw.num_cores,
        raw.packets().to_vec(),
    ))
}

/// Write the binary DZTR representation.
///
/// Layout (little-endian):
/// ```text
/// magic "DZTR" | u16 version | u16 name_len | name bytes
/// u32 num_cores | u64 packet count
/// per packet: u64 inject_ticks | u16 src | u16 dst | u8 kind | 3 pad
/// ```
pub fn write_binary<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    w.write_all(&DZTR_MAGIC)?;
    w.write_all(&DZTR_VERSION.to_le_bytes())?;
    let name = trace.name.as_bytes();
    let name_len = u16::try_from(name.len()).unwrap_or(u16::MAX);
    w.write_all(&name_len.to_le_bytes())?;
    w.write_all(&name[..name_len as usize])?;
    w.write_all(&(trace.num_cores as u32).to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for p in trace.packets() {
        w.write_all(&p.inject_time.ticks().to_le_bytes())?;
        w.write_all(&p.src.0.to_le_bytes())?;
        w.write_all(&p.dst.0.to_le_bytes())?;
        let kind = match p.kind {
            PacketKind::Request => 0u8,
            PacketKind::Response => 1u8,
        };
        w.write_all(&[kind, 0, 0, 0])?;
    }
    Ok(())
}

/// Read a binary DZTR trace.
pub fn read_binary<R: Read>(r: &mut R) -> Result<Trace, TraceIoError> {
    fn take<const N: usize>(r: &mut impl Read) -> Result<[u8; N], TraceIoError> {
        let mut buf = [0u8; N];
        r.read_exact(&mut buf)?;
        Ok(buf)
    }
    let magic: [u8; 4] = take(r)?;
    if magic != DZTR_MAGIC {
        return Err(TraceIoError::Format("missing DZTR magic".into()));
    }
    let version = u16::from_le_bytes(take(r)?);
    if version != DZTR_VERSION {
        return Err(TraceIoError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let name_len = u16::from_le_bytes(take(r)?) as usize;
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name)
        .map_err(|_| TraceIoError::Format("trace name is not UTF-8".into()))?;
    let num_cores = u32::from_le_bytes(take(r)?) as usize;
    let count = u64::from_le_bytes(take(r)?);
    if num_cores == 0 || num_cores > u16::MAX as usize {
        return Err(TraceIoError::Format(format!(
            "implausible core count {num_cores}"
        )));
    }
    let mut packets = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let ticks = u64::from_le_bytes(take(r)?);
        let src = u16::from_le_bytes(take(r)?);
        let dst = u16::from_le_bytes(take(r)?);
        let tail: [u8; 4] = take(r)?;
        let kind = match tail[0] {
            0 => PacketKind::Request,
            1 => PacketKind::Response,
            k => return Err(TraceIoError::Format(format!("unknown packet kind {k}"))),
        };
        if src as usize >= num_cores || dst as usize >= num_cores || src == dst {
            return Err(TraceIoError::Format(format!(
                "invalid record: src {src}, dst {dst}, cores {num_cores}"
            )));
        }
        packets.push(Packet {
            id: PacketId(0),
            src: CoreId(src),
            dst: CoreId(dst),
            kind,
            inject_time: SimTime::from_ticks(ticks),
        });
    }
    Ok(Trace::new(name, num_cores, packets))
}

/// Save a trace to a path; the extension picks the codec
/// (`.json` → JSON, anything else → DZTR binary).
pub fn save(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    if path.extension().is_some_and(|e| e == "json") {
        file.write_all(to_json(trace).as_bytes())?;
    } else {
        write_binary(trace, &mut file)?;
    }
    file.flush()?;
    Ok(())
}

/// Load a trace from a path; the extension picks the codec.
pub fn load(path: &Path) -> Result<Trace, TraceIoError> {
    if path.extension().is_some_and(|e| e == "json") {
        let raw = std::fs::read_to_string(path)?;
        from_json(&raw)
    } else {
        let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
        read_binary(&mut file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::packet;

    fn sample() -> Trace {
        Trace::new(
            "io-sample",
            8,
            vec![
                packet(0, 3, PacketKind::Request, 5.0),
                packet(2, 7, PacketKind::Response, 1.0),
                packet(4, 1, PacketKind::Request, 9.5),
            ],
        )
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let back = from_json(&to_json(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_is_compact() {
        let t = sample();
        let mut bin = Vec::new();
        write_binary(&t, &mut bin).unwrap();
        let json = to_json(&t);
        assert!(
            bin.len() * 4 < json.len(),
            "{} vs {}",
            bin.len(),
            json.len()
        );
        // Header + 16 bytes per packet.
        assert_eq!(bin.len(), 4 + 2 + 2 + t.name.len() + 4 + 8 + 16 * t.len());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        let err = read_binary(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn bad_record_rejected() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        // Corrupt the kind byte of the first record (offset: header + 12).
        let header = 4 + 2 + 2 + "io-sample".len() + 4 + 8;
        buf[header + 12] = 9;
        let err = read_binary(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unknown packet kind"), "{err}");
    }

    #[test]
    fn file_round_trip_both_codecs() {
        let dir = std::env::temp_dir();
        let t = sample();
        for ext in ["json", "dztr"] {
            let path = dir.join(format!("dozznoc-io-test.{ext}"));
            save(&t, &path).unwrap();
            let back = load(&path).unwrap();
            assert_eq!(back, t, "{ext}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn json_revalidates_invariants() {
        // A hand-edited JSON with a self-addressed packet must be
        // rejected by the validating constructor (panic) — we check the
        // constructor is actually in the path by verifying sorting.
        let t = sample();
        let mut json: serde_json::Value = serde_json::from_str(&to_json(&t)).unwrap();
        // Scramble packet order: loader must restore time order.
        let arr = json.get_mut("packets").unwrap().as_array_mut().unwrap();
        arr.reverse();
        let back = from_json(&json.to_string()).unwrap();
        let times: Vec<u64> = back
            .packets()
            .iter()
            .map(|p| p.inject_time.ticks())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
