//! Traffic generation for the DozzNoC reproduction.
//!
//! The paper drives its network simulator with trace files gathered from
//! Multi2Sim running PARSEC 2.1 and SPLASH-2 on 64 cores; each trace
//! record is `(source, destination, request/response, injection time)`.
//! We cannot run the proprietary toolchain, so this crate generates
//! **synthetic traces with the same record format and calibrated
//! statistics**: 14 named workload profiles (ten PARSEC-like, four
//! SPLASH-2-like), each a deterministic seeded Markov-modulated on/off
//! injection process with phase structure, spatial locality, hotspots and
//! a request/response mix. See `DESIGN.md` §7 for the calibration
//! rationale.
//!
//! * [`trace`] — the trace container and record format, plus time
//!   compression ("compressed" traces are time-scaled, raising offered
//!   load).
//! * [`synthetic`] — the 14 benchmark profiles and their generator.
//! * [`patterns`] — classic synthetic patterns (uniform random,
//!   transpose, bit-complement, hotspot, tornado) for unit tests and
//!   stress benches.
//! * [`splits`] — the paper's 6 train / 3 validation / 5 test partition.
//! * [`io`] — durable trace files (JSON and the compact DZTR binary).

pub mod io;
pub mod patterns;
pub mod splits;
pub mod synthetic;
pub mod trace;

pub use splits::{BenchmarkSplit, TEST_BENCHMARKS, TRAIN_BENCHMARKS, VALIDATION_BENCHMARKS};
pub use synthetic::{Benchmark, TraceGenerator, WorkloadProfile, ALL_BENCHMARKS};
pub use trace::{Trace, TraceStats};
